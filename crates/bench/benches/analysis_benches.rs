//! Criterion micro-benchmarks of the analyses and the simulator.
//!
//! These measure the *cost* side of the paper's evaluation (the analysis-
//! time columns of Tables 5–7) on a reduced scale so they finish quickly:
//! the per-table regeneration binaries in `src/bin/` produce the full rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spec_analysis::detect_leaks;
use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, CacheAnalysis};
use spec_sim::{PredictorKind, SimConfig, SimInput, Simulator};
use spec_vcfg::MergeStrategy;
use spec_workloads::{crypto_workload, ete_workload, figure2_program};

const BENCH_LINES: u64 = 64;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(BENCH_LINES as usize, 64)
}

/// Table 5's analysis-time columns: baseline vs. speculative analysis.
fn bench_ete_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ete_analysis");
    group.sample_size(10);
    for name in ["adpcm", "jcphuff", "g72"] {
        let workload = ete_workload(name, BENCH_LINES);
        let baseline = CacheAnalysis::new(AnalysisOptions::non_speculative().with_cache(cache()));
        let speculative = CacheAnalysis::new(AnalysisOptions::speculative().with_cache(cache()));
        group.bench_with_input(
            BenchmarkId::new("non_speculative", name),
            &workload,
            |b, w| b.iter(|| baseline.run(&w.program).miss_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("speculative", name),
            &workload,
            |b, w| b.iter(|| speculative.run(&w.program).miss_count()),
        );
    }
    group.finish();
}

/// Table 6's analysis-time columns: merge-at-rollback vs. just-in-time.
fn bench_merge_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_strategies");
    group.sample_size(10);
    let workload = ete_workload("jcmarker", BENCH_LINES);
    for (label, strategy) in [
        ("just_in_time", MergeStrategy::JustInTime),
        ("merge_at_rollback", MergeStrategy::MergeAtRollback),
    ] {
        let analysis = CacheAnalysis::new(
            AnalysisOptions::speculative()
                .with_cache(cache())
                .with_merge_strategy(strategy),
        );
        group.bench_function(label, |b| b.iter(|| analysis.run(&workload.program).miss_count()));
    }
    group.finish();
}

/// Table 7's analysis-time columns: leak detection on a crypto client.
fn bench_sidechannel_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("sidechannel_analysis");
    group.sample_size(10);
    let workload = crypto_workload("encoder", BENCH_LINES, 16 * 64);
    for (label, options) in [
        ("non_speculative", AnalysisOptions::non_speculative().with_cache(cache())),
        ("speculative", AnalysisOptions::speculative().with_cache(cache())),
    ] {
        let analysis = CacheAnalysis::new(options);
        group.bench_function(label, |b| {
            b.iter(|| detect_leaks(&analysis.run(&workload.program)).leak_detected())
        });
    }
    group.finish();
}

/// The concrete simulator on the Figure 2 program (used by the Figure 3
/// regeneration and the soundness tests).
fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let program = figure2_program(BENCH_LINES);
    for (label, config) in [
        ("non_speculative", SimConfig::non_speculative().with_cache(cache())),
        (
            "adversarial_speculation",
            SimConfig::default()
                .with_cache(cache())
                .with_predictor(PredictorKind::AlwaysWrong),
        ),
    ] {
        let simulator = Simulator::new(config);
        group.bench_function(label, |b| {
            b.iter(|| simulator.run(&program, &SimInput::new(1, 0)).observable_misses)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ete_analysis,
    bench_merge_strategies,
    bench_sidechannel_analysis,
    bench_simulator
);
criterion_main!(benches);
