//! Micro-benchmarks of the analyses and the simulator, with no external
//! harness (`cargo bench` in this workspace must build offline).
//!
//! These measure the *cost* side of the paper's evaluation (the analysis-
//! time columns of Tables 5–7) on a reduced scale so they finish quickly:
//! the per-table regeneration binaries in `src/bin/` produce the full rows.
//! Each benchmark reports the best-of-N wall-clock time, which is stable
//! enough for the relative comparisons we care about (baseline vs.
//! speculative, fresh runs vs. a prepared session).

use std::time::{Duration, Instant};

use spec_analysis::detect_leaks;
use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, CacheAnalysis};
use spec_sim::{PredictorKind, SimConfig, SimInput, Simulator};
use spec_vcfg::MergeStrategy;
use spec_workloads::{crypto_workload, ete_workload, figure2_program};

const BENCH_LINES: u64 = 64;
const SAMPLES: u32 = 5;

fn cache() -> CacheConfig {
    CacheConfig::fully_associative(BENCH_LINES as usize, 64)
}

/// Runs `f` `SAMPLES` times and returns the fastest observed duration.
fn best_of<F: FnMut()>(mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn report(group: &str, name: &str, time: Duration) {
    println!("{group}/{name}: {:>12.3} ms", time.as_secs_f64() * 1e3);
}

/// Table 5's analysis-time columns: baseline vs. speculative analysis.
fn bench_ete_analysis() {
    for name in ["adpcm", "jcphuff", "g72"] {
        let workload = ete_workload(name, BENCH_LINES);
        let baseline = CacheAnalysis::new(
            AnalysisOptions::builder()
                .baseline()
                .cache(cache())
                .build()
                .unwrap(),
        );
        let speculative =
            CacheAnalysis::new(AnalysisOptions::builder().cache(cache()).build().unwrap());
        report(
            "ete_analysis",
            &format!("non_speculative/{name}"),
            best_of(|| {
                baseline.run(&workload.program).miss_count();
            }),
        );
        report(
            "ete_analysis",
            &format!("speculative/{name}"),
            best_of(|| {
                speculative.run(&workload.program).miss_count();
            }),
        );
    }
}

/// Table 6's analysis-time columns: merge-at-rollback vs. just-in-time.
fn bench_merge_strategies() {
    let workload = ete_workload("jcmarker", BENCH_LINES);
    for (label, strategy) in [
        ("just_in_time", MergeStrategy::JustInTime),
        ("merge_at_rollback", MergeStrategy::MergeAtRollback),
    ] {
        let analysis = CacheAnalysis::new(
            AnalysisOptions::builder()
                .cache(cache())
                .merge_strategy(strategy)
                .build()
                .unwrap(),
        );
        report(
            "merge_strategies",
            label,
            best_of(|| {
                analysis.run(&workload.program).miss_count();
            }),
        );
    }
}

/// Table 7's analysis-time columns: leak detection on a crypto client.
fn bench_sidechannel_analysis() {
    let workload = crypto_workload("encoder", BENCH_LINES, 16 * 64);
    for (label, options) in [
        (
            "non_speculative",
            AnalysisOptions::builder()
                .baseline()
                .cache(cache())
                .build()
                .unwrap(),
        ),
        (
            "speculative",
            AnalysisOptions::builder().cache(cache()).build().unwrap(),
        ),
    ] {
        let analysis = CacheAnalysis::new(options);
        report(
            "sidechannel_analysis",
            label,
            best_of(|| {
                detect_leaks(&analysis.run(&workload.program)).leak_detected();
            }),
        );
    }
}

/// The session API's headline: many configurations of the same program,
/// fresh `CacheAnalysis::run` calls vs. one `PreparedProgram::run_suite`.
fn bench_session_suite() {
    use spec_core::session::Analyzer;

    let workload = ete_workload("g72", BENCH_LINES);
    let configs = spec_core::session::comparison_configs(cache());

    report(
        "session_suite",
        "fresh_runs_sequential",
        best_of(|| {
            for (_, options) in &configs {
                CacheAnalysis::new(*options)
                    .run(&workload.program)
                    .miss_count();
            }
        }),
    );
    report(
        "session_suite",
        "prepared_run_suite",
        best_of(|| {
            let prepared = Analyzer::new().prepare(&workload.program);
            prepared.run_suite(&configs).runs.len();
        }),
    );
}

/// The concrete simulator on the Figure 2 program (used by the Figure 3
/// regeneration and the soundness tests).
fn bench_simulator() {
    let program = figure2_program(BENCH_LINES);
    for (label, config) in [
        (
            "non_speculative",
            SimConfig::non_speculative().with_cache(cache()),
        ),
        (
            "adversarial_speculation",
            SimConfig::default()
                .with_cache(cache())
                .with_predictor(PredictorKind::AlwaysWrong),
        ),
    ] {
        let simulator = Simulator::new(config);
        report(
            "simulator",
            label,
            best_of(|| {
                let _ = simulator
                    .run(&program, &SimInput::new(1, 0))
                    .observable_misses;
            }),
        );
    }
}

fn main() {
    bench_ete_analysis();
    bench_merge_strategies();
    bench_sidechannel_analysis();
    bench_session_suite();
    bench_simulator();
}
