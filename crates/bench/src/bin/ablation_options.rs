//! Ablation study (ours): the effect of the paper's individual design
//! choices — dynamic depth bounding (Section 6.2), the shadow-variable
//! refinement (Section 6.3) and loop unrolling — on precision and analysis
//! effort, across the ETE suite.
//!
//! Each workload is prepared once; the four configurations then run as one
//! labelled suite against the shared artifacts.  The precision and
//! iteration columns are exact; the time column reports time spent *inside
//! the shared suite*, where a configuration that replays a memoized
//! fixpoint round is billed almost nothing for it — it measures the cost of
//! regenerating the table, not each configuration's standalone cost.

use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_core::{AnalysisOptions, Analyzer};
use spec_workloads::ete_suite;

fn main() {
    let cache = bench_cache();
    let configs: Vec<(&str, AnalysisOptions)> = vec![
        (
            "full (paper)",
            AnalysisOptions::builder().cache(cache).build().unwrap(),
        ),
        (
            "no dynamic depth bounding",
            AnalysisOptions::builder()
                .cache(cache)
                .dynamic_depth_bounding(false)
                .build()
                .unwrap(),
        ),
        (
            "no shadow variables",
            AnalysisOptions::builder()
                .cache(cache)
                .shadow(false)
                .build()
                .unwrap(),
        ),
        (
            "no loop unrolling",
            AnalysisOptions::builder()
                .cache(cache)
                .unroll_loops(false)
                .build()
                .unwrap(),
        ),
    ];

    let suite = ete_suite(bench_cache_lines());
    let analyzer = Analyzer::new();
    let mut total_miss = vec![0usize; configs.len()];
    let mut total_iterations = vec![0u64; configs.len()];
    let mut total_time = vec![std::time::Duration::ZERO; configs.len()];
    for w in &suite {
        let prepared = analyzer.prepare(&w.program);
        for (i, run) in prepared.run_suite(&configs).runs.iter().enumerate() {
            total_miss[i] += run.result.miss_count();
            total_iterations[i] += run.result.iterations();
            total_time[i] += run.result.elapsed;
        }
    }
    let rows: Vec<Vec<String>> = configs
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            vec![
                label.to_string(),
                total_miss[i].to_string(),
                total_iterations[i].to_string(),
                fmt_secs(total_time[i]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Ablation — totals over the ETE suite ({}-line cache)",
            bench_cache_lines()
        ),
        &[
            "Configuration",
            "Total #Miss",
            "Total iterations",
            "Total suite time (s)",
        ],
        &rows,
    );
}
