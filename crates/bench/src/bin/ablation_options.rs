//! Ablation study (ours): the effect of the paper's individual design
//! choices — dynamic depth bounding (Section 6.2), the shadow-variable
//! refinement (Section 6.3) and loop unrolling — on precision and analysis
//! effort, across the ETE suite.

use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_core::{AnalysisOptions, CacheAnalysis};
use spec_vcfg::SpeculationConfig;
use spec_workloads::ete_suite;

fn main() {
    let cache = bench_cache();
    let configs: Vec<(&str, AnalysisOptions)> = vec![
        ("full (paper)", AnalysisOptions::speculative().with_cache(cache)),
        (
            "no dynamic depth bounding",
            AnalysisOptions::speculative().with_cache(cache).with_speculation(
                SpeculationConfig::paper_default().with_dynamic_depth_bounding(false),
            ),
        ),
        (
            "no shadow variables",
            AnalysisOptions::speculative().with_cache(cache).with_shadow(false),
        ),
        (
            "no loop unrolling",
            AnalysisOptions::speculative().with_cache(cache).with_unrolling(false),
        ),
    ];

    let suite = ete_suite(bench_cache_lines());
    let mut rows = Vec::new();
    for (label, options) in configs {
        let analysis = CacheAnalysis::new(options);
        let mut total_miss = 0usize;
        let mut total_iterations = 0u64;
        let mut total_time = std::time::Duration::ZERO;
        for w in &suite {
            let result = analysis.run(&w.program);
            total_miss += result.miss_count();
            total_iterations += result.iterations();
            total_time += result.elapsed;
        }
        rows.push(vec![
            label.to_string(),
            total_miss.to_string(),
            total_iterations.to_string(),
            fmt_secs(total_time),
        ]);
    }
    print_table(
        &format!(
            "Ablation — totals over the ETE suite ({}-line cache)",
            bench_cache_lines()
        ),
        &["Configuration", "Total #Miss", "Total iterations", "Total time (s)"],
        &rows,
    );
}
