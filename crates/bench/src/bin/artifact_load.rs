//! Artifact store: cold prepare vs disk load, per ETE workload.
//!
//! The artifact store's pitch is that a warm restart skips preparation
//! entirely — unrolling, address maps, VCFGs and the memoized fixpoint
//! rounds all come back from one checksummed file.  This harness measures
//! that trade directly, without a server: for every ETE workload it
//! prepares the program cold, runs the comparison panel (which populates
//! the round memo), saves the artifact into a scratch store, loads it back,
//! and re-runs the same panel on the restored session.  The restored report
//! must be byte-identical to the cold one after the timing strip — the same
//! contract `specan serve --artifact-dir` gives across restarts.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES` — cache/workload scale (default 128).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke
//! job uploads it as an artifact, feeding the BENCH trajectory).

use std::time::{Duration, Instant};

use spec_bench::service_harness::Scratch;
use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_core::session::comparison_configs;
use spec_core::{Analyzer, PreparedStore};
use spec_workloads::ete_suite;

struct Row {
    name: &'static str,
    prepare: Duration,
    run_cold: Duration,
    save: Duration,
    load: Duration,
    run_restored: Duration,
    artifact_bytes: u64,
}

impl Row {
    /// Wall time to first report on a cold start: prepare + analyze.
    fn cold_total(&self) -> Duration {
        self.prepare + self.run_cold
    }

    /// Wall time to first report on a warm restart: load + analyze with
    /// the memoized rounds replayed.
    fn restored_total(&self) -> Duration {
        self.load + self.run_restored
    }

    fn speedup(&self) -> f64 {
        self.cold_total().as_secs_f64() / self.restored_total().as_secs_f64().max(1e-9)
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let configs = comparison_configs(bench_cache());

    let scratch = Scratch::new("spec-artifact-load");
    let store = PreparedStore::open(scratch.dir());
    let analyzer = Analyzer::new();

    let mut rows = Vec::new();
    for workload in ete_suite(cache_lines) {
        let start = Instant::now();
        let prepared = analyzer.prepare(&workload.program);
        let prepare = start.elapsed();

        let start = Instant::now();
        let cold_suite = prepared.run_suite(&configs);
        let run_cold = start.elapsed();
        let cold_report = cold_suite.report().without_timing().to_json();

        let start = Instant::now();
        let artifact_bytes = store.save(&prepared).expect("artifact saves");
        let save = start.elapsed();

        let start = Instant::now();
        let (restored, _) = store
            .load(&analyzer, prepared.fingerprint())
            .expect("artifact loads back");
        let load = start.elapsed();

        let start = Instant::now();
        let restored_suite = restored.run_suite(&configs);
        let run_restored = start.elapsed();
        assert_eq!(
            cold_report,
            restored_suite.report().without_timing().to_json(),
            "restored report diverged from the cold one for `{}`",
            workload.name()
        );

        rows.push(Row {
            name: workload.info.name,
            prepare,
            run_cold,
            save,
            load,
            run_restored,
            artifact_bytes,
        });
    }

    let store_bytes = store
        .store()
        .entries()
        .expect("store lists")
        .iter()
        .map(|e| e.file_bytes)
        .sum::<u64>();
    let total = |f: fn(&Row) -> Duration| rows.iter().map(f).sum::<Duration>();
    let cold_total = total(Row::cold_total);
    let restored_total = total(Row::restored_total);

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"configs\": {},\n", configs.len()));
        out.push_str("  \"workloads\": [\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"prepare_secs\": {:.6}, \"run_cold_secs\": {:.6}, \
                 \"save_secs\": {:.6}, \"load_secs\": {:.6}, \"run_restored_secs\": {:.6}, \
                 \"artifact_bytes\": {}, \"restart_speedup\": {:.3}}}{}\n",
                row.name,
                row.prepare.as_secs_f64(),
                row.run_cold.as_secs_f64(),
                row.save.as_secs_f64(),
                row.load.as_secs_f64(),
                row.run_restored.as_secs_f64(),
                row.artifact_bytes,
                row.speedup(),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"store_bytes\": {store_bytes},\n"));
        out.push_str(&format!(
            "  \"cold_total_secs\": {:.6},\n",
            cold_total.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"restored_total_secs\": {:.6},\n",
            restored_total.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"restart_speedup\": {:.3},\n",
            cold_total.as_secs_f64() / restored_total.as_secs_f64().max(1e-9)
        ));
        out.push_str("  \"reports_identical\": true\n}");
        println!("{out}");
    } else {
        let table = rows
            .iter()
            .map(|row| {
                vec![
                    row.name.to_string(),
                    fmt_secs(row.cold_total()),
                    fmt_secs(row.restored_total()),
                    format!("{:.2}x", row.speedup()),
                    format!("{}", row.artifact_bytes),
                ]
            })
            .collect::<Vec<_>>();
        print_table(
            &format!(
                "Artifact load vs cold prepare ({} configs, {cache_lines}-line cache)",
                configs.len()
            ),
            &[
                "Workload",
                "Cold (s)",
                "Restored (s)",
                "Speedup",
                "Artifact (bytes)",
            ],
            &table,
        );
        println!(
            "\nStore size: {store_bytes} bytes across {} artifact(s); total cold {} s vs \
             restored {} s ({:.2}x).  All restored reports were byte-identical to their \
             cold counterparts (post timing-strip).",
            rows.len(),
            fmt_secs(cold_total),
            fmt_secs(restored_total),
            cold_total.as_secs_f64() / restored_total.as_secs_f64().max(1e-9)
        );
    }
}
