//! Regenerates the speculation-window calibration of Section 7: the
//! `b_h = 20` / `b_m = 200` bounds derived from the out-of-order latency
//! model that stands in for the paper's GEM5 traces.

use spec_bench::print_table;
use spec_sim::{calibrate_windows, LatencyModel};

fn main() {
    let rows: Vec<Vec<String>> = [
        (
            "paper default (Alpha 21264-like O3CPU)",
            LatencyModel::default(),
        ),
        (
            "narrow in-order-ish core",
            LatencyModel {
                issue_width: 1,
                ..LatencyModel::default()
            },
        ),
        (
            "slow memory",
            LatencyModel {
                memory_cycles: 120,
                ..LatencyModel::default()
            },
        ),
    ]
    .into_iter()
    .map(|(label, model)| {
        let report = calibrate_windows(&model);
        vec![
            label.to_string(),
            model.l1_hit_cycles.to_string(),
            model.memory_cycles.to_string(),
            model.issue_width.to_string(),
            model.reorder_buffer.to_string(),
            report.window_on_hit.to_string(),
            report.window_on_miss.to_string(),
        ]
    })
    .collect();
    print_table(
        "Speculation-window calibration (Section 7 setup)",
        &[
            "Model",
            "L1 hit (cycles)",
            "Memory (cycles)",
            "Issue width",
            "ROB",
            "b_h",
            "b_m",
        ],
        &rows,
    );
}
