//! Regenerates the Figure 11 / Figure 13 comparison: the shadow-variable
//! refinement keeps `a` in the cache, the original join evicts it.

use spec_bench::{bench_cache, print_table, yes_no};
use spec_core::{AnalysisOptions, Analyzer};
use spec_workloads::figure11_program;

fn main() {
    let cache = spec_cache::CacheConfig::fully_associative(4, 64);
    let _ = bench_cache(); // the figure uses the paper's 4-line illustration cache
    let program = figure11_program(5);

    // Both configurations share one prepared session (and, since the shadow
    // refinement does not change the virtual control flow, one VCFG).
    let prepared = Analyzer::new().prepare(&program);
    let suite = prepared.run_suite(&[
        (
            "original join",
            AnalysisOptions::builder()
                .cache(cache)
                .shadow(false)
                .build()
                .unwrap(),
        ),
        (
            "shadow variables",
            AnalysisOptions::builder()
                .cache(cache)
                .shadow(true)
                .build()
                .unwrap(),
        ),
    ]);

    let rows: Vec<Vec<String>> = suite
        .runs
        .iter()
        .map(|run| {
            let result = &run.result;
            // The re-read of `a` sits in the loop's exit block (the entry
            // block holds the initial, necessarily missing load).
            let final_access = result
                .accesses()
                .iter()
                .find(|a| {
                    a.region_name == "a"
                        && result.program.block(a.block).label().starts_with("exit")
                })
                .expect("the exit block re-reads a");
            vec![
                run.label.clone(),
                yes_no(final_access.observable_hit),
                result.miss_count().to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 11/13 — does the final re-read of `a` stay a guaranteed hit?",
        &["Join operator", "`a` guaranteed hit", "#Miss"],
        &rows,
    );
}
