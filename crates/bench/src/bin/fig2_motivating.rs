//! Regenerates the Figure 2 / Figure 3 motivating result: the same program,
//! executed (a) without speculation, (b) with a mispredicted branch, and
//! analysed (c) without and (d) with speculative execution modelled.

use spec_bench::{bench_cache, bench_cache_lines, print_table, yes_no};
use spec_core::{AnalysisOptions, Analyzer};
use spec_sim::{PredictorKind, SimConfig, SimInput, Simulator};
use spec_workloads::figure2_program;

fn main() {
    let lines = bench_cache_lines();
    let cache = bench_cache();
    let program = figure2_program(lines);

    // Concrete executions (Figure 3).
    let non_spec = Simulator::new(SimConfig::non_speculative().with_cache(cache))
        .run(&program, &SimInput::new(1, 0));
    let mispredicted = Simulator::new(
        SimConfig::default()
            .with_cache(cache)
            .with_predictor(PredictorKind::AlwaysWrong),
    )
    .run(&program, &SimInput::new(1, 0));

    print_table(
        &format!("Figure 3 — concrete executions ({lines}-line cache)"),
        &[
            "Execution",
            "Observable misses",
            "Observable hits",
            "Speculative misses",
        ],
        &[
            vec![
                "non-speculative".to_string(),
                non_spec.observable_misses.to_string(),
                non_spec.observable_hits.to_string(),
                non_spec.speculative_misses.to_string(),
            ],
            vec![
                "mispredicted speculation".to_string(),
                mispredicted.observable_misses.to_string(),
                mispredicted.observable_hits.to_string(),
                mispredicted.speculative_misses.to_string(),
            ],
        ],
    );

    // Static analyses (Section 2): is the final, secret-indexed access a
    // guaranteed hit?  One prepared session serves both.
    let prepared = Analyzer::new().prepare(&program);
    let baseline = prepared.run(
        &AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    );
    let speculative = prepared.run(&AnalysisOptions::builder().cache(cache).build().unwrap());
    let verdict = |r: &spec_core::AnalysisResult| {
        let access = r.secret_accesses().next().expect("ph[k] exists");
        (yes_no(access.observable_hit), r.miss_count())
    };
    let (base_hit, base_miss) = verdict(&baseline);
    let (spec_hit, spec_miss) = verdict(&speculative);
    print_table(
        "Figure 2 — static analysis of the final `ph[k]` access",
        &["Analysis", "`ph[k]` guaranteed hit", "#Miss"],
        &[
            vec![
                "non-speculative (prior work)".to_string(),
                base_hit,
                base_miss.to_string(),
            ],
            vec![
                "speculative (this work)".to_string(),
                spec_hit,
                spec_miss.to_string(),
            ],
        ],
    );
}
