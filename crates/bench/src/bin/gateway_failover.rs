//! Gateway failover: warm request latency through the federation gateway
//! vs a direct backend hit, and the cost of losing a backend mid-stream.
//!
//! The gateway's pitch is federation without a determinism tax: the same
//! request through `specan gateway` answers byte-identically (post
//! timing-strip) to a direct `specan serve` hit, the extra hop costs one
//! LAN round-trip, and a SIGKILLed backend costs a bounded re-route — not
//! an error surfaced to the client.  This harness measures all three: it
//! runs a warm analyze round directly against one backend, the same round
//! through a gateway fronting `SPEC_BENCH_GATEWAY_BACKENDS` backends, then
//! kills the backend holding the most warm programs and keeps submitting.
//! Every response, warm or failed-over, is checked byte-identical to its
//! direct counterpart.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES`       — cache/workload scale (default 128);
//! * `SPEC_BENCH_SERVICE_PROGRAMS`  — distinct programs (default 6);
//! * `SPEC_BENCH_SERVICE_ROUNDS`    — warm rounds per phase (default 4);
//! * `SPEC_BENCH_GATEWAY_BACKENDS`  — fleet size (default 3);
//! * `SPECAN_BIN`                   — path to a built `specan` (required;
//!   the harness exits 0 with a note when unset, like `sharded_suite`).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke and
//! gateway-gate jobs upload it as an artifact, feeding the BENCH
//! trajectory).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use spec_bench::service_harness::{strip_analyze_timing, GatewayProcess, ServeProcess};
use spec_bench::{bench_cache_lines, fmt_secs, print_table};
use spec_core::service::{AnalyzeConfig, Request, ServiceClient};
use spec_workloads::ete_suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// Renders `count` uniquely named program sources from the e2e workloads.
fn program_sources(count: usize, cache_lines: u64) -> Vec<String> {
    let suite = ete_suite(cache_lines);
    (0..count)
        .map(|i| {
            let workload = &suite[i % suite.len()];
            let text = workload.program.to_string();
            let (header, body) = text.split_once('\n').expect("program header");
            let name = header.strip_prefix("program ").expect("program header");
            format!("program gwf{i:03}_{name}\n{body}")
        })
        .collect()
}

/// Pipelines one analyze request per source and returns the outputs in
/// request order together with the round's wall time.
fn round(
    client: &mut ServiceClient,
    sources: &[String],
    config: AnalyzeConfig,
) -> (Vec<String>, Duration) {
    let start = Instant::now();
    let mut ids = Vec::with_capacity(sources.len());
    for source in sources {
        let request = Request::Analyze {
            source: source.clone(),
            config,
        };
        ids.push(client.send(&request).expect("request sends"));
    }
    let mut by_id = std::collections::HashMap::new();
    for _ in &ids {
        let response = client.recv().expect("response arrives");
        assert!(response.ok, "request failed: {:?}", response.error);
        by_id.insert(response.id, response.output);
    }
    let outputs = ids
        .into_iter()
        .map(|id| by_id.remove(&Some(id)).expect("every id answered"))
        .collect();
    (outputs, start.elapsed())
}

/// `rounds` timed warm rounds through `client`, every response checked
/// byte-identical post-strip to `reference`.  Returns aggregate req/s.
fn timed_rounds(
    client: &mut ServiceClient,
    sources: &[String],
    config: AnalyzeConfig,
    rounds: usize,
    reference: &[String],
    label: &str,
) -> (f64, Duration) {
    let start = Instant::now();
    for _ in 0..rounds {
        let (outputs, _) = round(client, sources, config);
        for (output, expected) in outputs.iter().zip(reference) {
            assert_eq!(
                &strip_analyze_timing(output),
                expected,
                "a {label} response diverged from its direct counterpart"
            );
        }
    }
    let wall = start.elapsed();
    let requests = (rounds * sources.len()) as f64;
    (requests / wall.as_secs_f64().max(1e-9), wall)
}

/// The `"programs"` count of a backend's status document.
fn programs_on(addr: &str) -> u64 {
    let mut client = ServiceClient::connect(addr).expect("backend answers");
    let status = client.call(&Request::Status).expect("status round-trips");
    status
        .output
        .split("\"programs\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("status reports a program count")
}

/// A named counter out of the gateway's fleet status document.
fn gateway_counter(status: &str, name: &str) -> u64 {
    status
        .split(&format!("\"{name}\": "))
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("status reports `{name}`"))
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let programs = env_usize("SPEC_BENCH_SERVICE_PROGRAMS", 6);
    let rounds = env_usize("SPEC_BENCH_SERVICE_ROUNDS", 4);
    let fleet = env_usize("SPEC_BENCH_GATEWAY_BACKENDS", 3).max(2);

    let Some(specan) = std::env::var("SPECAN_BIN").ok().map(PathBuf::from) else {
        eprintln!("SPECAN_BIN not set: skipping the gateway failover benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    };
    if !specan.is_file() {
        eprintln!("SPECAN_BIN is not a file: skipping the gateway failover benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    }

    let sources = program_sources(programs, cache_lines);
    let config = AnalyzeConfig {
        cache_lines: cache_lines as usize,
        json: true,
        ..AnalyzeConfig::default()
    };

    // Phase 1 — direct: one backend, a cold round fixing the reference
    // outputs, then timed warm rounds.
    let mut direct = ServeProcess::start(&specan, 2);
    let mut direct_client = ServiceClient::connect(direct.addr()).expect("direct connects");
    let (cold_outputs, _) = round(&mut direct_client, &sources, config);
    let reference: Vec<String> = cold_outputs
        .iter()
        .map(|o| strip_analyze_timing(o))
        .collect();
    let (direct_rps, direct_wall) = timed_rounds(
        &mut direct_client,
        &sources,
        config,
        rounds,
        &reference,
        "direct",
    );
    drop(direct_client);
    direct.shutdown();

    // Phase 2 — federated: the same warm rounds through a gateway fronting
    // a fresh fleet.
    let mut backends: Vec<ServeProcess> = (0..fleet)
        .map(|_| ServeProcess::start(&specan, 2))
        .collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gateway = GatewayProcess::start(
        &specan,
        2,
        &addr_refs,
        &[
            "--probe-interval-ms",
            "100",
            "--eject-after",
            "1",
            "--connect-timeout-ms",
            "1000",
        ],
    );
    let mut client = ServiceClient::connect(gateway.addr()).expect("gateway connects");
    let (warm_outputs, _) = round(&mut client, &sources, config); // warm the fleet
    for (output, expected) in warm_outputs.iter().zip(&reference) {
        assert_eq!(&strip_analyze_timing(output), expected);
    }
    let (gateway_rps, gateway_wall) = timed_rounds(
        &mut client,
        &sources,
        config,
        rounds,
        &reference,
        "federated warm",
    );

    // Phase 3 — failover: SIGKILL the warmest backend, keep submitting.
    let victim = (0..backends.len())
        .max_by_key(|&i| programs_on(backends[i].addr()))
        .expect("at least two backends");
    backends[victim].kill();
    let (failover_rps, failover_wall) = timed_rounds(
        &mut client,
        &sources,
        config,
        rounds,
        &reference,
        "failover",
    );

    let status = client.call(&Request::Status).expect("fleet status");
    let rerouted = gateway_counter(&status.output, "rerouted");
    let ejected = gateway_counter(&status.output, "ejected");
    let overhead = direct_rps / gateway_rps.max(1e-9);
    assert!(rerouted > 0, "killing a warm backend must reroute requests");

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"programs\": {programs},\n"));
        out.push_str(&format!("  \"rounds\": {rounds},\n"));
        out.push_str(&format!("  \"backends\": {fleet},\n"));
        out.push_str(&format!(
            "  \"direct_wall_secs\": {:.6},\n",
            direct_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"gateway_wall_secs\": {:.6},\n",
            gateway_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"failover_wall_secs\": {:.6},\n",
            failover_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"direct_warm_requests_per_sec\": {direct_rps:.3},\n"
        ));
        out.push_str(&format!(
            "  \"gateway_warm_requests_per_sec\": {gateway_rps:.3},\n"
        ));
        out.push_str(&format!(
            "  \"failover_warm_requests_per_sec\": {failover_rps:.3},\n"
        ));
        out.push_str(&format!("  \"gateway_overhead\": {overhead:.3},\n"));
        out.push_str(&format!("  \"rerouted\": {rerouted},\n"));
        out.push_str(&format!("  \"ejected\": {ejected},\n"));
        out.push_str("  \"responses_deterministic\": true\n}");
        println!("{out}");
    } else {
        let total = rounds * programs;
        let rows = vec![
            vec![
                "direct (1 server)".to_string(),
                fmt_secs(direct_wall),
                format!("{direct_rps:.1}"),
            ],
            vec![
                format!("gateway ({fleet} backends)"),
                fmt_secs(gateway_wall),
                format!("{gateway_rps:.1}"),
            ],
            vec![
                "gateway (1 killed)".to_string(),
                fmt_secs(failover_wall),
                format!("{failover_rps:.1}"),
            ],
        ];
        print_table(
            &format!(
                "Gateway failover ({rounds} warm rounds x {programs} programs = \
                 {total} requests per phase, {cache_lines}-line cache)"
            ),
            &["Path", "Wall (s)", "Warm req/s"],
            &rows,
        );
        println!(
            "\nGateway overhead {overhead:.2}x; {rerouted} request(s) rerouted and \
             {ejected} backend(s) ejected after the kill.  All responses were \
             byte-identical to their direct counterparts (post timing-strip)."
        );
    }
}
