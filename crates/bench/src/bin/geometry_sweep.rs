//! Full set-associative geometry sweep over the paper's workload tables.
//!
//! The abstract domain supports set-associative caches, but the paper's
//! evaluation (Tables 3/4) only exercises the fully-associative setup.
//! This harness closes the ROADMAP's remaining gap: every workload of the
//! e2e (Table 3), crypto (Table 4) and motivating suites is analysed at
//! ways 1/2/4/8 across several set counts, using one prepared session per
//! workload so the sweep shares unrolled cores and address maps across
//! geometries.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES` — workload scale (default 128); the set
//!   counts sweep `lines/8`, `lines/4` and `lines/2` so capacity moves
//!   with the scale.
//!
//! Pass `--json` for a machine-readable report.  The harness also asserts
//! the domain's monotonicity invariant on every workload and set count:
//! within a fixed set count, growing the associativity never loses a
//! must-hit guarantee.

use spec_bench::{bench_cache_lines, print_table, yes_no};
use spec_cache::CacheConfig;
use spec_core::session::Analyzer;
use spec_core::AnalysisOptions;
use spec_ir::Program;
use spec_workloads::{crypto_suite, ete_suite, figure11_program, figure2_program, quantl_program};

const WAYS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    workload: String,
    table: &'static str,
    num_sets: usize,
    ways: usize,
    must_hits: usize,
    misses: usize,
    speculative_misses: usize,
    unsafe_secret_accesses: usize,
}

impl Row {
    fn leak(&self) -> bool {
        self.unsafe_secret_accesses > 0
    }
}

fn sweep_workload(name: &str, table: &'static str, program: &Program, sets: &[usize]) -> Vec<Row> {
    let prepared = Analyzer::new().prepare(program);
    let mut rows = Vec::new();
    for &num_sets in sets {
        let mut previous_must_hits = None;
        for ways in WAYS {
            let cache = CacheConfig::set_associative(num_sets, ways, 64);
            let options = AnalysisOptions::builder()
                .cache(cache)
                .build()
                .expect("sweep geometries are valid");
            let result = prepared.run(&options);
            let must_hits = result.must_hit_count();
            if let Some(previous) = previous_must_hits {
                assert!(
                    must_hits >= previous,
                    "{name} at {num_sets} sets: {ways} ways lost must-hits \
                     ({must_hits} < {previous})"
                );
            }
            previous_must_hits = Some(must_hits);
            rows.push(Row {
                workload: name.to_string(),
                table,
                num_sets,
                ways,
                must_hits,
                misses: result.miss_count(),
                speculative_misses: result.speculative_miss_count(),
                unsafe_secret_accesses: result
                    .secret_accesses()
                    .filter(|a| !a.observable_hit || a.is_speculative_miss())
                    .count(),
            });
        }
    }
    rows
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let lines = bench_cache_lines();
    let sets: Vec<usize> = [lines / 8, lines / 4, lines / 2]
        .iter()
        .map(|&s| (s as usize).max(1))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for workload in ete_suite(lines) {
        rows.extend(sweep_workload(
            workload.name(),
            "ete",
            &workload.program,
            &sets,
        ));
    }
    for (workload, _) in crypto_suite(lines) {
        rows.extend(sweep_workload(
            workload.name(),
            "crypto",
            &workload.program,
            &sets,
        ));
    }
    for (name, program) in [
        ("figure2", figure2_program(lines)),
        ("figure11", figure11_program(8)),
        ("quantl", quantl_program()),
    ] {
        rows.extend(sweep_workload(name, "motivating", &program, &sets));
    }

    if json {
        println!("{{\n  \"cache_lines\": {lines},\n  \"rows\": [");
        for (i, row) in rows.iter().enumerate() {
            println!(
                "    {{\"workload\": \"{}\", \"table\": \"{}\", \"num_sets\": {}, \
                 \"ways\": {}, \"must_hits\": {}, \"misses\": {}, \
                 \"speculative_misses\": {}, \"unsafe_secret_accesses\": {}, \
                 \"leak\": {}}}{}",
                row.workload,
                row.table,
                row.num_sets,
                row.ways,
                row.must_hits,
                row.misses,
                row.speculative_misses,
                row.unsafe_secret_accesses,
                row.leak(),
                if i + 1 == rows.len() { "" } else { "," }
            );
        }
        println!("  ]\n}}");
        return;
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.workload.clone(),
                row.table.to_string(),
                row.num_sets.to_string(),
                row.ways.to_string(),
                row.must_hits.to_string(),
                row.misses.to_string(),
                row.speculative_misses.to_string(),
                row.unsafe_secret_accesses.to_string(),
                yes_no(row.leak()),
            ]
        })
        .collect();
    print_table(
        &format!("Set-associative geometry sweep ({lines}-line scale)"),
        &[
            "Workload",
            "Table",
            "Sets",
            "Ways",
            "Must-hits",
            "Misses",
            "Sp-misses",
            "Unsafe secret",
            "Leak",
        ],
        &table_rows,
    );
}
