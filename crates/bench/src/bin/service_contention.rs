//! Service contention: warm requests/second under many pipelined
//! connections, one worker vs many.
//!
//! The lock-free L0 tier's pitch is that warm requests stop serializing on
//! the shared session lock: after the first visit each worker thread
//! answers repeats from its own thread-local handle, so adding workers
//! should multiply warm throughput instead of queueing on a mutex.  This
//! harness measures exactly that: it spawns a real `specan serve` twice —
//! once with a single worker, once with the contended worker count — feeds
//! each N concurrent pipelined connections submitting the same warm panel,
//! and reports the aggregate warm req/s of both together with their ratio.
//! Every warm response is checked byte-identical, post timing-strip, to
//! its cold counterpart, so the scaling never comes at the price of
//! determinism.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES`            — cache/workload scale (default 128);
//! * `SPEC_BENCH_SERVICE_PROGRAMS`       — distinct programs (default 6);
//! * `SPEC_BENCH_SERVICE_ROUNDS`         — warm rounds per connection (default 5);
//! * `SPEC_BENCH_CONTENTION_CONNECTIONS` — concurrent connections (default 8);
//! * `SPEC_BENCH_CONTENTION_WORKERS`     — contended worker count (default 4);
//! * `SPECAN_BIN`                        — path to a built `specan` (required;
//!   the harness exits 0 with a note when unset, like `sharded_suite`).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke and
//! contention-gate jobs upload it as an artifact, feeding the BENCH
//! trajectory).

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use spec_bench::service_harness::{strip_analyze_timing, ServeProcess};
use spec_bench::{bench_cache_lines, fmt_secs, print_table};
use spec_core::service::{AnalyzeConfig, Request, ServiceClient};
use spec_workloads::ete_suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// Renders `count` uniquely named program sources from the e2e workloads.
fn program_sources(count: usize, cache_lines: u64) -> Vec<String> {
    let suite = ete_suite(cache_lines);
    (0..count)
        .map(|i| {
            let workload = &suite[i % suite.len()];
            let text = workload.program.to_string();
            let (header, body) = text.split_once('\n').expect("program header");
            let name = header.strip_prefix("program ").expect("program header");
            format!("program svc{i:03}_{name}\n{body}")
        })
        .collect()
}

/// Pipelines one analyze request per source and returns the outputs in
/// request order together with the round's wall time.
fn round(
    client: &mut ServiceClient,
    sources: &[String],
    config: AnalyzeConfig,
) -> (Vec<String>, Duration) {
    let start = Instant::now();
    let mut ids = Vec::with_capacity(sources.len());
    for source in sources {
        let request = Request::Analyze {
            source: source.clone(),
            config,
        };
        ids.push(client.send(&request).expect("request sends"));
    }
    let mut by_id = std::collections::HashMap::new();
    for _ in &ids {
        let response = client.recv().expect("response arrives");
        assert!(response.ok, "request failed: {:?}", response.error);
        by_id.insert(response.id, response.output);
    }
    let outputs = ids
        .into_iter()
        .map(|id| by_id.remove(&Some(id)).expect("every id answered"))
        .collect();
    (outputs, start.elapsed())
}

/// One measured scenario: a `--jobs <workers>` server warmed over one
/// connection, then `connections` concurrent pipelined clients submitting
/// `rounds` warm panels each.  Returns the aggregate warm req/s; every
/// warm response is asserted byte-identical to its cold counterpart post
/// timing-strip.
fn scenario(
    specan: &std::path::Path,
    workers: usize,
    connections: usize,
    rounds: usize,
    sources: &[String],
    config: AnalyzeConfig,
) -> (f64, Duration) {
    let mut server = ServeProcess::start(specan, workers);

    // Warm-up: one cold round prepares every program and fixes the
    // deterministic reference outputs.
    let mut warmer = ServiceClient::connect(server.addr()).expect("client connects");
    let (cold_outputs, _) = round(&mut warmer, sources, config);
    let cold_stripped: Vec<String> = cold_outputs
        .iter()
        .map(|o| strip_analyze_timing(o))
        .collect();
    drop(warmer);

    // All connections start their timed warm rounds together, so the
    // server sees the full contention from the first request.
    let barrier = Barrier::new(connections + 1);
    let wall = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let barrier = &barrier;
                let cold_stripped = &cold_stripped;
                let addr = server.addr().to_string();
                s.spawn(move || {
                    let mut client = ServiceClient::connect(&addr).expect("client connects");
                    barrier.wait();
                    for _ in 0..rounds {
                        let (outputs, _) = round(&mut client, sources, config);
                        for (warm, cold) in outputs.iter().zip(cold_stripped) {
                            assert_eq!(
                                &strip_analyze_timing(warm),
                                cold,
                                "a contended warm response diverged from its \
                                 cold counterpart"
                            );
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().expect("connection thread joins");
        }
        start.elapsed()
    });
    server.shutdown();

    let requests = (connections * rounds * sources.len()) as f64;
    (requests / wall.as_secs_f64().max(1e-9), wall)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let programs = env_usize("SPEC_BENCH_SERVICE_PROGRAMS", 6);
    let rounds = env_usize("SPEC_BENCH_SERVICE_ROUNDS", 5);
    let connections = env_usize("SPEC_BENCH_CONTENTION_CONNECTIONS", 8);
    let workers = env_usize("SPEC_BENCH_CONTENTION_WORKERS", 4);

    let Some(specan) = std::env::var("SPECAN_BIN").ok().map(PathBuf::from) else {
        eprintln!("SPECAN_BIN not set: skipping the service contention benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    };
    if !specan.is_file() {
        eprintln!("SPECAN_BIN is not a file: skipping the service contention benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    }

    let sources = program_sources(programs, cache_lines);
    let config = AnalyzeConfig {
        cache_lines: cache_lines as usize,
        json: true,
        ..AnalyzeConfig::default()
    };

    let (baseline_rps, baseline_wall) = scenario(&specan, 1, connections, rounds, &sources, config);
    let (contended_rps, contended_wall) =
        scenario(&specan, workers, connections, rounds, &sources, config);
    let scaling = contended_rps / baseline_rps.max(1e-9);
    // Warm requests are CPU-bound, so the scaling a reader should expect
    // is bounded by the cores the machine can actually give the workers —
    // record it next to the ratio.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
        out.push_str(&format!("  \"programs\": {programs},\n"));
        out.push_str(&format!("  \"rounds\": {rounds},\n"));
        out.push_str(&format!("  \"connections\": {connections},\n"));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"baseline_wall_secs\": {:.6},\n",
            baseline_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"contended_wall_secs\": {:.6},\n",
            contended_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"baseline_warm_requests_per_sec\": {baseline_rps:.3},\n"
        ));
        out.push_str(&format!(
            "  \"contended_warm_requests_per_sec\": {contended_rps:.3},\n"
        ));
        out.push_str(&format!("  \"scaling\": {scaling:.3},\n"));
        out.push_str("  \"responses_deterministic\": true\n}");
        println!("{out}");
    } else {
        let total = connections * rounds * programs;
        let rows = vec![
            vec![
                "1 worker".to_string(),
                fmt_secs(baseline_wall),
                format!("{baseline_rps:.1}"),
                "1.00x".to_string(),
            ],
            vec![
                format!("{workers} workers"),
                fmt_secs(contended_wall),
                format!("{contended_rps:.1}"),
                format!("{scaling:.2}x"),
            ],
        ];
        print_table(
            &format!(
                "Service contention ({connections} connections x {rounds} warm rounds \
                 x {programs} programs = {total} requests, {cache_lines}-line cache, \
                 {cores} cores)"
            ),
            &["Workers", "Wall (s)", "Warm req/s", "Scaling"],
            &rows,
        );
        println!(
            "\nAll contended warm responses were byte-identical to their cold \
             counterparts (post timing-strip)."
        );
    }
}
