//! Service throughput: requests/second against a live `specan serve`,
//! cold sessions vs warm.
//!
//! The service's pitch is amortization — preparation (unrolling, address
//! maps, VCFGs, fixpoint rounds) happens once per program fingerprint and
//! every later request reuses it.  This harness measures that directly:
//! it spawns a real `specan serve` on an ephemeral port, submits the same
//! panel of programs repeatedly over one pipelined connection, and
//! contrasts the first (cold: every program prepared) round with the
//! steady-state warm rounds.  Responses are also checked for determinism:
//! every warm response must equal its cold counterpart after the timing
//! strip.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES`     — cache/workload scale (default 128);
//! * `SPEC_BENCH_SERVICE_PROGRAMS`— distinct programs (default 6);
//! * `SPEC_BENCH_SERVICE_ROUNDS` — warm rounds (default 5);
//! * `SPECAN_BIN`                — path to a built `specan` (required;
//!   the harness exits 0 with a note when unset, like `sharded_suite`).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke
//! job uploads it as an artifact, feeding the BENCH trajectory).

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use spec_bench::service_harness::{strip_analyze_timing, ServeProcess};
use spec_bench::{bench_cache_lines, fmt_secs, print_table};
use spec_core::service::{AnalyzeConfig, Request, ServiceClient};
use spec_workloads::ete_suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// Renders `count` uniquely named program sources from the e2e workloads.
fn program_sources(count: usize, cache_lines: u64) -> Vec<String> {
    let suite = ete_suite(cache_lines);
    (0..count)
        .map(|i| {
            let workload = &suite[i % suite.len()];
            let text = workload.program.to_string();
            let (header, body) = text.split_once('\n').expect("program header");
            let name = header.strip_prefix("program ").expect("program header");
            format!("program svc{i:03}_{name}\n{body}")
        })
        .collect()
}

/// Pipelines one analyze request per source and returns the outputs in
/// request order together with the round's wall time.
fn round(
    client: &mut ServiceClient,
    sources: &[String],
    config: AnalyzeConfig,
) -> (Vec<String>, Duration) {
    let start = Instant::now();
    let mut ids = Vec::with_capacity(sources.len());
    for source in sources {
        let request = Request::Analyze {
            source: source.clone(),
            config,
        };
        ids.push(client.send(&request).expect("request sends"));
    }
    let mut by_id = std::collections::HashMap::new();
    for _ in &ids {
        let response = client.recv().expect("response arrives");
        assert!(response.ok, "request failed: {:?}", response.error);
        by_id.insert(response.id, response.output);
    }
    let outputs = ids
        .into_iter()
        .map(|id| by_id.remove(&Some(id)).expect("every id answered"))
        .collect();
    (outputs, start.elapsed())
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let programs = env_usize("SPEC_BENCH_SERVICE_PROGRAMS", 6);
    let rounds = env_usize("SPEC_BENCH_SERVICE_ROUNDS", 5);
    let jobs = env_usize(
        "SPEC_BENCH_SCAN_JOBS",
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    );

    let Some(specan) = std::env::var("SPECAN_BIN").ok().map(PathBuf::from) else {
        eprintln!("SPECAN_BIN not set: skipping the service throughput benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    };
    if !specan.is_file() {
        eprintln!("SPECAN_BIN is not a file: skipping the service throughput benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    }

    let sources = program_sources(programs, cache_lines);
    let config = AnalyzeConfig {
        cache_lines: cache_lines as usize,
        json: true,
        ..AnalyzeConfig::default()
    };

    let mut server = ServeProcess::start(&specan, jobs);
    let mut client = ServiceClient::connect(server.addr()).expect("client connects");

    // Round 0 is cold: every program is prepared from scratch.
    let (cold_outputs, cold_wall) = round(&mut client, &sources, config);
    // Steady state: the same panel over warm sessions.
    let mut warm_walls = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (warm_outputs, wall) = round(&mut client, &sources, config);
        // Warm responses are deterministic: byte-identical post-strip.
        for (warm, cold) in warm_outputs.iter().zip(&cold_outputs) {
            assert_eq!(
                strip_analyze_timing(warm),
                strip_analyze_timing(cold),
                "a warm response diverged from its cold counterpart"
            );
        }
        warm_walls.push(wall);
    }
    let _ = client.call(&Request::Shutdown);
    server.shutdown();

    let warm_total: Duration = warm_walls.iter().sum();
    let warm_mean = warm_total / rounds as u32;
    let rps = |wall: Duration| programs as f64 / wall.as_secs_f64().max(1e-9);
    let (cold_rps, warm_rps) = (rps(cold_wall), rps(warm_mean));

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"programs\": {programs},\n"));
        out.push_str(&format!("  \"rounds\": {rounds},\n"));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!(
            "  \"cold_wall_secs\": {:.6},\n",
            cold_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"warm_wall_secs_mean\": {:.6},\n",
            warm_mean.as_secs_f64()
        ));
        out.push_str(&format!("  \"cold_requests_per_sec\": {cold_rps:.3},\n"));
        out.push_str(&format!("  \"warm_requests_per_sec\": {warm_rps:.3},\n"));
        out.push_str(&format!(
            "  \"warm_speedup\": {:.3},\n",
            warm_rps / cold_rps.max(1e-9)
        ));
        out.push_str("  \"responses_deterministic\": true\n}");
        println!("{out}");
    } else {
        let rows = vec![
            vec![
                "cold".to_string(),
                fmt_secs(cold_wall),
                format!("{cold_rps:.1}"),
                "1.00x".to_string(),
            ],
            vec![
                "warm (mean)".to_string(),
                fmt_secs(warm_mean),
                format!("{warm_rps:.1}"),
                format!("{:.2}x", warm_rps / cold_rps.max(1e-9)),
            ],
        ];
        print_table(
            &format!(
                "Service throughput ({programs} programs x {rounds} warm rounds, \
                 {jobs} jobs, {cache_lines}-line cache)"
            ),
            &["Round", "Wall (s)", "Req/s", "Speedup"],
            &rows,
        );
        println!("\nAll warm responses were byte-identical to their cold counterparts (post timing-strip).");
    }
}
