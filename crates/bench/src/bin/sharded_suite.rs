//! Sharded-vs-threaded panel execution: how should a multi-program panel
//! be parallelised?
//!
//! The session API (PR 1) fans one program's configurations out across
//! threads; the batch layer fans the *programs* out across shards — scoped
//! threads or `specan worker` subprocesses.  This harness times the same
//! panel (N generated programs × the standard comparison configurations)
//! under each strategy and checks that every strategy produces the same
//! deterministic merged report.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES`  — cache/workload scale (default 128);
//! * `SPEC_BENCH_SCAN_PROGRAMS` — bundle size (default 6);
//! * `SPEC_BENCH_SCAN_JOBS`   — shard count (default: available parallelism);
//! * `SPECAN_BIN`             — path to a built `specan`; enables the
//!   worker-subprocess mode, which is skipped when unset.
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke job
//! uploads it as an artifact).

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use spec_bench::{bench_cache_lines, fmt_secs, print_table};
use spec_core::batch::{run_bundle, ExecMode, PanelKind, PanelSpec};
use spec_core::session::Analyzer;
use spec_core::BatchReport;
use spec_workloads::ete_suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// Writes `count` uniquely named copies of the e2e workload programs into a
/// scratch directory and returns their paths in bundle order.  The textual
/// IR round-trips, so renaming is a header-line rewrite.
fn write_bundle(dir: &PathBuf, count: usize, cache_lines: u64) -> Vec<PathBuf> {
    let suite = ete_suite(cache_lines);
    std::fs::create_dir_all(dir).expect("scratch dir");
    let mut paths = Vec::with_capacity(count);
    for i in 0..count {
        let workload = &suite[i % suite.len()];
        let text = workload.program.to_string();
        let (header, body) = text.split_once('\n').expect("program header");
        let name = header.strip_prefix("program ").expect("program header");
        let renamed = format!("program scan{i:03}_{name}\n{body}");
        let path = dir.join(format!("scan{i:03}_{}.spec", workload.name()));
        std::fs::write(&path, renamed).expect("write program");
        paths.push(path);
    }
    paths
}

struct Mode {
    name: &'static str,
    wall: Duration,
    report: BatchReport,
}

fn timed(name: &'static str, run: impl FnOnce() -> BatchReport) -> Mode {
    let start = Instant::now();
    let report = run();
    Mode {
        name,
        wall: start.elapsed(),
        report,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let programs = env_usize("SPEC_BENCH_SCAN_PROGRAMS", 6);
    let jobs = env_usize(
        "SPEC_BENCH_SCAN_JOBS",
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
    );
    let panel = PanelSpec {
        kind: PanelKind::Comparison,
        cache_lines: cache_lines as usize,
    };

    let dir = std::env::temp_dir().join(format!("spec-bench-sharded-{}", std::process::id()));
    let bundle = write_bundle(&dir, programs, cache_lines);

    let mut modes = Vec::new();

    // One process, one thread: the in-order reference everything else must
    // reproduce bit-for-bit.
    modes.push(timed("sequential", || {
        run_bundle(&bundle, panel, 1, &ExecMode::InProcess).expect("sequential run")
    }));

    // The session API's axis: per-program, configurations across threads.
    modes.push(timed("suite-threads", || {
        let configs = panel.configs().expect("panel");
        let programs: Vec<spec_ir::Program> = bundle
            .iter()
            .map(|path| {
                let source = std::fs::read_to_string(path).expect("read program");
                spec_ir::text::parse_program(&source).expect("bundle programs round-trip")
            })
            .collect();
        // Stamp each per-program report as a one-program slice so the
        // merged result carries the same bundle checksum as `run_bundle`.
        let checksum = spec_core::batch::panel_checksum(
            panel,
            programs
                .iter()
                .map(spec_ir::fingerprint::program_fingerprint),
        );
        let mut shards = Vec::new();
        for (start, program) in programs.iter().enumerate() {
            let prepared = Analyzer::new().prepare(program);
            let report = prepared.run_suite(&configs).report().without_timing();
            shards.push(BatchReport {
                panel,
                stamp: Some(spec_core::BundleStamp {
                    checksum,
                    total: programs.len(),
                    start,
                }),
                programs: vec![spec_core::batch::ProgramVerdict::from_report(
                    report,
                    prepared.fingerprint(),
                )],
            });
        }
        BatchReport::merge(shards).expect("merge")
    }));

    // The batch layer's axis: programs across shards (scoped threads).
    modes.push(timed("sharded-threads", || {
        run_bundle(&bundle, panel, jobs, &ExecMode::InProcess).expect("sharded run")
    }));

    // Programs across worker subprocesses, when a specan binary is at hand.
    let specan = std::env::var("SPECAN_BIN").ok().map(PathBuf::from);
    match specan {
        Some(worker_exe) if worker_exe.is_file() => {
            modes.push(timed("sharded-workers", || {
                run_bundle(&bundle, panel, jobs, &ExecMode::Subprocess { worker_exe })
                    .expect("worker run")
            }));
        }
        _ => eprintln!("SPECAN_BIN not set or not a file: skipping the worker-subprocess mode"),
    }

    // Every strategy is an execution detail: the merged reports must agree.
    for mode in &modes[1..] {
        assert_eq!(
            mode.report, modes[0].report,
            "mode `{}` diverged from the sequential reference",
            mode.name
        );
    }

    let baseline = modes[0].wall;
    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"programs\": {programs},\n"));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!("  \"leaks\": {},\n", modes[0].report.leak_count()));
        out.push_str("  \"reports_identical\": true,\n");
        out.push_str("  \"modes\": [\n");
        for (i, mode) in modes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"wall_secs\": {:.6}, \"speedup\": {:.3}}}{}\n",
                mode.name,
                mode.wall.as_secs_f64(),
                baseline.as_secs_f64() / mode.wall.as_secs_f64().max(1e-9),
                if i + 1 == modes.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
    } else {
        let rows: Vec<Vec<String>> = modes
            .iter()
            .map(|mode| {
                vec![
                    mode.name.to_string(),
                    fmt_secs(mode.wall),
                    format!(
                        "{:.2}x",
                        baseline.as_secs_f64() / mode.wall.as_secs_f64().max(1e-9)
                    ),
                    mode.report.leak_count().to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Sharded vs. threaded panel execution ({programs} programs x \
                 {} configs, {jobs} jobs, {cache_lines}-line cache)",
                panel.configs().expect("panel").len()
            ),
            &["Mode", "Wall (s)", "Speedup", "Leaks"],
            &rows,
        );
        println!("\nAll modes produced bit-identical merged reports.");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
