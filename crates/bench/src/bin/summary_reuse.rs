//! Compositional fixpoint: whole-program re-prepare vs summary-seeded.
//!
//! When one block of an analysed program changes, the session cache
//! invalidates only that block's forward closure and seeds every other
//! block's fixpoint summary from the previous generation, so the solver
//! re-solves a fraction of the program.  This harness measures that trade
//! per ETE workload: it analyses the program once to populate a donor
//! session, makes a one-block edit, then times (a) a cold re-prepare of
//! the edited program with a fresh analyzer against (b) the same update
//! routed through the [`SessionCache`], which transplants the unchanged
//! summaries.  Both paths must produce byte-identical reports after the
//! timing strip — the same determinism contract the
//! `compositional_equivalence` property suite enforces.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES` — cache/workload scale (default 128).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke
//! job uploads it as an artifact, feeding the BENCH trajectory).

use std::time::{Duration, Instant};

use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_core::session::comparison_configs;
use spec_core::{Analyzer, SessionCache};
use spec_ir::Program;
use spec_workloads::ete_suite;

struct Row {
    name: &'static str,
    blocks: usize,
    reprepare_cold: Duration,
    reprepare_seeded: Duration,
    summary_hits: u64,
    summary_misses: u64,
    summaries_invalidated: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reprepare_cold.as_secs_f64() / self.reprepare_seeded.as_secs_f64().max(1e-9)
    }
}

/// Duplicates the last load of the last memory-touching block: a surgical
/// single-block edit that leaves the region table (and therefore the
/// donor-adoption gate) untouched.  Editing a late block keeps the forward
/// invalidation closure small, which is the favourable — and typical —
/// case for an in-place patch.
fn edit_one_block(program: &Program) -> Program {
    let mut blocks = program.blocks().to_vec();
    let victim = blocks
        .iter()
        .rposition(|b| b.insts.iter().any(|i| i.accesses_memory()))
        .expect("every ETE workload touches memory");
    let dup = blocks[victim]
        .insts
        .iter()
        .rev()
        .find(|i| i.accesses_memory())
        .copied()
        .expect("victim block has a memory access");
    blocks[victim].insts.push(dup);
    Program::new(
        program.name(),
        program.regions().to_vec(),
        blocks,
        program.entry(),
    )
    .expect("edited program stays valid")
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let configs = comparison_configs(bench_cache());

    let mut rows = Vec::new();
    for workload in ete_suite(cache_lines) {
        // Donor generation: analyse the pristine program through a session
        // so its summaries are on record for the edit that follows.
        let mut session = SessionCache::new();
        let donor = session.update(&workload.program);
        donor.prepared.run_suite(&configs);

        let edited = edit_one_block(&workload.program);

        // Baseline: a fresh analyzer knows nothing — whole-program solve.
        let analyzer = Analyzer::new();
        let start = Instant::now();
        let cold = analyzer.prepare(&edited);
        let cold_suite = cold.run_suite(&configs);
        let reprepare_cold = start.elapsed();
        let cold_report = cold_suite.report().without_timing().to_json();

        // Seeded: the session diffs the edit, invalidates the changed
        // block's closure and transplants every other summary.
        let start = Instant::now();
        let update = session.update(&edited);
        let seeded_suite = update.prepared.run_suite(&configs);
        let reprepare_seeded = start.elapsed();
        assert_eq!(
            cold_report,
            seeded_suite.report().without_timing().to_json(),
            "summary-seeded report diverged from the cold one for `{}`",
            workload.name()
        );

        let stats = update.prepared.cache_stats();
        rows.push(Row {
            name: workload.info.name,
            blocks: workload.program.blocks().len(),
            reprepare_cold,
            reprepare_seeded,
            summary_hits: stats.summary_hits,
            summary_misses: stats.summary_misses,
            summaries_invalidated: stats.summaries_invalidated,
        });
    }

    let total_hits = rows.iter().map(|r| r.summary_hits).sum::<u64>();
    assert!(
        total_hits > 0,
        "no workload reused a single summary — seeding is not engaging"
    );
    let cold_total = rows.iter().map(|r| r.reprepare_cold).sum::<Duration>();
    let seeded_total = rows.iter().map(|r| r.reprepare_seeded).sum::<Duration>();

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"configs\": {},\n", configs.len()));
        out.push_str("  \"workloads\": [\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"blocks\": {}, \"reprepare_cold_secs\": {:.6}, \
                 \"reprepare_seeded_secs\": {:.6}, \"summary_hits\": {}, \
                 \"summary_misses\": {}, \"summaries_invalidated\": {}, \
                 \"seeded_speedup\": {:.3}}}{}\n",
                row.name,
                row.blocks,
                row.reprepare_cold.as_secs_f64(),
                row.reprepare_seeded.as_secs_f64(),
                row.summary_hits,
                row.summary_misses,
                row.summaries_invalidated,
                row.speedup(),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"reprepare_cold_total_secs\": {:.6},\n",
            cold_total.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"reprepare_seeded_total_secs\": {:.6},\n",
            seeded_total.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"seeded_speedup\": {:.3},\n",
            cold_total.as_secs_f64() / seeded_total.as_secs_f64().max(1e-9)
        ));
        out.push_str(&format!("  \"summary_hits_total\": {total_hits},\n"));
        out.push_str("  \"reports_identical\": true\n}");
        println!("{out}");
    } else {
        let table = rows
            .iter()
            .map(|row| {
                vec![
                    row.name.to_string(),
                    format!("{}", row.blocks),
                    fmt_secs(row.reprepare_cold),
                    fmt_secs(row.reprepare_seeded),
                    format!("{:.2}x", row.speedup()),
                    format!(
                        "{}h/{}m ({} inv)",
                        row.summary_hits, row.summary_misses, row.summaries_invalidated
                    ),
                ]
            })
            .collect::<Vec<_>>();
        print_table(
            &format!(
                "One-block edit: cold re-prepare vs summary-seeded ({} configs, \
                 {cache_lines}-line cache)",
                configs.len()
            ),
            &[
                "Workload",
                "Blocks",
                "Cold (s)",
                "Seeded (s)",
                "Speedup",
                "Summaries",
            ],
            &table,
        );
        println!(
            "\nTotal re-prepare after a one-block edit: cold {} s vs seeded {} s \
             ({:.2}x); {total_hits} summaries transplanted across the suite.  All \
             seeded reports were byte-identical to their cold counterparts (post \
             timing-strip).",
            fmt_secs(cold_total),
            fmt_secs(seeded_total),
            cold_total.as_secs_f64() / seeded_total.as_secs_f64().max(1e-9)
        );
    }
}
