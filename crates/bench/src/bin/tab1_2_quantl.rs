//! Regenerates the Table 1 / Table 2 walkthrough: the cache state of the
//! `quantl` routine (Figure 8/9) per basic block, under the non-speculative
//! and the speculative analysis.

use spec_bench::{bench_cache, print_table};
use spec_core::{AnalysisOptions, CacheAnalysis};
use spec_workloads::quantl_program;

fn main() {
    let cache = bench_cache();
    let program = quantl_program();

    for (title, options) in [
        (
            "Table 1 — cache regions fully cached per block (non-speculative)",
            AnalysisOptions::non_speculative().with_cache(cache),
        ),
        (
            "Table 2 — cache regions fully cached per block (speculative)",
            AnalysisOptions::speculative().with_cache(cache),
        ),
    ] {
        let result = CacheAnalysis::new(options).run(&program);
        let rows: Vec<Vec<String>> = result
            .accesses()
            .iter()
            .map(|access| {
                let cached = result.fully_cached_regions_at(access.node);
                vec![
                    result.program.block(access.block).label(),
                    format!("{}[{}]", access.region_name, access.inst_index),
                    if access.observable_hit { "hit" } else { "may miss" }.to_string(),
                    cached.join(", "),
                ]
            })
            .collect();
        print_table(
            title,
            &["Block", "Access", "Verdict", "Regions fully cached before the access"],
            &rows,
        );
    }
}
