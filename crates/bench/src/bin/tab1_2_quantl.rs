//! Regenerates the Table 1 / Table 2 walkthrough: the cache state of the
//! `quantl` routine (Figure 8/9) per basic block, under the non-speculative
//! and the speculative analysis.

use spec_bench::{bench_cache, print_table};
use spec_core::{AnalysisOptions, Analyzer};
use spec_workloads::quantl_program;

fn main() {
    let cache = bench_cache();
    let program = quantl_program();

    let prepared = Analyzer::new().prepare(&program);
    let suite = prepared.run_suite(&[
        (
            "Table 1 — cache regions fully cached per block (non-speculative)",
            AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .unwrap(),
        ),
        (
            "Table 2 — cache regions fully cached per block (speculative)",
            AnalysisOptions::builder().cache(cache).build().unwrap(),
        ),
    ]);
    for run in &suite.runs {
        let (title, result) = (&run.label, &run.result);
        let rows: Vec<Vec<String>> = result
            .accesses()
            .iter()
            .map(|access| {
                let cached = result.fully_cached_regions_at(access.node);
                vec![
                    result.program.block(access.block).label(),
                    format!("{}[{}]", access.region_name, access.inst_index),
                    if access.observable_hit {
                        "hit"
                    } else {
                        "may miss"
                    }
                    .to_string(),
                    cached.join(", "),
                ]
            })
            .collect();
        print_table(
            title,
            &[
                "Block",
                "Access",
                "Verdict",
                "Regions fully cached before the access",
            ],
            &rows,
        );
    }
}
