//! Regenerates Table 3: statistics of the execution-time-estimation
//! benchmarks (original LoC from the paper plus the size of our synthetic
//! stand-ins).

use spec_bench::{bench_cache_lines, print_table};
use spec_workloads::ete_suite;

fn main() {
    let rows: Vec<Vec<String>> = ete_suite(bench_cache_lines())
        .iter()
        .map(|w| {
            vec![
                w.info.name.to_string(),
                w.info.source.to_string(),
                w.info.description.to_string(),
                w.info.paper_loc.to_string(),
                w.program.instruction_count().to_string(),
                w.program.branch_count().to_string(),
                w.program.memory_access_count().to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3 — execution time estimation: benchmark statistics",
        &[
            "Name",
            "Source",
            "Description",
            "LoC (paper)",
            "IR instructions (ours)",
            "Branches (ours)",
            "Memory accesses (ours)",
        ],
        &rows,
    );
}
