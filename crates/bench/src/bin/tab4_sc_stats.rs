//! Regenerates Table 4: statistics of the side-channel-detection benchmarks.

use spec_bench::{bench_cache_lines, print_table};
use spec_workloads::crypto_suite;

fn main() {
    let rows: Vec<Vec<String>> = crypto_suite(bench_cache_lines())
        .iter()
        .map(|(w, buffer)| {
            vec![
                w.info.name.to_string(),
                w.info.source.to_string(),
                w.info.description.to_string(),
                w.info.paper_loc.to_string(),
                w.program.instruction_count().to_string(),
                w.program.branch_count().to_string(),
                buffer.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 4 — side channel detection: benchmark statistics",
        &[
            "Name",
            "Source",
            "Description",
            "LoC (paper)",
            "IR instructions (ours)",
            "Branches (ours)",
            "Default buffer (bytes)",
        ],
        &rows,
    );
}
