//! Regenerates Table 5: execution-time estimation, non-speculative vs.
//! speculative analysis (analysis time, #Miss, #SpMiss, #Branch, #Iteration).

use spec_analysis::EteComparison;
use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_workloads::ete_suite;

fn main() {
    let cache = bench_cache();
    let suite = ete_suite(bench_cache_lines());
    let comparison = EteComparison::new(cache);
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|w| {
            let row = comparison.run(&w.program);
            vec![
                row.name.clone(),
                fmt_secs(row.nonspec_time),
                row.nonspec_miss.to_string(),
                fmt_secs(row.spec_time),
                row.spec_miss.to_string(),
                row.spec_spmiss.to_string(),
                row.branches.to_string(),
                row.iterations.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 5 — execution time estimation ({}-line cache)",
            bench_cache_lines()
        ),
        &[
            "Name",
            "Non-spec time (s)",
            "Non-spec #Miss",
            "Spec time (s)",
            "Spec #Miss",
            "#SpMiss",
            "#Branch",
            "#Iteration",
        ],
        &rows,
    );
}
