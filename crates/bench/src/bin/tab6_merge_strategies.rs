//! Regenerates Table 6: merging at the rollback point vs. just-in-time
//! merging of speculative states.

use spec_analysis::MergeComparison;
use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table};
use spec_workloads::ete_suite;

fn main() {
    let cache = bench_cache();
    let suite = ete_suite(bench_cache_lines());
    let comparison = MergeComparison::new(cache);
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|w| {
            let row = comparison.run(&w.program);
            vec![
                row.name.clone(),
                fmt_secs(row.rollback_time),
                row.rollback_miss.to_string(),
                row.rollback_spmiss.to_string(),
                row.rollback_iterations.to_string(),
                fmt_secs(row.jit_time),
                row.jit_miss.to_string(),
                row.jit_spmiss.to_string(),
                row.jit_iterations.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 6 — merging strategies ({}-line cache)",
            bench_cache_lines()
        ),
        &[
            "Name",
            "Rollback time (s)",
            "Rollback #Miss",
            "Rollback #SpMiss",
            "Rollback #Ite",
            "JIT time (s)",
            "JIT #Miss",
            "JIT #SpMiss",
            "JIT #Ite",
        ],
        &rows,
    );
}
