//! Regenerates Table 7: side-channel detection, non-speculative vs.
//! speculative analysis, with the attacker-controlled buffer sized so the
//! non-speculative working set just fits the cache (the paper's procedure).

use spec_analysis::SideChannelComparison;
use spec_bench::{bench_cache, bench_cache_lines, fmt_secs, print_table, yes_no};
use spec_workloads::crypto_suite;

fn main() {
    let cache = bench_cache();
    let comparison = SideChannelComparison::new(cache);
    let rows: Vec<Vec<String>> = crypto_suite(bench_cache_lines())
        .iter()
        .map(|(w, buffer)| {
            let row = comparison.run(&w.program, *buffer);
            vec![
                row.name.clone(),
                row.buffer_bytes.to_string(),
                fmt_secs(row.nonspec_time),
                yes_no(row.nonspec_leak),
                fmt_secs(row.spec_time),
                yes_no(row.spec_leak),
                row.empirically_confirmed.map_or("-".to_string(), yes_no),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 7 — side channel detection ({}-line cache)",
            bench_cache_lines()
        ),
        &[
            "Name",
            "Buffer (byte)",
            "Non-spec time (s)",
            "Non-spec leak",
            "Spec time (s)",
            "Spec leak",
            "Simulator confirms",
        ],
        &rows,
    );
}
