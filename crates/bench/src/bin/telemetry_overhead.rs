//! Telemetry overhead: warm request throughput of a `specan serve` with
//! the NDJSON trace log enabled vs a plain server, plus the proof that
//! telemetry is a side channel — every response byte-identical (post
//! timing-strip) between the two.
//!
//! The telemetry pitch is observability without a tax: the metric record
//! path is two relaxed `fetch_add`s, the trace log rides a bounded channel
//! to a dedicated writer thread, and neither touches response bytes.  This
//! harness runs the same warm analyze rounds against both servers and
//! asserts the traced server stays within `SPEC_BENCH_MAX_TELEMETRY_OVERHEAD`
//! (default 1.05 — five percent) of the plain one, then scrapes the traced
//! server's `metrics` exposition and reconciles it with the trace-log file.
//!
//! Knobs (environment):
//!
//! * `SPEC_BENCH_CACHE_LINES`              — cache/workload scale (default 128);
//! * `SPEC_BENCH_SERVICE_PROGRAMS`         — distinct programs (default 6);
//! * `SPEC_BENCH_SERVICE_ROUNDS`           — timed warm rounds (default 8);
//! * `SPEC_BENCH_MAX_TELEMETRY_OVERHEAD`   — throughput ratio gate (default 1.05);
//! * `SPECAN_BIN`                          — path to a built `specan` (required;
//!   the harness exits 0 with a note when unset, like `sharded_suite`).
//!
//! Pass `--json` to emit a machine-readable report (the CI bench-smoke job
//! uploads it as an artifact, feeding the BENCH trajectory).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use spec_bench::service_harness::{strip_analyze_timing, Scratch, ServeProcess};
use spec_bench::{bench_cache_lines, fmt_secs, print_table};
use spec_core::service::{AnalyzeConfig, Request, ServiceClient};
use spec_workloads::ete_suite;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

/// Renders `count` uniquely named program sources from the e2e workloads.
fn program_sources(count: usize, cache_lines: u64) -> Vec<String> {
    let suite = ete_suite(cache_lines);
    (0..count)
        .map(|i| {
            let workload = &suite[i % suite.len()];
            let text = workload.program.to_string();
            let (header, body) = text.split_once('\n').expect("program header");
            let name = header.strip_prefix("program ").expect("program header");
            format!("program tel{i:03}_{name}\n{body}")
        })
        .collect()
}

/// Pipelines one analyze request per source and returns outputs in order.
fn round(client: &mut ServiceClient, sources: &[String], config: AnalyzeConfig) -> Vec<String> {
    let mut ids = Vec::with_capacity(sources.len());
    for source in sources {
        let request = Request::Analyze {
            source: source.clone(),
            config,
        };
        ids.push(client.send(&request).expect("request sends"));
    }
    let mut by_id = std::collections::HashMap::new();
    for _ in &ids {
        let response = client.recv().expect("response arrives");
        assert!(response.ok, "request failed: {:?}", response.error);
        by_id.insert(response.id, response.output);
    }
    ids.into_iter()
        .map(|id| by_id.remove(&Some(id)).expect("every id answered"))
        .collect()
}

/// One server's cold round (fixing its reference outputs) plus `rounds`
/// timed warm rounds.  Returns (stripped outputs, warm req/s, warm wall).
fn measure(
    addr: &str,
    sources: &[String],
    config: AnalyzeConfig,
    rounds: usize,
) -> (Vec<String>, f64, Duration) {
    let mut client = ServiceClient::connect(addr).expect("server connects");
    let cold = round(&mut client, sources, config);
    let reference: Vec<String> = cold.iter().map(|o| strip_analyze_timing(o)).collect();
    let start = Instant::now();
    for _ in 0..rounds {
        let outputs = round(&mut client, sources, config);
        for (output, expected) in outputs.iter().zip(&reference) {
            assert_eq!(
                &strip_analyze_timing(output),
                expected,
                "a warm response diverged from the cold reference"
            );
        }
    }
    let wall = start.elapsed();
    let requests = (rounds * sources.len()) as f64;
    (reference, requests / wall.as_secs_f64().max(1e-9), wall)
}

/// One exact series value out of a Prometheus exposition.
fn series_value(exposition: &str, series: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(series)?.strip_prefix(' '))
        .unwrap_or_else(|| panic!("exposition lacks `{series}`"))
        .parse()
        .expect("series value parses")
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cache_lines = bench_cache_lines();
    let programs = env_usize("SPEC_BENCH_SERVICE_PROGRAMS", 6);
    let rounds = env_usize("SPEC_BENCH_SERVICE_ROUNDS", 8);
    let max_overhead = env_f64("SPEC_BENCH_MAX_TELEMETRY_OVERHEAD", 1.05);

    let Some(specan) = std::env::var("SPECAN_BIN").ok().map(PathBuf::from) else {
        eprintln!("SPECAN_BIN not set: skipping the telemetry overhead benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    };
    if !specan.is_file() {
        eprintln!("SPECAN_BIN is not a file: skipping the telemetry overhead benchmark");
        if json {
            println!("{{\"skipped\": true}}");
        }
        return;
    }

    let sources = program_sources(programs, cache_lines);
    let config = AnalyzeConfig {
        cache_lines: cache_lines as usize,
        json: true,
        ..AnalyzeConfig::default()
    };

    // Phase 1 — plain: metrics record (they always do), no trace log.
    let mut plain = ServeProcess::start(&specan, 2);
    let (plain_reference, plain_rps, plain_wall) = measure(plain.addr(), &sources, config, rounds);
    plain.shutdown();

    // Phase 2 — traced: the same rounds with `--trace-log` streaming one
    // NDJSON event per request.
    let scratch = Scratch::new("telemetry-overhead");
    let trace_path = scratch.dir().join("trace.ndjson");
    let trace_flag = trace_path.to_str().expect("utf-8 scratch path");
    let mut traced = ServeProcess::start_with_args(&specan, 2, &["--trace-log", trace_flag]);
    let (traced_reference, traced_rps, traced_wall) =
        measure(traced.addr(), &sources, config, rounds);

    // The side-channel proof: both servers produced identical bytes.
    assert_eq!(
        plain_reference, traced_reference,
        "telemetry changed response bytes"
    );

    // The ledger agrees with the traffic before shutdown.
    let expected = ((rounds + 1) * programs) as f64;
    let mut client = ServiceClient::connect(traced.addr()).expect("traced connects");
    let metrics = client.call(&Request::Metrics).expect("metrics scrapes");
    assert!(metrics.ok);
    let exposition = metrics.output;
    assert_eq!(
        series_value(
            &exposition,
            "spec_requests_total{kind=\"analyze\",outcome=\"ok\"}"
        ),
        expected,
        "the request ledger must count every analyze"
    );
    let p50 = {
        let total: f64 = series_value(&exposition, "spec_request_seconds_sum{kind=\"analyze\"}");
        total / expected
    };
    drop(client);
    traced.shutdown();

    // One trace event per queued request: the cold round plus every warm
    // round.  Inline commands (metrics, status, shutdown) never log.
    let trace = std::fs::read_to_string(&trace_path).expect("trace log exists");
    let events = trace.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(
        events,
        (rounds + 1) * programs,
        "one trace event per queued request"
    );

    let overhead = plain_rps / traced_rps.max(1e-9);
    assert!(
        overhead <= max_overhead,
        "telemetry overhead {overhead:.3}x exceeds the {max_overhead:.2}x gate \
         (plain {plain_rps:.1} req/s, traced {traced_rps:.1} req/s)"
    );

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cache_lines\": {cache_lines},\n"));
        out.push_str(&format!("  \"programs\": {programs},\n"));
        out.push_str(&format!("  \"rounds\": {rounds},\n"));
        out.push_str(&format!(
            "  \"plain_wall_secs\": {:.6},\n",
            plain_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"traced_wall_secs\": {:.6},\n",
            traced_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"plain_warm_requests_per_sec\": {plain_rps:.3},\n"
        ));
        out.push_str(&format!(
            "  \"traced_warm_requests_per_sec\": {traced_rps:.3},\n"
        ));
        out.push_str(&format!("  \"telemetry_overhead\": {overhead:.3},\n"));
        out.push_str(&format!("  \"mean_request_secs\": {p50:.6},\n"));
        out.push_str(&format!("  \"trace_events\": {events},\n"));
        out.push_str("  \"responses_deterministic\": true\n}");
        println!("{out}");
    } else {
        let total = rounds * programs;
        let rows = vec![
            vec![
                "plain serve".to_string(),
                fmt_secs(plain_wall),
                format!("{plain_rps:.1}"),
            ],
            vec![
                "serve --trace-log".to_string(),
                fmt_secs(traced_wall),
                format!("{traced_rps:.1}"),
            ],
        ];
        print_table(
            &format!(
                "Telemetry overhead ({rounds} warm rounds x {programs} programs = \
                 {total} requests per server, {cache_lines}-line cache)"
            ),
            &["Server", "Wall (s)", "Warm req/s"],
            &rows,
        );
        println!(
            "\nOverhead {overhead:.2}x (gate {max_overhead:.2}x); {events} trace \
             event(s) written; mean warm request {p50:.6}s.  All responses were \
             byte-identical with telemetry enabled (post timing-strip)."
        );
    }
}
