//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index).  The binaries print
//! GitHub-flavoured markdown tables so their output can be pasted directly
//! into `EXPERIMENTS.md`.
//!
//! The machine scale is controlled by the `SPEC_BENCH_CACHE_LINES`
//! environment variable (default 128): the synthetic workloads and the cache
//! are scaled together, which preserves the qualitative shape of the paper's
//! results (who wins, where the crossovers are) while keeping the harness
//! fast enough for CI.  Set it to 512 to reproduce the paper's 32-KiB
//! configuration.

use std::time::Duration;

use spec_cache::CacheConfig;

pub mod service_harness;

/// Number of cache lines used by the benchmark harness.
///
/// Controlled by `SPEC_BENCH_CACHE_LINES`; defaults to 128.
pub fn bench_cache_lines() -> u64 {
    std::env::var("SPEC_BENCH_CACHE_LINES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v >= 16)
        .unwrap_or(128)
}

/// The cache configuration used by the harness (fully associative, 64-byte
/// lines, LRU — the paper's model at the configured scale).
pub fn bench_cache() -> CacheConfig {
    CacheConfig::fully_associative(bench_cache_lines() as usize, 64)
}

/// Formats a duration in seconds with two decimals, like the paper's tables.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Prints a markdown table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Renders a boolean as the paper's "Yes"/"No".
pub fn yes_no(v: bool) -> String {
    if v {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_lines_default_and_floor() {
        // The default is used when the variable is unset in the test env.
        let lines = bench_cache_lines();
        assert!(lines >= 16);
        assert_eq!(bench_cache().line_size, 64);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1234)), "1.23");
        assert_eq!(yes_no(true), "Yes");
        assert_eq!(yes_no(false), "No");
    }
}
