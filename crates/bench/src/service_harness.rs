//! Shared harness for driving a real `specan serve` process — used by the
//! `service_throughput` bench bin and the workspace's `service_equivalence`
//! integration tests, so the banner-scrape, log-drain and timing-strip
//! logic evolves in one place.

use std::io::{BufRead as _, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

use spec_core::service::{Request, ServiceClient};

/// A spawned `specan serve` child on an ephemeral port.
///
/// [`ServeProcess::start`] scrapes the bound address from the server's
/// first stderr line (`serve: listening on <addr> ...`) and keeps a
/// background thread draining the per-request log so the server never
/// blocks on a full pipe.  Call [`ServeProcess::shutdown`] — or drop the
/// value — to stop it.
pub struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Spawns `<specan> serve --addr 127.0.0.1:0 --jobs <jobs>`.
    ///
    /// # Panics
    ///
    /// Panics when the binary cannot be spawned or the banner line does
    /// not arrive — both setup failures a harness should fail loudly on.
    pub fn start(specan: &Path, jobs: usize) -> ServeProcess {
        let mut child = Command::new(specan)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--jobs",
                &jobs.to_string(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("specan serve spawns");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("serve prints its address");
        let addr = line
            .strip_prefix("serve: listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        ServeProcess { child, addr }
    }

    /// The `host:port` the server actually bound.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests a graceful shutdown and reaps the child.  Best-effort and
    /// idempotent: a server that already died is simply reaped.
    pub fn shutdown(&mut self) {
        if let Ok(mut client) = ServiceClient::connect(&self.addr) {
            let _ = client.call(&Request::Shutdown);
        }
        let _ = self.child.wait();
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Zeroes the `"time_secs"` wall clocks of `analyze`/`compare` JSON output
/// — the execution-describing bytes the byte-identity contracts strip on
/// both sides (the CI gates' `sed` is the shell twin of this function).
pub fn strip_analyze_timing(output: &str) -> String {
    let mut out = String::with_capacity(output.len());
    for line in output.lines() {
        if let Some(at) = line.find("\"time_secs\": ") {
            out.push_str(&line[..at]);
            out.push_str("\"time_secs\": 0");
            out.push_str(line[at..].find('}').map_or("", |_| "}"));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}
