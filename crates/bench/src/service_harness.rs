//! Shared harness for driving a real `specan serve` process — used by the
//! `service_throughput` bench bin and the workspace's service-facing
//! integration suites (`service_equivalence`, `eviction_equivalence`,
//! `service_soak`), so the banner-scrape, log-drain, timing-strip,
//! program-generator and scratch-dir logic evolves in one place.

use std::io::{BufRead as _, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

use spec_core::service::{Request, ServiceClient};

/// A spawned `specan serve` child on an ephemeral port.
///
/// [`ServeProcess::start`] scrapes the bound address from the server's
/// first stderr line (`serve: listening on <addr> ...`) and keeps a
/// background thread draining the per-request log so the server never
/// blocks on a full pipe.  Call [`ServeProcess::shutdown`] — or drop the
/// value — to stop it.
pub struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Spawns `<specan> serve --addr 127.0.0.1:0 --jobs <jobs>`.
    ///
    /// # Panics
    ///
    /// Panics when the binary cannot be spawned or the banner line does
    /// not arrive — both setup failures a harness should fail loudly on.
    pub fn start(specan: &Path, jobs: usize) -> ServeProcess {
        Self::start_with_args(specan, jobs, &[])
    }

    /// Like [`ServeProcess::start`], with extra `serve` flags appended
    /// (e.g. `["--max-session-bytes", "65536"]` for the eviction suites).
    ///
    /// # Panics
    ///
    /// Same as [`ServeProcess::start`].
    pub fn start_with_args(specan: &Path, jobs: usize, extra: &[&str]) -> ServeProcess {
        let mut child = Command::new(specan)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--jobs",
                &jobs.to_string(),
            ])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("specan serve spawns");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("serve prints its address");
        let addr = line
            .strip_prefix("serve: listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        ServeProcess { child, addr }
    }

    /// The `host:port` the server actually bound.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Hard-kills the server without a shutdown handshake — the harness's
    /// stand-in for a crash (or SIGKILL) in the warm-restart suites, which
    /// must prove that whatever survives on disk is enough to answer again.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Requests a graceful shutdown and reaps the child.  Best-effort and
    /// idempotent: a server that already died is simply reaped.
    pub fn shutdown(&mut self) {
        if let Ok(mut client) = ServiceClient::connect(&self.addr) {
            let _ = client.call(&Request::Shutdown);
        }
        let _ = self.child.wait();
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A spawned `specan gateway` child on an ephemeral port, fronting a fleet
/// of already-running backends.  Same banner-scrape and log-drain contract
/// as [`ServeProcess`]; the gateway's `shutdown` stops only the gateway —
/// each backend keeps its own lifecycle.
pub struct GatewayProcess {
    child: Child,
    addr: String,
}

impl GatewayProcess {
    /// Spawns `<specan> gateway --addr 127.0.0.1:0 --jobs <jobs>` with one
    /// `--backend <addr>` per entry of `backends`, plus `extra` flags
    /// (e.g. `["--probe-interval-ms", "100"]`).
    ///
    /// # Panics
    ///
    /// Panics when the binary cannot be spawned or the banner line does
    /// not arrive — both setup failures a harness should fail loudly on.
    pub fn start(specan: &Path, jobs: usize, backends: &[&str], extra: &[&str]) -> GatewayProcess {
        let mut command = Command::new(specan);
        command.args([
            "gateway",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            &jobs.to_string(),
        ]);
        for backend in backends {
            command.args(["--backend", backend]);
        }
        let mut child = command
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("specan gateway spawns");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("gateway prints its address");
        let addr = line
            .strip_prefix("gateway: listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected gateway banner: {line:?}"))
            .to_string();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        GatewayProcess { child, addr }
    }

    /// The `host:port` the gateway actually bound.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests a graceful shutdown and reaps the child.  Best-effort and
    /// idempotent: a gateway that already died is simply reaped.
    pub fn shutdown(&mut self) {
        if let Ok(mut client) = ServiceClient::connect(&self.addr) {
            let _ = client.call(&Request::Shutdown);
        }
        let _ = self.child.wait();
    }
}

impl Drop for GatewayProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Deterministic xorshift64* generator: the seed-reproducible randomness
/// behind every service property suite.
pub struct Rng(u64);

impl Rng {
    /// A generator from a fixed seed (zero is mapped to one).
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A draw uniform in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A random textual program: straight-line loads, an optional input-branch
/// diamond, an optional secret-indexed lookup.  The same `name` across
/// regenerations makes a regeneration an in-place *edit* of the program —
/// which is what the warm-cache suites feed their servers.
pub fn random_program_text(rng: &mut Rng, name: &str) -> String {
    let mut out = format!("program {name}\nregion table 768\nregion flag 8\n\n");
    out.push_str("block main entry:\n");
    for _ in 0..1 + rng.below(5) {
        out.push_str(&format!("  load table[{}]\n", rng.below(12) * 64));
    }
    out.push_str("  load flag[0]\n");
    if rng.below(2) == 1 {
        out.push_str("  branch mem(flag[0]) input_bit(0) -> left, right\n\n");
        out.push_str(&format!(
            "block left:\n  load table[{}]\n  jump tail\n\n",
            rng.below(12) * 64
        ));
        out.push_str(&format!(
            "block right:\n  load table[{}]\n  jump tail\n\n",
            rng.below(12) * 64
        ));
        out.push_str("block tail:\n");
    }
    if rng.below(2) == 1 {
        out.push_str("  load table[secret*64]\n");
    } else {
        out.push_str(&format!("  load table[{}]\n", rng.below(12) * 64));
    }
    out.push_str("  ret\n");
    out
}

static SCRATCH_ID: AtomicUsize = AtomicUsize::new(0);

/// A process-unique scratch directory, removed on drop.
pub struct Scratch(PathBuf);

impl Scratch {
    /// Creates `<tmp>/<label>-<pid>-<seq>`.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created.
    pub fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "{label}-{}-{}",
            std::process::id(),
            SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    /// The scratch directory itself.
    pub fn dir(&self) -> &Path {
        &self.0
    }

    /// Writes `contents` under `name` and returns the full path.
    ///
    /// # Panics
    ///
    /// Panics when the write fails.
    pub fn write(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Zeroes the execution-describing fields of `analyze`/`compare` JSON
/// output — `"time_secs"` wall clocks and `"iterations"` worklist-pop
/// counts (summary seeding legitimately shrinks the latter) — the bytes
/// the byte-identity contracts strip on both sides (the CI gates' `sed`
/// is the shell twin of this function).
pub fn strip_analyze_timing(output: &str) -> String {
    let mut out = String::with_capacity(output.len());
    for line in output.lines() {
        let line = zero_numeric_field(line, "\"iterations\": ");
        if let Some(at) = line.find("\"time_secs\": ") {
            out.push_str(&line[..at]);
            out.push_str("\"time_secs\": 0");
            out.push_str(line[at..].find('}').map_or("", |_| "}"));
        } else {
            out.push_str(&line);
        }
        out.push('\n');
    }
    out
}

/// Replaces the integer following `prefix` with `0`, leaving the rest of
/// the line untouched.  No-op when the prefix is absent.
fn zero_numeric_field(line: &str, prefix: &str) -> String {
    let Some(at) = line.find(prefix) else {
        return line.to_string();
    };
    let start = at + prefix.len();
    let end = line[start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |offset| start + offset);
    format!("{}{prefix}0{}", &line[..at], &line[end..])
}
