//! The classic interval domain.
//!
//! The paper uses intervals as its running example of an abstract domain
//! (Section 3.1) and of widening (Section 6.3: `0 ≤ x ≤ 3` widened against
//! `0 ≤ x ≤ 5` becomes `0 ≤ x ≤ +∞`).  The speculative cache analysis does
//! not need intervals, but they demonstrate that the fixpoint engine in
//! [`crate::solver`] is domain-agnostic, exactly as claimed in the paper
//! ("the abstract domain may be interval or octagonal").

use std::fmt;

use crate::lattice::JoinSemiLattice;

/// A (possibly unbounded, possibly empty) integer interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound; `None` is −∞.
    lo: Option<i64>,
    /// Upper bound; `None` is +∞.
    hi: Option<i64>,
    /// Empty interval marker (the bottom element).
    empty: bool,
}

impl Interval {
    /// The empty interval (bottom).
    pub fn bottom() -> Self {
        Self {
            lo: None,
            hi: None,
            empty: true,
        }
    }

    /// The full interval (−∞, +∞).
    pub fn top() -> Self {
        Self {
            lo: None,
            hi: None,
            empty: false,
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn constant(v: i64) -> Self {
        Self::new(Some(v), Some(v))
    }

    /// An interval with the given (optional) bounds.
    ///
    /// # Panics
    ///
    /// Panics if both bounds are finite and `lo > hi`.
    pub fn new(lo: Option<i64>, hi: Option<i64>) -> Self {
        if let (Some(l), Some(h)) = (lo, hi) {
            assert!(l <= h, "interval lower bound exceeds upper bound");
        }
        Self {
            lo,
            hi,
            empty: false,
        }
    }

    /// Returns `true` if this is the empty interval.
    pub fn is_bottom(&self) -> bool {
        self.empty
    }

    /// Lower bound (`None` when unbounded or empty).
    pub fn lo(&self) -> Option<i64> {
        if self.empty {
            None
        } else {
            self.lo
        }
    }

    /// Upper bound (`None` when unbounded or empty).
    pub fn hi(&self) -> Option<i64> {
        if self.empty {
            None
        } else {
            self.hi
        }
    }

    /// Whether the interval contains `v`.
    pub fn contains(&self, v: i64) -> bool {
        if self.empty {
            return false;
        }
        self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| v <= h)
    }

    /// Abstract addition of a constant.
    pub fn add_constant(&self, c: i64) -> Self {
        if self.empty {
            return *self;
        }
        Self {
            lo: self.lo.map(|l| l.saturating_add(c)),
            hi: self.hi.map(|h| h.saturating_add(c)),
            empty: false,
        }
    }
}

impl JoinSemiLattice for Interval {
    fn join_in_place(&mut self, other: &Self) -> bool {
        if other.empty {
            return false;
        }
        if self.empty {
            *self = *other;
            return true;
        }
        let new_lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        let new_hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let changed = new_lo != self.lo || new_hi != self.hi;
        self.lo = new_lo;
        self.hi = new_hi;
        changed
    }

    fn widen_with(&mut self, previous: &Self) {
        if self.empty || previous.empty {
            return;
        }
        // Any bound that moved since the previous visit is pushed to infinity.
        if self.lo != previous.lo {
            self.lo = None;
        }
        if self.hi != previous.hi {
            self.hi = None;
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "⊥");
        }
        let lo = self
            .lo
            .map_or_else(|| "-inf".to_string(), |v| v.to_string());
        let hi = self
            .hi
            .map_or_else(|| "+inf".to_string(), |v| v.to_string());
        write!(f, "[{lo}, {hi}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let mut a = Interval::new(Some(0), Some(3));
        let b = Interval::new(Some(2), Some(5));
        assert!(a.join_in_place(&b));
        assert_eq!(a, Interval::new(Some(0), Some(5)));
        assert!(!a.join_in_place(&b));
    }

    #[test]
    fn bottom_is_join_identity() {
        let mut a = Interval::new(Some(1), Some(2));
        assert!(!a.join_in_place(&Interval::bottom()));
        let mut bot = Interval::bottom();
        assert!(bot.join_in_place(&a));
        assert_eq!(bot, a);
    }

    #[test]
    fn widening_pushes_moving_bounds_to_infinity() {
        // The paper's example: widening [0,5] against previous [0,3] gives [0,+inf].
        let mut joined = Interval::new(Some(0), Some(5));
        joined.widen_with(&Interval::new(Some(0), Some(3)));
        assert_eq!(joined.lo(), Some(0));
        assert_eq!(joined.hi(), None);
        assert!(joined.contains(1_000_000));
    }

    #[test]
    fn contains_and_add_constant() {
        let i = Interval::new(Some(-1), Some(4));
        assert!(i.contains(0));
        assert!(!i.contains(5));
        let shifted = i.add_constant(10);
        assert_eq!(shifted, Interval::new(Some(9), Some(14)));
        assert!(Interval::top().contains(i64::MAX));
        assert!(!Interval::bottom().contains(0));
        assert!(Interval::bottom().add_constant(3).is_bottom());
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn inverted_bounds_panic() {
        Interval::new(Some(3), Some(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::bottom().to_string(), "⊥");
        assert_eq!(Interval::new(Some(0), None).to_string(), "[0, +inf]");
        assert_eq!(Interval::constant(7).to_string(), "[7, 7]");
    }
}
