//! The join-semilattice abstraction used by the fixpoint solver.

/// A join semilattice with a bottom element.
///
/// Implementations must satisfy the usual laws: join is associative,
/// commutative, idempotent, and the bottom element is its identity.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// Joins `other` into `self`, returning `true` if `self` changed.
    ///
    /// Because the solver uses the result to decide whether to re-enqueue
    /// successors, a return value of `false` must mean `other ⊑ self`.
    fn join_in_place(&mut self, other: &Self) -> bool;

    /// Widening: accelerates convergence on lattices of unbounded height.
    ///
    /// `self` is the freshly joined state, `previous` the state at the same
    /// point from the previous visit.  The default is a no-op, which is
    /// sound for finite-height lattices such as the cache domain.
    fn widen_with(&mut self, previous: &Self) {
        let _ = previous;
    }
}

/// Reference lattice: sets are joined by union.  Handy in tests.
impl<T: Clone + Ord + PartialEq> JoinSemiLattice for std::collections::BTreeSet<T> {
    fn join_in_place(&mut self, other: &Self) -> bool {
        let before = self.len();
        for item in other {
            self.insert(item.clone());
        }
        self.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn set_join_is_union() {
        let mut a: BTreeSet<u32> = [1, 2].into_iter().collect();
        let b: BTreeSet<u32> = [2, 3].into_iter().collect();
        assert!(a.join_in_place(&b));
        assert_eq!(a, [1, 2, 3].into_iter().collect());
        assert!(!a.join_in_place(&b), "joining a subset changes nothing");
    }

    #[test]
    fn default_widening_is_identity() {
        let mut a: BTreeSet<u32> = [1].into_iter().collect();
        let prev = a.clone();
        a.widen_with(&prev);
        assert_eq!(a, prev);
    }
}
