//! # spec-absint
//!
//! A small, generic abstract-interpretation framework: the join-semilattice
//! abstraction, a worklist fixpoint solver (the paper's Algorithm 1 made
//! domain- and graph-agnostic), and the classic interval domain as a
//! demonstration that the engine is independent of the cache domain used by
//! the speculative analysis.
//!
//! ## Example
//!
//! ```rust
//! use spec_absint::{DataflowProblem, Interval, JoinSemiLattice, WorklistSolver};
//!
//! // Constant propagation over a two-node graph: node 0 assigns 7,
//! // node 1 observes it.
//! struct Tiny;
//! impl DataflowProblem for Tiny {
//!     type State = Interval;
//!     fn num_nodes(&self) -> usize { 2 }
//!     fn bottom_state(&self) -> Interval { Interval::bottom() }
//!     fn entry_state(&self, node: usize) -> Option<Interval> {
//!         (node == 0).then(|| Interval::constant(7))
//!     }
//!     fn successors(&self, node: usize) -> Vec<usize> {
//!         if node == 0 { vec![1] } else { vec![] }
//!     }
//!     fn transfer(&mut self, _f: usize, _t: usize, s: &Interval) -> Interval { *s }
//! }
//!
//! let (states, _stats) = WorklistSolver::new().solve(&mut Tiny);
//! assert!(states[1].contains(7));
//! ```

pub mod interval;
pub mod lattice;
pub mod solver;

pub use interval::Interval;
pub use lattice::JoinSemiLattice;
pub use solver::{DataflowProblem, SolveStats, WorklistSolver};
