//! A generic worklist fixpoint solver (the paper's Algorithm 1, made
//! domain- and graph-agnostic).
//!
//! The solver computes, for every node of a finite graph, the join of all
//! states flowing into it, iterating until a fixed point.  The speculative
//! analysis (`spec-core`) instantiates it over the virtual control flow
//! graph with the dual normal/speculative cache state; the tests here use
//! small toy domains.

use crate::lattice::JoinSemiLattice;

/// A forward dataflow problem over nodes `0..num_nodes()`.
pub trait DataflowProblem {
    /// The abstract state attached to each node (at node entry).
    type State: JoinSemiLattice;

    /// Number of nodes in the graph.
    fn num_nodes(&self) -> usize;

    /// The bottom element for this problem.
    fn bottom_state(&self) -> Self::State;

    /// Initial state for `node`, or `None` if it is not an entry node.
    fn entry_state(&self, node: usize) -> Option<Self::State>;

    /// Successors of `node`.
    fn successors(&self, node: usize) -> Vec<usize>;

    /// State propagated along the edge `from -> to`, given the state at the
    /// entry of `from`.
    ///
    /// Taking `&mut self` lets implementations keep per-edge bookkeeping
    /// (e.g. occurrence counters for symbolic array accesses).
    fn transfer(&mut self, from: usize, to: usize, state: &Self::State) -> Self::State;

    /// Whether widening should be applied when joining at `node`
    /// (typically: `node` is a loop header).
    fn widen_at(&self, node: usize) -> bool {
        let _ = node;
        false
    }
}

/// Statistics reported by [`WorklistSolver::solve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of times a node was taken off the worklist.
    pub node_visits: u64,
    /// Number of joins that changed a successor's state.
    pub state_updates: u64,
    /// Peak length of the worklist.
    pub max_worklist_len: usize,
}

/// Worklist-based fixpoint solver.
#[derive(Clone, Copy, Debug)]
pub struct WorklistSolver {
    /// Number of joins at a widening point before the widening operator is
    /// applied; gives the analysis a few precise iterations first.
    pub widening_delay: u32,
    /// Safety valve: abort (by panicking) if a single node is visited more
    /// than this many times, which would indicate a non-monotone transfer.
    pub max_visits_per_node: u64,
}

impl Default for WorklistSolver {
    fn default() -> Self {
        Self {
            widening_delay: 3,
            max_visits_per_node: 1_000_000,
        }
    }
}

impl WorklistSolver {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the fixpoint computation and returns the per-node states along
    /// with iteration statistics.
    ///
    /// # Panics
    ///
    /// Panics if a node exceeds `max_visits_per_node` visits, which can only
    /// happen if the problem's transfer function is not monotone over a
    /// finite-height lattice and no widening point breaks the cycle.
    pub fn solve<P: DataflowProblem>(&self, problem: &mut P) -> (Vec<P::State>, SolveStats) {
        let n = problem.num_nodes();
        let mut states: Vec<P::State> = (0..n)
            .map(|i| {
                problem
                    .entry_state(i)
                    .unwrap_or_else(|| problem.bottom_state())
            })
            .collect();
        let mut join_counts: Vec<u32> = vec![0; n];
        let mut visit_counts: Vec<u64> = vec![0; n];
        let mut stats = SolveStats::default();

        let mut worklist: std::collections::VecDeque<usize> = (0..n)
            .filter(|i| problem.entry_state(*i).is_some())
            .collect();
        let mut in_worklist: Vec<bool> = vec![false; n];
        for &i in &worklist {
            in_worklist[i] = true;
        }

        while let Some(node) = worklist.pop_front() {
            in_worklist[node] = false;
            stats.node_visits += 1;
            visit_counts[node] += 1;
            assert!(
                visit_counts[node] <= self.max_visits_per_node,
                "node {node} exceeded the visit budget; transfer is likely non-monotone"
            );
            let current = states[node].clone();
            for succ in problem.successors(node) {
                let flowed = problem.transfer(node, succ, &current);
                let previous = states[succ].clone();
                let mut changed = states[succ].join_in_place(&flowed);
                if changed {
                    join_counts[succ] += 1;
                    if problem.widen_at(succ) && join_counts[succ] > self.widening_delay {
                        states[succ].widen_with(&previous);
                        changed = states[succ] != previous;
                    }
                }
                if changed {
                    stats.state_updates += 1;
                    if !in_worklist[succ] {
                        worklist.push_back(succ);
                        in_worklist[succ] = true;
                        stats.max_worklist_len = stats.max_worklist_len.max(worklist.len());
                    }
                }
            }
        }
        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use std::collections::BTreeSet;

    /// Reachability over a tiny graph, using the set lattice.
    struct Reach {
        edges: Vec<Vec<usize>>,
    }

    impl DataflowProblem for Reach {
        type State = BTreeSet<usize>;

        fn num_nodes(&self) -> usize {
            self.edges.len()
        }
        fn bottom_state(&self) -> Self::State {
            BTreeSet::new()
        }
        fn entry_state(&self, node: usize) -> Option<Self::State> {
            (node == 0).then(|| [0].into_iter().collect())
        }
        fn successors(&self, node: usize) -> Vec<usize> {
            self.edges[node].clone()
        }
        fn transfer(&mut self, _from: usize, to: usize, state: &Self::State) -> Self::State {
            let mut s = state.clone();
            s.insert(to);
            s
        }
    }

    #[test]
    fn reachability_reaches_fixpoint_on_cyclic_graph() {
        // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3
        let mut problem = Reach {
            edges: vec![vec![1], vec![2], vec![1, 3], vec![]],
        };
        let (states, stats) = WorklistSolver::new().solve(&mut problem);
        assert_eq!(states[3], [0, 1, 2, 3].into_iter().collect());
        assert_eq!(states[1], [0, 1, 2].into_iter().collect());
        assert!(stats.node_visits >= 4);
        assert!(stats.state_updates >= 3);
    }

    /// A counter loop in the interval domain: x = 0; while (*) x += 1;
    /// Without widening the chain 0..k would keep growing; the solver's
    /// widening at the loop head jumps the bound to +inf.
    struct Counter;

    impl DataflowProblem for Counter {
        type State = Interval;

        fn num_nodes(&self) -> usize {
            3 // 0: init, 1: loop head, 2: exit
        }
        fn bottom_state(&self) -> Self::State {
            Interval::bottom()
        }
        fn entry_state(&self, node: usize) -> Option<Self::State> {
            (node == 0).then(|| Interval::constant(0))
        }
        fn successors(&self, node: usize) -> Vec<usize> {
            match node {
                0 => vec![1],
                1 => vec![1, 2],
                _ => vec![],
            }
        }
        fn transfer(&mut self, from: usize, to: usize, state: &Self::State) -> Self::State {
            if from == 1 && to == 1 {
                state.add_constant(1)
            } else {
                *state
            }
        }
        fn widen_at(&self, node: usize) -> bool {
            node == 1
        }
    }

    #[test]
    fn widening_terminates_the_counter_loop() {
        let (states, _stats) = WorklistSolver::new().solve(&mut Counter);
        assert_eq!(states[1].lo(), Some(0));
        assert_eq!(states[1].hi(), None, "upper bound widened to +inf");
        assert!(!states[2].is_bottom());
    }

    #[test]
    fn unreachable_nodes_stay_bottom() {
        let mut problem = Reach {
            edges: vec![vec![1], vec![], vec![1]], // node 2 unreachable
        };
        let (states, _) = WorklistSolver::new().solve(&mut problem);
        assert!(states[2].is_empty());
        assert_eq!(states[1], [0, 1].into_iter().collect());
    }

    #[test]
    fn stats_track_worklist_behaviour() {
        let mut problem = Reach {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![]],
        };
        let (_, stats) = WorklistSolver::new().solve(&mut problem);
        assert!(stats.max_worklist_len >= 1);
        assert!(stats.node_visits >= 4);
    }
}
