//! A generic worklist fixpoint solver (the paper's Algorithm 1, made
//! domain- and graph-agnostic).
//!
//! The solver computes, for every node of a finite graph, the join of all
//! states flowing into it, iterating until a fixed point.  The speculative
//! analysis (`spec-core`) instantiates it over the virtual control flow
//! graph with the dual normal/speculative cache state; the tests here use
//! small toy domains.

use crate::lattice::JoinSemiLattice;

/// A forward dataflow problem over nodes `0..num_nodes()`.
pub trait DataflowProblem {
    /// The abstract state attached to each node (at node entry).
    type State: JoinSemiLattice;

    /// Number of nodes in the graph.
    fn num_nodes(&self) -> usize;

    /// The bottom element for this problem.
    fn bottom_state(&self) -> Self::State;

    /// Initial state for `node`, or `None` if it is not an entry node.
    fn entry_state(&self, node: usize) -> Option<Self::State>;

    /// Successors of `node`.
    fn successors(&self, node: usize) -> Vec<usize>;

    /// State propagated along the edge `from -> to`, given the state at the
    /// entry of `from`.
    ///
    /// Taking `&mut self` lets implementations keep per-edge bookkeeping
    /// (e.g. occurrence counters for symbolic array accesses).
    fn transfer(&mut self, from: usize, to: usize, state: &Self::State) -> Self::State;

    /// Whether widening should be applied when joining at `node`
    /// (typically: `node` is a loop header).
    fn widen_at(&self, node: usize) -> bool {
        let _ = node;
        false
    }
}

/// Statistics reported by [`WorklistSolver::solve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of times a node was taken off the worklist.
    pub node_visits: u64,
    /// Number of joins that changed a successor's state.
    pub state_updates: u64,
    /// Peak length of the worklist.
    pub max_worklist_len: usize,
}

/// Worklist-based fixpoint solver.
#[derive(Clone, Copy, Debug)]
pub struct WorklistSolver {
    /// Number of joins at a widening point before the widening operator is
    /// applied; gives the analysis a few precise iterations first.
    pub widening_delay: u32,
    /// Safety valve: abort (by panicking) if a single node is visited more
    /// than this many times, which would indicate a non-monotone transfer.
    pub max_visits_per_node: u64,
}

impl Default for WorklistSolver {
    fn default() -> Self {
        Self {
            widening_delay: 3,
            max_visits_per_node: 1_000_000,
        }
    }
}

impl WorklistSolver {
    /// Creates a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the fixpoint computation and returns the per-node states along
    /// with iteration statistics.
    ///
    /// # Panics
    ///
    /// Panics if a node exceeds `max_visits_per_node` visits, which can only
    /// happen if the problem's transfer function is not monotone over a
    /// finite-height lattice and no widening point breaks the cycle.
    pub fn solve<P: DataflowProblem>(&self, problem: &mut P) -> (Vec<P::State>, SolveStats) {
        self.solve_core(problem, Vec::new())
    }

    /// Runs the fixpoint with some nodes *frozen* at already-converged
    /// states (a compositional partial solve).
    ///
    /// `seeds[i] = Some(state)` pins node `i` at `state`: it is never
    /// re-joined, and transfers into it are skipped.  Every frozen node with
    /// at least one unfrozen successor is visited once to flow its state
    /// across the frontier; unfrozen nodes iterate to fixpoint as in
    /// [`WorklistSolver::solve`].
    ///
    /// The result equals a cold [`WorklistSolver::solve`] when the caller
    /// upholds the seeding contract:
    ///
    /// * the frozen set is closed under predecessors (no edge from an
    ///   unfrozen node into a frozen one), so frozen states cannot be
    ///   out of date;
    /// * each seed is the state the cold solve converges to at that node
    ///   (e.g. transplanted from a prior solve of an identical subgraph);
    /// * no widening point is unfrozen — the unfrozen region's fixpoint is
    ///   then its unique least fixpoint, independent of visit order.
    ///
    /// `seeds` may be empty (nothing frozen) or must have `num_nodes()`
    /// entries.  Statistics count only the work actually performed, so a
    /// partial solve reports fewer visits than a cold one.
    pub fn solve_seeded<P: DataflowProblem>(
        &self,
        problem: &mut P,
        seeds: Vec<Option<P::State>>,
    ) -> (Vec<P::State>, SolveStats) {
        self.solve_core(problem, seeds)
    }

    fn solve_core<P: DataflowProblem>(
        &self,
        problem: &mut P,
        mut seeds: Vec<Option<P::State>>,
    ) -> (Vec<P::State>, SolveStats) {
        let n = problem.num_nodes();
        assert!(
            seeds.is_empty() || seeds.len() == n,
            "seed vector length must match the node count"
        );
        seeds.resize_with(n, || None);
        let frozen: Vec<bool> = seeds.iter().map(Option::is_some).collect();
        let mut states: Vec<P::State> = seeds
            .into_iter()
            .enumerate()
            .map(|(i, seed)| {
                seed.or_else(|| problem.entry_state(i))
                    .unwrap_or_else(|| problem.bottom_state())
            })
            .collect();
        let mut join_counts: Vec<u32> = vec![0; n];
        let mut visit_counts: Vec<u64> = vec![0; n];
        let mut stats = SolveStats::default();

        // Unfrozen entry nodes start the iteration; frozen nodes on the
        // frontier (having an unfrozen successor) are visited once to flow
        // their converged state into the region being solved.
        let mut worklist: std::collections::VecDeque<usize> = (0..n)
            .filter(|&i| {
                if frozen[i] {
                    problem.successors(i).iter().any(|&s| !frozen[s])
                } else {
                    problem.entry_state(i).is_some()
                }
            })
            .collect();
        let mut in_worklist: Vec<bool> = vec![false; n];
        for &i in &worklist {
            in_worklist[i] = true;
        }

        while let Some(node) = worklist.pop_front() {
            in_worklist[node] = false;
            stats.node_visits += 1;
            visit_counts[node] += 1;
            assert!(
                visit_counts[node] <= self.max_visits_per_node,
                "node {node} exceeded the visit budget; transfer is likely non-monotone"
            );
            let current = states[node].clone();
            for succ in problem.successors(node) {
                if frozen[succ] {
                    // Frozen states are already converged; re-joining them
                    // is a no-op by the seeding contract, so skip the work.
                    continue;
                }
                let flowed = problem.transfer(node, succ, &current);
                let previous = states[succ].clone();
                let mut changed = states[succ].join_in_place(&flowed);
                if changed {
                    join_counts[succ] += 1;
                    if problem.widen_at(succ) && join_counts[succ] > self.widening_delay {
                        states[succ].widen_with(&previous);
                        changed = states[succ] != previous;
                    }
                }
                if changed {
                    stats.state_updates += 1;
                    if !in_worklist[succ] {
                        worklist.push_back(succ);
                        in_worklist[succ] = true;
                        stats.max_worklist_len = stats.max_worklist_len.max(worklist.len());
                    }
                }
            }
        }
        (states, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use std::collections::BTreeSet;

    /// Reachability over a tiny graph, using the set lattice.
    struct Reach {
        edges: Vec<Vec<usize>>,
    }

    impl DataflowProblem for Reach {
        type State = BTreeSet<usize>;

        fn num_nodes(&self) -> usize {
            self.edges.len()
        }
        fn bottom_state(&self) -> Self::State {
            BTreeSet::new()
        }
        fn entry_state(&self, node: usize) -> Option<Self::State> {
            (node == 0).then(|| [0].into_iter().collect())
        }
        fn successors(&self, node: usize) -> Vec<usize> {
            self.edges[node].clone()
        }
        fn transfer(&mut self, _from: usize, to: usize, state: &Self::State) -> Self::State {
            let mut s = state.clone();
            s.insert(to);
            s
        }
    }

    #[test]
    fn reachability_reaches_fixpoint_on_cyclic_graph() {
        // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3
        let mut problem = Reach {
            edges: vec![vec![1], vec![2], vec![1, 3], vec![]],
        };
        let (states, stats) = WorklistSolver::new().solve(&mut problem);
        assert_eq!(states[3], [0, 1, 2, 3].into_iter().collect());
        assert_eq!(states[1], [0, 1, 2].into_iter().collect());
        assert!(stats.node_visits >= 4);
        assert!(stats.state_updates >= 3);
    }

    /// A counter loop in the interval domain: x = 0; while (*) x += 1;
    /// Without widening the chain 0..k would keep growing; the solver's
    /// widening at the loop head jumps the bound to +inf.
    struct Counter;

    impl DataflowProblem for Counter {
        type State = Interval;

        fn num_nodes(&self) -> usize {
            3 // 0: init, 1: loop head, 2: exit
        }
        fn bottom_state(&self) -> Self::State {
            Interval::bottom()
        }
        fn entry_state(&self, node: usize) -> Option<Self::State> {
            (node == 0).then(|| Interval::constant(0))
        }
        fn successors(&self, node: usize) -> Vec<usize> {
            match node {
                0 => vec![1],
                1 => vec![1, 2],
                _ => vec![],
            }
        }
        fn transfer(&mut self, from: usize, to: usize, state: &Self::State) -> Self::State {
            if from == 1 && to == 1 {
                state.add_constant(1)
            } else {
                *state
            }
        }
        fn widen_at(&self, node: usize) -> bool {
            node == 1
        }
    }

    #[test]
    fn widening_terminates_the_counter_loop() {
        let (states, _stats) = WorklistSolver::new().solve(&mut Counter);
        assert_eq!(states[1].lo(), Some(0));
        assert_eq!(states[1].hi(), None, "upper bound widened to +inf");
        assert!(!states[2].is_bottom());
    }

    #[test]
    fn unreachable_nodes_stay_bottom() {
        let mut problem = Reach {
            edges: vec![vec![1], vec![], vec![1]], // node 2 unreachable
        };
        let (states, _) = WorklistSolver::new().solve(&mut problem);
        assert!(states[2].is_empty());
        assert_eq!(states[1], [0, 1].into_iter().collect());
    }

    #[test]
    fn seeded_solve_with_no_seeds_matches_cold_solve() {
        let mut cold = Reach {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![1]],
        };
        let (cold_states, cold_stats) = WorklistSolver::new().solve(&mut cold);
        let mut seeded = Reach {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![1]],
        };
        let (states, stats) = WorklistSolver::new().solve_seeded(&mut seeded, Vec::new());
        assert_eq!(states, cold_states);
        assert_eq!(stats, cold_stats);
    }

    #[test]
    fn seeded_solve_reuses_a_predecessor_closed_region() {
        // 0 -> 1 -> 2 -> 3 -> 4, plus a back edge 4 -> 3.  Freezing the
        // prefix {0, 1, 2} at its converged states must reproduce the cold
        // result for {3, 4} while visiting only the frontier and the
        // recomputed region.
        let edges = vec![vec![1], vec![2], vec![3], vec![4], vec![3]];
        let mut cold = Reach {
            edges: edges.clone(),
        };
        let (cold_states, cold_stats) = WorklistSolver::new().solve(&mut cold);

        let seeds: Vec<Option<BTreeSet<usize>>> = vec![
            Some(cold_states[0].clone()),
            Some(cold_states[1].clone()),
            Some(cold_states[2].clone()),
            None,
            None,
        ];
        let mut partial = Reach { edges };
        let (states, stats) = WorklistSolver::new().solve_seeded(&mut partial, seeds);
        assert_eq!(states, cold_states);
        assert!(
            stats.node_visits < cold_stats.node_visits,
            "partial solve must do less work ({} vs {})",
            stats.node_visits,
            cold_stats.node_visits
        );
    }

    #[test]
    fn seeded_solve_never_rejoins_frozen_nodes() {
        // 0 -> 1 -> 0 cycle: node 1 frozen; popping 0 must skip the
        // transfer into 1 entirely, leaving the seed untouched.
        let seeds: Vec<Option<BTreeSet<usize>>> =
            vec![None, Some([7].into_iter().collect())];
        let mut problem = Reach {
            edges: vec![vec![1], vec![0]],
        };
        let (states, _) = WorklistSolver::new().solve_seeded(&mut problem, seeds);
        assert_eq!(states[1], [7].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "seed vector length")]
    fn seeded_solve_rejects_mismatched_seed_length() {
        let mut problem = Reach {
            edges: vec![vec![1], vec![]],
        };
        let _ = WorklistSolver::new().solve_seeded(&mut problem, vec![None]);
    }

    #[test]
    fn stats_track_worklist_behaviour() {
        let mut problem = Reach {
            edges: vec![vec![1, 2], vec![3], vec![3], vec![]],
        };
        let (_, stats) = WorklistSolver::new().solve(&mut problem);
        assert!(stats.max_worklist_len >= 1);
        assert!(stats.node_visits >= 4);
    }
}
