//! Execution-time estimation: miss counting and WCET bounds.

use std::time::Duration;

use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, AnalysisResult, Analyzer};
use spec_ir::Program;
use spec_vcfg::MergeStrategy;

/// Estimates a worst-case execution-time bound (in cycles) from an analysis
/// result: every access costs one cycle, every possible miss additionally
/// costs `miss_penalty` cycles, and remaining instructions cost one cycle.
///
/// This is the simple IPET-free bound used to compare analyses; its absolute
/// value matters less than how it changes when speculation is modelled.
pub fn estimate_wcet_cycles(result: &AnalysisResult, miss_penalty: u64) -> u64 {
    let accesses = result.access_count() as u64;
    let misses = result.miss_count() as u64;
    let other_insts = result.program.instruction_count() as u64 - accesses;
    other_insts + accesses + misses * miss_penalty
}

/// One row of the paper's Table 5: non-speculative vs. speculative analysis
/// of the same program.
#[derive(Clone, Debug)]
pub struct EteRow {
    /// Benchmark name.
    pub name: String,
    /// Lines (straight-line instructions) of the analysed program.
    pub instructions: usize,
    /// Analysis time of the non-speculative baseline.
    pub nonspec_time: Duration,
    /// Possible misses reported by the baseline.
    pub nonspec_miss: usize,
    /// Analysis time of the speculative analysis.
    pub spec_time: Duration,
    /// Possible misses reported by the speculative analysis.
    pub spec_miss: usize,
    /// Possible misses during squashed speculative execution.
    pub spec_spmiss: usize,
    /// Number of conditional branches that may speculate.
    pub branches: usize,
    /// Fixpoint iterations (worklist pops) of the speculative analysis.
    pub iterations: u64,
    /// WCET bound of the baseline (cycles).
    pub nonspec_wcet: u64,
    /// WCET bound of the speculative analysis (cycles).
    pub spec_wcet: u64,
}

/// Compares the non-speculative and speculative analyses on a set of
/// programs (regenerates Table 5).
#[derive(Clone, Debug)]
pub struct EteComparison {
    cache: CacheConfig,
    speculative: AnalysisOptions,
    baseline: AnalysisOptions,
    miss_penalty: u64,
}

impl EteComparison {
    /// Creates a comparison with the paper's default configuration.
    pub fn new(cache: CacheConfig) -> Self {
        Self {
            cache,
            speculative: AnalysisOptions::builder()
                .cache(cache)
                .build()
                .expect("default speculative options are valid"),
            baseline: AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .expect("default baseline options are valid"),
            miss_penalty: 100,
        }
    }

    /// Overrides the speculative analysis options (the comparison's cache
    /// is kept).
    ///
    /// # Panics
    ///
    /// Panics if `options` is inconsistent (see
    /// [`AnalysisOptions::validate`]) — e.g. a hand-constructed
    /// configuration with `b_h > b_m` that never went through the builder.
    pub fn with_speculative_options(mut self, options: AnalysisOptions) -> Self {
        self.speculative = match options.to_builder().cache(self.cache).build() {
            Ok(options) => options,
            Err(err) => panic!("invalid speculative options override: {err}"),
        };
        self
    }

    /// Runs both analyses on one program, sharing one prepared session.
    ///
    /// The reported times are session times: shared preparation (loop
    /// unrolling, the address map) is billed to the run that triggers it —
    /// here the baseline, which runs first — and reused for free by the
    /// other.  Use fresh [`spec_core::CacheAnalysis`] runs when each
    /// configuration's standalone cost is the quantity of interest.
    pub fn run(&self, program: &Program) -> EteRow {
        self.run_prepared(&Analyzer::new().prepare(program))
    }

    /// Runs both analyses against an already prepared program.
    pub fn run_prepared(&self, prepared: &spec_core::PreparedProgram) -> EteRow {
        let program = prepared.program();
        let base = prepared.run(&self.baseline);
        let spec = prepared.run(&self.speculative);
        EteRow {
            name: program.name().to_string(),
            instructions: program.instruction_count(),
            nonspec_time: base.elapsed,
            nonspec_miss: base.miss_count(),
            spec_time: spec.elapsed,
            spec_miss: spec.miss_count(),
            spec_spmiss: spec.speculative_miss_count(),
            branches: spec.speculated_branches,
            iterations: spec.iterations(),
            nonspec_wcet: estimate_wcet_cycles(&base, self.miss_penalty),
            spec_wcet: estimate_wcet_cycles(&spec, self.miss_penalty),
        }
    }

    /// Runs both analyses on every program of a suite.
    pub fn run_suite<'a>(&self, programs: impl IntoIterator<Item = &'a Program>) -> Vec<EteRow> {
        programs.into_iter().map(|p| self.run(p)).collect()
    }
}

/// One row of the paper's Table 6: merging at the rollback point vs.
/// just-in-time merging.
#[derive(Clone, Debug)]
pub struct MergeRow {
    /// Benchmark name.
    pub name: String,
    /// Analysis time with merge-at-rollback.
    pub rollback_time: Duration,
    /// Misses reported with merge-at-rollback.
    pub rollback_miss: usize,
    /// Speculative misses reported with merge-at-rollback.
    pub rollback_spmiss: usize,
    /// Iterations with merge-at-rollback.
    pub rollback_iterations: u64,
    /// Analysis time with just-in-time merging.
    pub jit_time: Duration,
    /// Misses reported with just-in-time merging.
    pub jit_miss: usize,
    /// Speculative misses reported with just-in-time merging.
    pub jit_spmiss: usize,
    /// Iterations with just-in-time merging.
    pub jit_iterations: u64,
}

/// Compares the two merging strategies (regenerates Table 6).
#[derive(Clone, Debug)]
pub struct MergeComparison {
    rollback: AnalysisOptions,
    jit: AnalysisOptions,
}

impl MergeComparison {
    /// Creates a comparison with the paper's default configuration.
    pub fn new(cache: CacheConfig) -> Self {
        Self {
            rollback: AnalysisOptions::builder()
                .cache(cache)
                .merge_strategy(MergeStrategy::MergeAtRollback)
                .build()
                .expect("default rollback options are valid"),
            jit: AnalysisOptions::builder()
                .cache(cache)
                .merge_strategy(MergeStrategy::JustInTime)
                .build()
                .expect("default JIT options are valid"),
        }
    }

    /// Runs both strategies on one program, sharing one prepared session.
    /// Times are session times (see [`EteComparison::run`]).
    pub fn run(&self, program: &Program) -> MergeRow {
        self.run_prepared(&Analyzer::new().prepare(program))
    }

    /// Runs both strategies against an already prepared program.
    pub fn run_prepared(&self, prepared: &spec_core::PreparedProgram) -> MergeRow {
        let program = prepared.program();
        let rollback = prepared.run(&self.rollback);
        let jit = prepared.run(&self.jit);
        MergeRow {
            name: program.name().to_string(),
            rollback_time: rollback.elapsed,
            rollback_miss: rollback.miss_count(),
            rollback_spmiss: rollback.speculative_miss_count(),
            rollback_iterations: rollback.iterations(),
            jit_time: jit.elapsed,
            jit_miss: jit.miss_count(),
            jit_spmiss: jit.speculative_miss_count(),
            jit_iterations: jit.iterations(),
        }
    }

    /// Runs both strategies on every program of a suite.
    pub fn run_suite<'a>(&self, programs: impl IntoIterator<Item = &'a Program>) -> Vec<MergeRow> {
        programs.into_iter().map(|p| self.run(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BranchSemantics, IndexExpr, MemRef};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("sample");
        let ph = b.region("ph", 6 * 64, false);
        let l1 = b.region("l1", 64, false);
        let l2 = b.region("l2", 64, false);
        let p = b.region("p", 8, false);
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let done = b.block("done");
        b.load_sweep(entry, ph, 0, 64, 6);
        b.load(entry, p, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(p, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, l1, IndexExpr::Const(0));
        b.jump(then_bb, done);
        b.load(else_bb, l2, IndexExpr::Const(0));
        b.jump(else_bb, done);
        b.load(done, ph, IndexExpr::Const(0));
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn ete_row_shows_speculation_increasing_the_bound() {
        let cache = CacheConfig::fully_associative(8, 64);
        let row = EteComparison::new(cache).run(&sample_program());
        assert_eq!(row.name, "sample");
        assert!(row.spec_miss > row.nonspec_miss);
        assert!(row.spec_wcet > row.nonspec_wcet);
        assert_eq!(row.branches, 1);
        assert!(row.iterations > 0);
    }

    #[test]
    fn merge_comparison_keeps_jit_at_least_as_precise() {
        let cache = CacheConfig::fully_associative(8, 64);
        let row = MergeComparison::new(cache).run(&sample_program());
        assert!(row.jit_miss <= row.rollback_miss);
        assert!(row.jit_iterations > 0 && row.rollback_iterations > 0);
    }

    #[test]
    fn wcet_estimate_counts_misses_with_penalty() {
        let cache = CacheConfig::fully_associative(8, 64);
        let result = spec_core::CacheAnalysis::new(
            AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .unwrap(),
        )
        .run(&sample_program());
        let bound = estimate_wcet_cycles(&result, 100);
        // 10 accesses, 9 of them possible misses (the final ph[0] hits).
        assert_eq!(result.access_count(), 10);
        assert_eq!(result.miss_count(), 9);
        assert_eq!(bound, 10 + 9 * 100);
    }

    #[test]
    fn run_suite_returns_one_row_per_program() {
        let cache = CacheConfig::fully_associative(8, 64);
        let p1 = sample_program();
        let p2 = sample_program();
        let rows = EteComparison::new(cache).run_suite([&p1, &p2]);
        assert_eq!(rows.len(), 2);
    }
}
