//! # spec-analysis
//!
//! The two applications the paper evaluates its speculative cache analysis
//! on (Section 7):
//!
//! * [`ete`] — **execution-time estimation**: upper-bounding the number of
//!   cache misses (and hence the worst-case execution time) of real-time
//!   code, comparing the non-speculative baseline against the speculative
//!   analysis (Tables 5 and 6).
//! * [`sidechannel`] — **cache timing side-channel detection**: deciding
//!   whether the number of observable cache misses can depend on secret
//!   data, again under both analyses (Table 7), with an optional empirical
//!   confirmation pass that replays the program in the concrete simulator
//!   with different secrets.

pub mod ete;
pub mod sidechannel;

pub use ete::{estimate_wcet_cycles, EteComparison, EteRow, MergeComparison, MergeRow};
pub use sidechannel::{
    confirm_leak_empirically, detect_leaks, LeakFinding, LeakReport, SideChannelComparison,
    SideChannelRow,
};
