//! Cache timing side-channel detection.
//!
//! A program leaks through the cache if the number of observable cache
//! misses can depend on secret data.  Following the paper (Sections 2.2 and
//! 7.3), we flag a leak when a secret-indexed memory access cannot be proved
//! a must-hit: for some secret values the access hits, for others it may
//! miss, so the execution time reveals information about the secret.
//!
//! The detector runs on top of either analysis (non-speculative baseline or
//! the speculative analysis); the paper's headline result is that several
//! programs are leak-free under the baseline yet leaky once speculative
//! execution is modelled.

use std::time::Duration;

use spec_core::{AnalysisOptions, AnalysisResult, Analyzer};
use spec_ir::Program;
use spec_sim::{PredictorKind, SimConfig, SimInput, Simulator};

/// One potentially leaking access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakFinding {
    /// Name of the region accessed with a secret-dependent index.
    pub region: String,
    /// Basic block of the access (in the analysed program).
    pub block: spec_ir::BlockId,
    /// Position of the access within the block.
    pub inst_index: usize,
    /// `true` if the access can also miss during squashed speculative
    /// execution only (i.e. the committed path is safe but the wrong path
    /// still perturbs the cache in a secret-dependent way).
    pub speculative_only: bool,
}

/// Result of leak detection on one program.
#[derive(Clone, Debug, Default)]
pub struct LeakReport {
    /// Every secret-indexed access that could not be proved a must-hit.
    pub findings: Vec<LeakFinding>,
    /// Number of secret-indexed accesses examined.
    pub secret_accesses: usize,
}

impl LeakReport {
    /// `true` if at least one potential leak was found.
    pub fn leak_detected(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Examines an analysis result for secret-dependent cache behaviour.
pub fn detect_leaks(result: &AnalysisResult) -> LeakReport {
    let mut report = LeakReport::default();
    for access in result.secret_accesses() {
        report.secret_accesses += 1;
        if !access.observable_hit {
            report.findings.push(LeakFinding {
                region: access.region_name.clone(),
                block: access.block,
                inst_index: access.inst_index,
                speculative_only: false,
            });
        } else if access.is_speculative_miss() {
            report.findings.push(LeakFinding {
                region: access.region_name.clone(),
                block: access.block,
                inst_index: access.inst_index,
                speculative_only: true,
            });
        }
    }
    report
}

/// One row of the paper's Table 7.
#[derive(Clone, Debug)]
pub struct SideChannelRow {
    /// Benchmark name.
    pub name: String,
    /// Attacker-controlled buffer size used for this row (bytes).
    pub buffer_bytes: u64,
    /// Analysis time of the non-speculative baseline.
    pub nonspec_time: Duration,
    /// Leak verdict of the baseline.
    pub nonspec_leak: bool,
    /// Analysis time of the speculative analysis.
    pub spec_time: Duration,
    /// Leak verdict of the speculative analysis.
    pub spec_leak: bool,
    /// Whether the simulator confirmed a secret-dependent timing difference
    /// (only attempted when the speculative analysis reports a leak).
    pub empirically_confirmed: Option<bool>,
}

/// Compares leak detection under both analyses (regenerates Table 7).
#[derive(Clone, Debug)]
pub struct SideChannelComparison {
    baseline: AnalysisOptions,
    speculative: AnalysisOptions,
    confirm: bool,
}

impl SideChannelComparison {
    /// Creates a comparison with the paper's default configuration.
    pub fn new(cache: spec_cache::CacheConfig) -> Self {
        Self {
            baseline: AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .expect("default baseline options are valid"),
            speculative: AnalysisOptions::builder()
                .cache(cache)
                .build()
                .expect("default speculative options are valid"),
            confirm: true,
        }
    }

    /// Enables or disables the empirical confirmation pass.
    pub fn with_confirmation(mut self, confirm: bool) -> Self {
        self.confirm = confirm;
        self
    }

    /// Runs leak detection on one program under both analyses, sharing one
    /// prepared session.  Times are session times: shared preparation is
    /// billed to the baseline run, which goes first.
    pub fn run(&self, program: &Program, buffer_bytes: u64) -> SideChannelRow {
        self.run_prepared(&Analyzer::new().prepare(program), buffer_bytes)
    }

    /// Runs leak detection against an already prepared program.
    pub fn run_prepared(
        &self,
        prepared: &spec_core::PreparedProgram,
        buffer_bytes: u64,
    ) -> SideChannelRow {
        let program = prepared.program();
        let base = prepared.run(&self.baseline);
        let spec = prepared.run(&self.speculative);
        let base_report = detect_leaks(&base);
        let spec_report = detect_leaks(&spec);
        let empirically_confirmed = if self.confirm && spec_report.leak_detected() {
            Some(confirm_leak_empirically(
                program,
                &SimConfig::default()
                    .with_cache(self.speculative.cache)
                    .with_predictor(PredictorKind::AlwaysWrong),
                64,
            ))
        } else {
            None
        };
        SideChannelRow {
            name: program.name().to_string(),
            buffer_bytes,
            nonspec_time: base.elapsed,
            nonspec_leak: base_report.leak_detected(),
            spec_time: spec.elapsed,
            spec_leak: spec_report.leak_detected(),
            empirically_confirmed,
        }
    }
}

/// Replays the program in the concrete simulator with a range of secret
/// values and reports whether the observable miss count (and hence the
/// execution time) varies with the secret — the empirical counterpart of a
/// reported leak, mirroring the paper's manual trace inspection.
pub fn confirm_leak_empirically(program: &Program, config: &SimConfig, secrets: u64) -> bool {
    let simulator = Simulator::new(*config);
    let mut observed: Option<u64> = None;
    for secret in 0..secrets {
        let report = simulator.run(program, &SimInput::new(1, secret));
        let misses = report.observable_miss_count();
        match observed {
            None => observed = Some(misses),
            Some(previous) if previous != misses => return true,
            Some(_) => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_cache::CacheConfig;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BranchSemantics, IndexExpr, MemRef};

    /// A leak-free-without-speculation program: the sbox is fully preloaded,
    /// then a data-dependent branch touches one of two scratch lines, then
    /// the secret-indexed sbox access happens.
    fn crypto_like(lines: u64) -> Program {
        let sbox_lines = lines - 2;
        let mut b = ProgramBuilder::new("crypto");
        let sbox = b.region("sbox", sbox_lines * 64, false);
        let scratch1 = b.region("scratch1", 64, false);
        let scratch2 = b.region("scratch2", 64, false);
        let p = b.region("p", 8, false);
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let done = b.block("done");
        b.load_sweep(entry, sbox, 0, 64, sbox_lines);
        b.load(entry, p, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(p, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, scratch1, IndexExpr::Const(0));
        b.jump(then_bb, done);
        b.load(else_bb, scratch2, IndexExpr::Const(0));
        b.jump(else_bb, done);
        b.load(done, sbox, IndexExpr::secret(64));
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn speculation_reveals_the_leak_the_baseline_misses() {
        let cache = CacheConfig::fully_associative(8, 64);
        let program = crypto_like(8);
        let row = SideChannelComparison::new(cache)
            .with_confirmation(false)
            .run(&program, 0);
        assert!(!row.nonspec_leak, "baseline proves leak freedom");
        assert!(row.spec_leak, "speculative analysis finds the leak");
    }

    #[test]
    fn empirical_confirmation_matches_the_analysis() {
        let cache = CacheConfig::fully_associative(8, 64);
        let program = crypto_like(8);
        let confirmed = confirm_leak_empirically(
            &program,
            &SimConfig::default()
                .with_cache(cache)
                .with_predictor(PredictorKind::AlwaysWrong),
            8,
        );
        assert!(confirmed, "different secrets give different miss counts");
        // Without speculation the program is constant-time.
        let not_confirmed =
            confirm_leak_empirically(&program, &SimConfig::non_speculative().with_cache(cache), 8);
        assert!(!not_confirmed);
    }

    #[test]
    fn full_row_reports_confirmation() {
        let cache = CacheConfig::fully_associative(8, 64);
        let program = crypto_like(8);
        let row = SideChannelComparison::new(cache).run(&program, 0);
        assert!(row.spec_leak);
        assert_eq!(row.empirically_confirmed, Some(true));
    }

    #[test]
    fn leak_free_program_stays_leak_free() {
        // No secret-indexed accesses at all.
        let mut b = ProgramBuilder::new("constant");
        let t = b.region("t", 2 * 64, false);
        let e = b.entry_block("entry");
        b.load(e, t, IndexExpr::Const(0));
        b.load(e, t, IndexExpr::Const(64));
        b.ret(e);
        let program = b.finish().unwrap();
        let cache = CacheConfig::fully_associative(8, 64);
        let row = SideChannelComparison::new(cache).run(&program, 0);
        assert!(!row.nonspec_leak);
        assert!(!row.spec_leak);
        assert_eq!(row.empirically_confirmed, None);
    }

    #[test]
    fn detect_leaks_counts_secret_accesses() {
        let cache = CacheConfig::fully_associative(8, 64);
        let program = crypto_like(8);
        let result =
            spec_core::CacheAnalysis::new(AnalysisOptions::builder().cache(cache).build().unwrap())
                .run(&program);
        let report = detect_leaks(&result);
        assert_eq!(report.secret_accesses, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].region, "sbox");
        assert!(!report.findings[0].speculative_only);
    }
}
