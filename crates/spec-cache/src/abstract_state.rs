//! The abstract cache domain: must-ages with optional shadow (may) ages.
//!
//! A state maps every tracked cache block to
//!
//! * a **must age** — an upper bound on the block's LRU age along *all*
//!   paths reaching the program point (Section 4.1 / Appendix A), and
//! * optionally a **shadow age** (the paper's `∃v` shadow variables) — a
//!   lower bound on the age along *some* path (Appendix B), used to refine
//!   the aging rule so loops such as Figure 11 do not spuriously evict
//!   blocks.
//!
//! Ages range over `1..=W` where `W` is the associativity (number of ways of
//! the relevant cache set; the whole cache for a fully-associative
//! configuration).  A block absent from the must map may be outside the
//! cache; a block absent from the may map is definitely outside the cache on
//! every path.

use std::collections::BTreeMap;

use spec_ir::RegionId;

use crate::address::MemBlock;
use crate::config::CacheConfig;

/// LRU age of a cache block (1 = most recently used).
pub type Age = u32;

/// A single abstract memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheAccess {
    /// The accessed block is statically known.
    Precise(MemBlock),
    /// The access touches *some* block of the region (statically unknown
    /// offset, e.g. a secret- or input-indexed table lookup).
    AnyOf(RegionId),
}

#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct StateInner {
    /// Must component: upper bound on the age of blocks guaranteed cached.
    must: BTreeMap<MemBlock, Age>,
    /// May component (shadow variables): lower bound on the age of blocks
    /// that may be cached along some path.
    may: BTreeMap<MemBlock, Age>,
}

/// Borrowed `(must, may)` age maps of a non-bottom state — the serializable
/// payload of [`AbstractCacheState::to_parts`].
pub type AgeMapsRef<'a> = (&'a BTreeMap<MemBlock, Age>, &'a BTreeMap<MemBlock, Age>);

/// Abstract cache state (must analysis, optionally refined with shadow
/// variables).
///
/// The bottom element represents "no execution reaches this point yet" and
/// is the identity of [`AbstractCacheState::join_in_place`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractCacheState {
    /// `None` is the bottom element.
    inner: Option<StateInner>,
    /// Whether the shadow (may) refinement of Appendix B is maintained.
    track_shadow: bool,
}

impl AbstractCacheState {
    /// The bottom element (unreachable).
    pub fn bottom(track_shadow: bool) -> Self {
        Self {
            inner: None,
            track_shadow,
        }
    }

    /// The entry state: the cache is (conservatively) empty.
    pub fn empty_cache(_config: &CacheConfig, track_shadow: bool) -> Self {
        Self {
            inner: Some(StateInner::default()),
            track_shadow,
        }
    }

    /// Decomposes the state into its serializable parts: the shadow flag
    /// plus, for non-bottom states, the must and may age maps.
    pub fn to_parts(&self) -> (bool, Option<AgeMapsRef<'_>>) {
        (
            self.track_shadow,
            self.inner.as_ref().map(|s| (&s.must, &s.may)),
        )
    }

    /// Rebuilds a state from its parts (inverse of [`Self::to_parts`]).
    pub fn from_parts(
        track_shadow: bool,
        inner: Option<(BTreeMap<MemBlock, Age>, BTreeMap<MemBlock, Age>)>,
    ) -> Self {
        Self {
            inner: inner.map(|(must, may)| StateInner { must, may }),
            track_shadow,
        }
    }

    /// Returns `true` if this is the bottom element.
    pub fn is_bottom(&self) -> bool {
        self.inner.is_none()
    }

    /// Whether the shadow refinement is enabled for this state.
    pub fn tracks_shadow(&self) -> bool {
        self.track_shadow
    }

    /// Upper bound on the age of `block` if it is guaranteed to be cached.
    pub fn must_age(&self, block: MemBlock) -> Option<Age> {
        self.inner.as_ref()?.must.get(&block).copied()
    }

    /// Lower bound on the age of `block` if it may be cached on some path.
    pub fn may_age(&self, block: MemBlock) -> Option<Age> {
        self.inner.as_ref()?.may.get(&block).copied()
    }

    /// Returns `true` if an access to `block` is guaranteed to hit.
    pub fn is_must_hit(&self, block: MemBlock) -> bool {
        self.must_age(block).is_some()
    }

    /// Returns `true` if `block` may be cached along some path.
    pub fn may_contain(&self, block: MemBlock) -> bool {
        if self.track_shadow {
            self.may_age(block).is_some()
        } else {
            // Without shadow tracking the may component is not maintained;
            // conservatively report that the block may be cached.
            !self.is_bottom()
        }
    }

    /// Blocks currently guaranteed to be cached, with their age bounds.
    pub fn must_hit_blocks(&self) -> impl Iterator<Item = (MemBlock, Age)> + '_ {
        self.inner
            .iter()
            .flat_map(|s| s.must.iter().map(|(b, a)| (*b, *a)))
    }

    /// Number of blocks guaranteed to be cached.
    pub fn must_hit_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| s.must.len())
    }

    /// Applies the transfer function for one memory access.
    ///
    /// `set_of` maps a block to its cache set (always `0` for a
    /// fully-associative cache); only blocks in the same set age.
    ///
    /// Accessing from the bottom state leaves it bottom (no path reaches the
    /// access).
    pub fn access(
        &mut self,
        config: &CacheConfig,
        access: &CacheAccess,
        set_of: impl Fn(MemBlock) -> usize,
    ) {
        let ways = config.associativity as Age;
        let track_shadow = self.track_shadow;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        match access {
            CacheAccess::Precise(block) => {
                let set = set_of(*block);
                // --- may (shadow) component first: its *new* value feeds the
                // refined aging rule for the must component.
                let old_shadow_v = inner.may.get(block).copied().unwrap_or(ways + 1);
                if track_shadow {
                    let snapshot: Vec<(MemBlock, Age)> =
                        inner.may.iter().map(|(b, a)| (*b, *a)).collect();
                    for (u, age) in snapshot {
                        if u == *block || set_of(u) != set {
                            continue;
                        }
                        if age <= old_shadow_v {
                            let new_age = age + 1;
                            if new_age > ways {
                                inner.may.remove(&u);
                            } else {
                                inner.may.insert(u, new_age);
                            }
                        }
                    }
                    inner.may.insert(*block, 1);
                }
                // --- must component.
                let old_must_v = inner.must.get(block).copied().unwrap_or(ways + 1);
                let snapshot: Vec<(MemBlock, Age)> =
                    inner.must.iter().map(|(b, a)| (*b, *a)).collect();
                for (u, age) in snapshot {
                    if u == *block || set_of(u) != set {
                        continue;
                    }
                    if age < old_must_v {
                        let should_age = if track_shadow {
                            // Refined rule (Appendix B): only age `u` if at
                            // least `age` shadow blocks could be younger than
                            // or as young as it.
                            let n_young = inner
                                .may
                                .iter()
                                .filter(|(w, shadow_age)| {
                                    **w != u && set_of(**w) == set && **shadow_age <= age
                                })
                                .count() as Age;
                            n_young >= age
                        } else {
                            true
                        };
                        if should_age {
                            let new_age = age + 1;
                            if new_age > ways {
                                inner.must.remove(&u);
                            } else {
                                inner.must.insert(u, new_age);
                            }
                        }
                    }
                }
                inner.must.insert(*block, 1);
            }
            CacheAccess::AnyOf(_region) => {
                // The accessed block (and therefore its set) is unknown, so
                // conservatively age every tracked block by one, and record
                // nothing as newly guaranteed-cached.  This matches the
                // paper's `[k*]` placeholder device: each evaluation of an
                // unknown-index access adds one unit of eviction pressure.
                let must_snapshot: Vec<(MemBlock, Age)> =
                    inner.must.iter().map(|(b, a)| (*b, *a)).collect();
                for (u, age) in must_snapshot {
                    let new_age = age + 1;
                    if new_age > ways {
                        inner.must.remove(&u);
                    } else {
                        inner.must.insert(u, new_age);
                    }
                }
                if track_shadow {
                    // Any block of the region may now be in the youngest line.
                    // Existing may-ages stay valid lower bounds.  We do not
                    // enumerate the region's blocks here (the caller does not
                    // hand us the address map); instead the conservative
                    // `n_young >= age` refinement is disabled for this state
                    // by bumping nothing — unconditional aging above already
                    // over-approximates.
                }
            }
        }
    }

    /// Joins `other` into `self`; returns `true` if `self` changed.
    ///
    /// Must ages take the maximum (a block survives only if it is cached in
    /// both states); shadow ages take the minimum (a block may be cached if
    /// it may be cached in either state), exactly as in Section 4.3 and
    /// Appendix B.1.2.
    pub fn join_in_place(&mut self, other: &AbstractCacheState) -> bool {
        debug_assert_eq!(
            self.track_shadow, other.track_shadow,
            "joined states must agree on shadow tracking"
        );
        let Some(other_inner) = other.inner.as_ref() else {
            return false; // joining bottom changes nothing
        };
        let Some(inner) = self.inner.as_mut() else {
            self.inner = Some(other_inner.clone());
            return true;
        };
        let mut changed = false;
        // Must: keep only blocks present in both, with the max age.
        let keys: Vec<MemBlock> = inner.must.keys().copied().collect();
        for k in keys {
            match other_inner.must.get(&k) {
                Some(other_age) => {
                    let slot = inner.must.get_mut(&k).expect("key from this map");
                    if *other_age > *slot {
                        *slot = *other_age;
                        changed = true;
                    }
                }
                None => {
                    inner.must.remove(&k);
                    changed = true;
                }
            }
        }
        // May: union with min age.
        for (k, other_age) in &other_inner.may {
            match inner.may.get_mut(k) {
                Some(age) => {
                    if *other_age < *age {
                        *age = *other_age;
                        changed = true;
                    }
                }
                None => {
                    inner.may.insert(*k, *other_age);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Widening: accelerates convergence by dropping any must entry whose
    /// age grew relative to `previous` and resetting any may entry whose age
    /// shrank (Section 6.3).  The domain is finite so this is optional, but
    /// it bounds the number of iterations on unresolved loops.
    pub fn widen_with(&mut self, previous: &AbstractCacheState) {
        let (Some(inner), Some(prev)) = (self.inner.as_mut(), previous.inner.as_ref()) else {
            return;
        };
        let keys: Vec<MemBlock> = inner.must.keys().copied().collect();
        for k in keys {
            let cur = inner.must[&k];
            match prev.must.get(&k) {
                Some(prev_age) if cur > *prev_age => {
                    inner.must.remove(&k);
                }
                _ => {}
            }
        }
        let keys: Vec<MemBlock> = inner.may.keys().copied().collect();
        for k in keys {
            let cur = inner.may[&k];
            match prev.may.get(&k) {
                Some(prev_age) if cur < *prev_age => {
                    inner.may.insert(k, 1);
                }
                None => {
                    inner.may.insert(k, 1);
                }
                _ => {}
            }
        }
    }

    /// Returns `true` if `self` is less than or equal to `other` in the
    /// precision order (i.e. `other` over-approximates `self`).
    pub fn le(&self, other: &AbstractCacheState) -> bool {
        let mut joined = other.clone();
        !joined.join_in_place(self)
    }
}

impl spec_ir::heap::HeapSize for AbstractCacheState {
    fn heap_size(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.must.heap_size() + inner.may.heap_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> MemBlock {
        MemBlock::new(RegionId::from_raw(0), i)
    }

    fn cfg(ways: usize) -> CacheConfig {
        CacheConfig::fully_associative(ways, 64)
    }

    fn access(state: &mut AbstractCacheState, config: &CacheConfig, b: MemBlock) {
        state.access(config, &CacheAccess::Precise(b), |_| 0);
    }

    #[test]
    fn figure4_left_access_of_uncached_block_ages_all() {
        // Cache of 4 ways holding u1..u4; accessing v evicts u4.
        let config = cfg(4);
        let mut s = AbstractCacheState::empty_cache(&config, false);
        for i in 1..=4 {
            access(&mut s, &config, blk(i)); // u4 is oldest after this
        }
        assert_eq!(s.must_age(blk(1)), Some(4));
        access(&mut s, &config, blk(5)); // v
        assert_eq!(s.must_age(blk(5)), Some(1));
        assert_eq!(s.must_age(blk(4)), Some(2));
        assert_eq!(s.must_age(blk(1)), None, "u4 evicted");
        assert_eq!(s.must_hit_count(), 4);
    }

    #[test]
    fn figure4_right_access_of_cached_block_only_ages_younger() {
        // State: u (age 1), v (age 2), w1 (age 3), w2 (age 4); access v.
        let config = cfg(4);
        let mut s = AbstractCacheState::empty_cache(&config, false);
        access(&mut s, &config, blk(42)); // w2
        access(&mut s, &config, blk(41)); // w1
        access(&mut s, &config, blk(2)); // v
        access(&mut s, &config, blk(1)); // u
        assert_eq!(s.must_age(blk(2)), Some(2));
        access(&mut s, &config, blk(2)); // re-access v
        assert_eq!(s.must_age(blk(2)), Some(1));
        assert_eq!(s.must_age(blk(1)), Some(2), "u aged");
        assert_eq!(s.must_age(blk(41)), Some(3), "w1 unchanged");
        assert_eq!(s.must_age(blk(42)), Some(4), "w2 unchanged");
    }

    #[test]
    fn figure5_join_takes_maximum_ages_and_drops_one_sided_blocks() {
        // Left: x(1), y(2), z(3), k(4).  Right: t(1), z(2), x(3), k(4).
        let config = cfg(4);
        let mut left = AbstractCacheState::empty_cache(&config, false);
        for b in [4u64, 3, 2, 1] {
            access(&mut left, &config, blk(b)); // => 1:x=blk(1),2:y,3:z,4:k
        }
        let mut right = AbstractCacheState::empty_cache(&config, false);
        for b in [4u64, 1, 3, 5] {
            access(&mut right, &config, blk(b)); // => t=blk(5) age1, z age2, x age3, k age4
        }
        assert_eq!(right.must_age(blk(3)), Some(2));
        assert_eq!(right.must_age(blk(1)), Some(3));

        let changed = left.join_in_place(&right);
        assert!(changed);
        // x: max(1,3) = 3; z: max(3,2)=3; k: max(4,4)=4; y and t dropped.
        assert_eq!(left.must_age(blk(1)), Some(3));
        assert_eq!(left.must_age(blk(3)), Some(3));
        assert_eq!(left.must_age(blk(4)), Some(4));
        assert_eq!(left.must_age(blk(2)), None);
        assert_eq!(left.must_age(blk(5)), None);
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let config = cfg(4);
        let mut s = AbstractCacheState::empty_cache(&config, true);
        access(&mut s, &config, blk(1));
        let before = s.clone();
        let changed = s.join_in_place(&AbstractCacheState::bottom(true));
        assert!(!changed);
        assert_eq!(s, before);

        let mut bot = AbstractCacheState::bottom(true);
        let changed = bot.join_in_place(&before);
        assert!(changed);
        assert_eq!(bot, before);
    }

    #[test]
    fn access_on_bottom_stays_bottom() {
        let config = cfg(4);
        let mut bot = AbstractCacheState::bottom(false);
        access(&mut bot, &config, blk(1));
        assert!(bot.is_bottom());
        assert!(!bot.is_must_hit(blk(1)));
    }

    #[test]
    fn unknown_index_access_ages_everything_and_claims_nothing() {
        let config = cfg(3);
        let mut s = AbstractCacheState::empty_cache(&config, false);
        access(&mut s, &config, blk(1));
        access(&mut s, &config, blk(2));
        // blk(1) now has age 2; an unknown access pushes it to 3, then 4 (out).
        s.access(&config, &CacheAccess::AnyOf(RegionId::from_raw(9)), |_| 0);
        assert_eq!(s.must_age(blk(1)), Some(3));
        assert_eq!(s.must_age(blk(2)), Some(2));
        s.access(&config, &CacheAccess::AnyOf(RegionId::from_raw(9)), |_| 0);
        assert_eq!(s.must_age(blk(1)), None, "evicted by unknown accesses");
        assert_eq!(s.must_age(blk(2)), Some(3));
        assert_eq!(s.must_hit_count(), 1);
    }

    #[test]
    fn set_associative_access_only_ages_same_set() {
        let config = CacheConfig::set_associative(2, 2, 64);
        let set_of = |b: MemBlock| (b.block_index % 2) as usize;
        let mut s = AbstractCacheState::empty_cache(&config, false);
        s.access(&config, &CacheAccess::Precise(blk(0)), set_of);
        s.access(&config, &CacheAccess::Precise(blk(1)), set_of);
        s.access(&config, &CacheAccess::Precise(blk(2)), set_of); // same set as 0
        assert_eq!(
            s.must_age(blk(0)),
            Some(2),
            "aged by the conflicting access"
        );
        assert_eq!(s.must_age(blk(1)), Some(1), "other set untouched");
        assert_eq!(s.must_age(blk(2)), Some(1));
    }

    #[test]
    fn shadow_join_keeps_may_information() {
        // Appendix B, Example B.3: after the join the may set contains the
        // union of both sides.
        let config = cfg(4);
        let mut left = AbstractCacheState::empty_cache(&config, true);
        for b in [4u64, 3, 2, 1] {
            access(&mut left, &config, blk(b)); // x=1,y=2,z=3,k=4
        }
        let mut right = AbstractCacheState::empty_cache(&config, true);
        for b in [4u64, 1, 3, 5] {
            access(&mut right, &config, blk(b));
        }
        left.join_in_place(&right);
        // Shadow ages take the minimum: x appears at 1 on the left, 3 on the right.
        assert_eq!(left.may_age(blk(1)), Some(1));
        assert_eq!(left.may_age(blk(5)), Some(1), "t only on the right");
        assert_eq!(left.may_age(blk(2)), Some(2), "y only on the left");
        // Must ages are unchanged by the refinement.
        assert_eq!(left.must_age(blk(1)), Some(3));
    }

    #[test]
    fn appendix_c_refined_aging_avoids_bogus_eviction() {
        // Figure 11 / Appendix C: a is loaded, then a loop body accesses
        // b or c.  Without shadow variables `a` is eventually evicted; with
        // them its age stabilises at 3 in a 4-way cache.
        let config = cfg(4);
        let run = |track_shadow: bool| -> Option<Age> {
            let mut s = AbstractCacheState::empty_cache(&config, track_shadow);
            access(&mut s, &config, blk(100)); // a
                                               // Five unrolled iterations of: (ref b | ref c) then join.
            for _ in 0..5 {
                let mut then_s = s.clone();
                access(&mut then_s, &config, blk(101)); // b
                let mut else_s = s.clone();
                access(&mut else_s, &config, blk(102)); // c
                then_s.join_in_place(&else_s);
                s = then_s;
            }
            s.must_age(blk(100))
        };
        assert_eq!(run(false), None, "original analysis evicts a");
        assert_eq!(run(true), Some(3), "refined analysis keeps a at age 3");
    }

    #[test]
    fn widening_drops_growing_must_entries() {
        let config = cfg(4);
        let mut prev = AbstractCacheState::empty_cache(&config, false);
        access(&mut prev, &config, blk(1));
        access(&mut prev, &config, blk(2)); // blk1 age 2
        let mut cur = prev.clone();
        access(&mut cur, &config, blk(3)); // blk1 age 3: grew
        cur.widen_with(&prev);
        assert_eq!(cur.must_age(blk(1)), None, "growing entry widened away");
        assert_eq!(cur.must_age(blk(3)), Some(1), "stable entries kept");
    }

    #[test]
    fn le_matches_join_behaviour() {
        let config = cfg(4);
        let mut small = AbstractCacheState::empty_cache(&config, false);
        access(&mut small, &config, blk(1));
        let bottom = AbstractCacheState::bottom(false);
        assert!(bottom.le(&small));
        assert!(!small.le(&bottom));
        assert!(small.le(&small));
    }

    #[test]
    fn must_hit_blocks_enumerates_entries() {
        let config = cfg(4);
        let mut s = AbstractCacheState::empty_cache(&config, false);
        access(&mut s, &config, blk(1));
        access(&mut s, &config, blk(2));
        let collected: Vec<(MemBlock, Age)> = s.must_hit_blocks().collect();
        assert_eq!(collected.len(), 2);
        assert!(collected.contains(&(blk(2), 1)));
        assert!(collected.contains(&(blk(1), 2)));
    }
}
