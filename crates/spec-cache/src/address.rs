//! Memory layout: regions → cache blocks and cache sets.

use spec_ir::heap::HeapSize;
use spec_ir::{IndexExpr, MemRef, Program, RegionId};

use crate::config::CacheConfig;

/// A single cache-line-sized block of a memory region.
///
/// Blocks are the unit the abstract cache state tracks: the paper's
/// "program variables" `v ∈ V` correspond to blocks here, so that arrays and
/// buffers larger than one line occupy several entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemBlock {
    /// The region the block belongs to.
    pub region: RegionId,
    /// Index of the cache-line-sized block within the region (offset / line size).
    pub block_index: u64,
}

impl MemBlock {
    /// Creates a block reference.
    pub fn new(region: RegionId, block_index: u64) -> Self {
        Self {
            region,
            block_index,
        }
    }
}

/// Assigns every region of a program a base address and maps memory
/// references to cache blocks and cache sets.
///
/// Regions are laid out contiguously in declaration order, each aligned to a
/// cache-line boundary, which mirrors how the paper's examples assume
/// distinct variables map to distinct cache lines.
#[derive(Clone, Debug)]
pub struct AddressMap {
    line_size: u64,
    num_sets: usize,
    /// Base *block number* of each region (region index → first global line).
    base_block: Vec<u64>,
    /// Number of blocks per region.
    blocks: Vec<u64>,
}

impl AddressMap {
    /// Builds the layout of `program` for the given cache configuration.
    pub fn new(program: &Program, config: &CacheConfig) -> Self {
        config.assert_valid();
        let mut base_block = Vec::with_capacity(program.regions().len());
        let mut blocks = Vec::with_capacity(program.regions().len());
        let mut next = 0u64;
        for region in program.regions() {
            base_block.push(next);
            let n = region.block_count(config.line_size);
            blocks.push(n);
            next += n;
        }
        Self {
            line_size: config.line_size,
            num_sets: config.num_sets,
            base_block,
            blocks,
        }
    }

    /// Rebuilds a map from its serialized parts (inverse of the accessor
    /// quadruple [`Self::line_size`], [`Self::num_sets`],
    /// [`Self::base_blocks`], [`Self::block_counts`]).
    pub fn from_parts(
        line_size: u64,
        num_sets: usize,
        base_block: Vec<u64>,
        blocks: Vec<u64>,
    ) -> Self {
        Self {
            line_size,
            num_sets,
            base_block,
            blocks,
        }
    }

    /// Cache line size the layout was computed for.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of cache sets the layout maps onto.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Base block number of each region, in region order.
    pub fn base_blocks(&self) -> &[u64] {
        &self.base_block
    }

    /// Number of blocks of each region, in region order.
    pub fn block_counts(&self) -> &[u64] {
        &self.blocks
    }

    /// Number of cache blocks occupied by `region`.
    pub fn region_blocks(&self, region: RegionId) -> u64 {
        self.blocks[region.index()]
    }

    /// All blocks of `region`, in order.
    pub fn blocks_of(&self, region: RegionId) -> impl Iterator<Item = MemBlock> + '_ {
        (0..self.region_blocks(region)).map(move |i| MemBlock::new(region, i))
    }

    /// The block touched by a byte access at `offset` within `region`.
    pub fn block_of_offset(&self, region: RegionId, offset: u64) -> MemBlock {
        MemBlock::new(region, offset / self.line_size)
    }

    /// The global (program-wide) line number of a block, used for set mapping
    /// and as the concrete cache tag.
    pub fn global_line(&self, block: MemBlock) -> u64 {
        self.base_block[block.region.index()] + block.block_index
    }

    /// The cache set a block maps to.
    pub fn set_of(&self, block: MemBlock) -> usize {
        (self.global_line(block) % self.num_sets as u64) as usize
    }

    /// Resolves a memory reference with a statically known offset.
    ///
    /// Returns `None` for references whose offset is not statically known
    /// ([`IndexExpr::LoopIndexed`], [`IndexExpr::Input`], [`IndexExpr::Secret`]).
    pub fn resolve_static(&self, m: &MemRef) -> Option<MemBlock> {
        match m.index {
            IndexExpr::Const(offset) => Some(self.block_of_offset(m.region, offset)),
            _ => None,
        }
    }

    /// Total number of blocks across all regions.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.iter().sum()
    }
}

spec_ir::zero_heap_size!(MemBlock, CacheConfig);

impl HeapSize for AddressMap {
    fn heap_size(&self) -> usize {
        self.base_block.heap_size() + self.blocks.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;

    fn layout_program() -> (Program, RegionId, RegionId, RegionId) {
        let mut b = ProgramBuilder::new("layout");
        let a = b.region("a", 100, false); // 2 blocks of 64
        let c = b.region("c", 64, false); // 1 block
        let k = b.secret_region("k", 1); // 1 block
        let e = b.entry_block("entry");
        b.ret(e);
        (b.finish().unwrap(), a, c, k)
    }

    #[test]
    fn regions_are_laid_out_contiguously_and_aligned() {
        let (p, a, c, k) = layout_program();
        let config = CacheConfig::fully_associative(8, 64);
        let map = AddressMap::new(&p, &config);
        assert_eq!(map.region_blocks(a), 2);
        assert_eq!(map.region_blocks(c), 1);
        assert_eq!(map.region_blocks(k), 1);
        assert_eq!(map.total_blocks(), 4);
        assert_eq!(map.global_line(MemBlock::new(a, 0)), 0);
        assert_eq!(map.global_line(MemBlock::new(a, 1)), 1);
        assert_eq!(map.global_line(MemBlock::new(c, 0)), 2);
        assert_eq!(map.global_line(MemBlock::new(k, 0)), 3);
    }

    #[test]
    fn offsets_map_to_blocks_by_line_size() {
        let (p, a, _, _) = layout_program();
        let config = CacheConfig::fully_associative(8, 64);
        let map = AddressMap::new(&p, &config);
        assert_eq!(map.block_of_offset(a, 0), MemBlock::new(a, 0));
        assert_eq!(map.block_of_offset(a, 63), MemBlock::new(a, 0));
        assert_eq!(map.block_of_offset(a, 64), MemBlock::new(a, 1));
    }

    #[test]
    fn set_mapping_wraps_modulo_num_sets() {
        let (p, a, c, k) = layout_program();
        let config = CacheConfig::set_associative(2, 4, 64);
        let map = AddressMap::new(&p, &config);
        assert_eq!(map.set_of(MemBlock::new(a, 0)), 0);
        assert_eq!(map.set_of(MemBlock::new(a, 1)), 1);
        assert_eq!(map.set_of(MemBlock::new(c, 0)), 0);
        assert_eq!(map.set_of(MemBlock::new(k, 0)), 1);
    }

    #[test]
    fn resolve_static_only_handles_const_offsets() {
        let (p, a, _, _) = layout_program();
        let config = CacheConfig::default();
        let map = AddressMap::new(&p, &config);
        assert_eq!(
            map.resolve_static(&MemRef::at(a, 65)),
            Some(MemBlock::new(a, 1))
        );
        assert_eq!(
            map.resolve_static(&MemRef::new(a, IndexExpr::secret(1))),
            None
        );
        assert_eq!(
            map.resolve_static(&MemRef::new(a, IndexExpr::loop_indexed(4))),
            None
        );
    }

    #[test]
    fn blocks_of_enumerates_all_blocks() {
        let (p, a, _, _) = layout_program();
        let config = CacheConfig::default();
        let map = AddressMap::new(&p, &config);
        let blocks: Vec<MemBlock> = map.blocks_of(a).collect();
        assert_eq!(blocks, vec![MemBlock::new(a, 0), MemBlock::new(a, 1)]);
    }
}
