//! An executable LRU set-associative cache.
//!
//! This is the ground-truth model: the speculative simulator (`spec-sim`)
//! drives it with concrete accesses, and the soundness tests check that
//! every access the abstract analysis classifies as a must-hit is indeed a
//! hit here, for every explored execution.

use crate::config::CacheConfig;

/// Result of a single concrete cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The line was already present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another).
    Miss,
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A concrete LRU set-associative cache over global line numbers.
///
/// Lines are identified by the `global_line` number produced by
/// [`crate::AddressMap::global_line`].
#[derive(Clone, Debug)]
pub struct ConcreteCache {
    config: CacheConfig,
    /// Each set holds its resident lines ordered from most- to
    /// least-recently used.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl ConcreteCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        config.assert_valid();
        Self {
            sets: vec![Vec::with_capacity(config.associativity); config.num_sets],
            config,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses `line`, updating LRU order and filling on a miss.
    pub fn access(&mut self, line: u64) -> AccessOutcome {
        let set_index = (line % self.config.num_sets as u64) as usize;
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.insert(0, line);
            self.hits += 1;
            AccessOutcome::Hit
        } else {
            set.insert(0, line);
            if set.len() > self.config.associativity {
                set.pop();
            }
            self.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Returns `true` if `line` is currently resident (without touching LRU order).
    pub fn contains(&self, line: u64) -> bool {
        let set_index = (line % self.config.num_sets as u64) as usize;
        self.sets[set_index].contains(&line)
    }

    /// LRU age of a resident line: 1 is most recently used; `None` if absent.
    pub fn age_of(&self, line: u64) -> Option<usize> {
        let set_index = (line % self.config.num_sets as u64) as usize;
        self.sets[set_index]
            .iter()
            .position(|&l| l == line)
            .map(|p| p + 1)
    }

    /// Number of resident lines across all sets.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets contents and statistics.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Restores the cache contents from a snapshot taken with [`Self::clone`].
    ///
    /// The hit/miss counters are *not* rolled back: speculative misses still
    /// happened on the real hardware even when the work is squashed, which is
    /// exactly the effect the paper analyses.
    pub fn restore_contents(&mut self, snapshot: &ConcreteCache) {
        self.sets = snapshot.sets.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = ConcreteCache::new(CacheConfig::fully_associative(4, 64));
        assert_eq!(c.access(1), AccessOutcome::Miss);
        assert_eq!(c.access(1), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!(c.contains(1));
        assert_eq!(c.age_of(1), Some(1));
    }

    #[test]
    fn lru_eviction_in_fully_associative_cache() {
        let mut c = ConcreteCache::new(CacheConfig::fully_associative(2, 64));
        c.access(1);
        c.access(2);
        assert_eq!(c.age_of(1), Some(2));
        c.access(3); // evicts 1 (least recently used)
        assert!(!c.contains(1));
        assert!(c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn access_refreshes_lru_order() {
        let mut c = ConcreteCache::new(CacheConfig::fully_associative(2, 64));
        c.access(1);
        c.access(2);
        c.access(1); // 1 becomes MRU, 2 becomes LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn set_associative_conflicts_only_within_a_set() {
        // 2 sets × 1 way: even lines conflict with even lines only.
        let mut c = ConcreteCache::new(CacheConfig::set_associative(2, 1, 64));
        c.access(0);
        c.access(1);
        assert!(c.contains(0));
        assert!(c.contains(1));
        c.access(2); // evicts 0 (same set), leaves 1 alone
        assert!(!c.contains(0));
        assert!(c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = ConcreteCache::new(CacheConfig::fully_associative(4, 64));
        c.access(1);
        c.access(2);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn restore_contents_keeps_statistics() {
        let mut c = ConcreteCache::new(CacheConfig::fully_associative(4, 64));
        c.access(1);
        let snapshot = c.clone();
        c.access(2);
        c.access(3);
        let misses_before = c.misses();
        c.restore_contents(&snapshot);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.misses(), misses_before, "statistics are not rolled back");
    }

    #[test]
    fn paper_default_holds_512_lines() {
        let mut c = ConcreteCache::new(CacheConfig::paper_default());
        for line in 0..512 {
            assert_eq!(c.access(line), AccessOutcome::Miss);
        }
        for line in 0..512 {
            assert!(c.contains(line));
        }
        // The 513th distinct line evicts the oldest one.
        c.access(512);
        assert!(!c.contains(0));
        assert!(c.contains(511));
    }
}
