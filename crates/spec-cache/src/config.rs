//! Cache geometry.

/// Geometry of the data cache being modelled.
///
/// The paper's evaluation uses a 32-KiB cache with 64-byte lines, 512 lines
/// in total, fully associative, with the LRU replacement policy
/// (Sections 1 and 7); [`CacheConfig::default`] reproduces that setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Cache line (block) size in bytes.
    pub line_size: u64,
    /// Number of sets.  `1` means fully associative.
    pub num_sets: usize,
    /// Number of ways (lines) per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// A fully-associative cache with `lines` lines of `line_size` bytes.
    pub fn fully_associative(lines: usize, line_size: u64) -> Self {
        Self {
            line_size,
            num_sets: 1,
            associativity: lines,
        }
    }

    /// A set-associative cache.
    pub fn set_associative(num_sets: usize, associativity: usize, line_size: u64) -> Self {
        Self {
            line_size,
            num_sets,
            associativity,
        }
    }

    /// The paper's configuration: 512 lines × 64 bytes, fully associative.
    pub fn paper_default() -> Self {
        Self::fully_associative(512, 64)
    }

    /// Total number of cache lines.
    pub fn total_lines(&self) -> usize {
        self.num_sets * self.associativity
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_lines() as u64 * self.line_size
    }

    /// Checks that the configuration is usable.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn assert_valid(&self) {
        assert!(self.line_size > 0, "cache line size must be non-zero");
        assert!(self.num_sets > 0, "cache must have at least one set");
        assert!(self.associativity > 0, "cache must have at least one way");
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_32_kib() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.total_lines(), 512);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c, CacheConfig::default());
    }

    #[test]
    fn set_associative_dimensions() {
        let c = CacheConfig::set_associative(64, 8, 64);
        assert_eq!(c.total_lines(), 512);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_invalid() {
        CacheConfig {
            line_size: 64,
            num_sets: 1,
            associativity: 0,
        }
        .assert_valid();
    }
}
