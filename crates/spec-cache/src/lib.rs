//! # spec-cache
//!
//! Cache models used by the speculative abstract interpretation:
//!
//! * [`CacheConfig`] — geometry of the data cache (line size, sets, ways),
//!   defaulting to the paper's 32-KiB fully-associative, 64-byte-line LRU
//!   configuration (512 lines).
//! * [`AddressMap`] / [`MemBlock`] — how a program's [`spec_ir::MemoryRegion`]s
//!   are laid out in memory and split into cache blocks.
//! * [`ConcreteCache`] — an executable LRU set-associative cache, used by the
//!   concrete speculative simulator (`spec-sim`) and as the ground truth for
//!   soundness tests.
//! * [`AbstractCacheState`] — the abstract must-cache domain of the paper
//!   (per-block upper bounds on LRU age), optionally refined with *shadow
//!   variables* (per-block lower bounds, the may-cache) as in Appendix B.
//!
//! ## Example
//!
//! ```rust
//! use spec_cache::{AbstractCacheState, CacheAccess, CacheConfig, MemBlock};
//! use spec_ir::RegionId;
//!
//! let config = CacheConfig::fully_associative(4, 64); // 4 lines of 64 bytes
//! let region = RegionId::from_raw(0);
//! let mut state = AbstractCacheState::empty_cache(&config, true);
//!
//! let a = MemBlock::new(region, 0);
//! state.access(&config, &CacheAccess::Precise(a), |_| 0);
//! assert!(state.is_must_hit(a));
//! ```

pub mod abstract_state;
pub mod address;
pub mod concrete;
pub mod config;

pub use abstract_state::{AbstractCacheState, Age, CacheAccess};
pub use address::{AddressMap, MemBlock};
pub use concrete::{AccessOutcome, ConcreteCache};
pub use config::CacheConfig;
