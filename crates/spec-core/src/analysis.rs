//! The analysis driver: unrolling, VCFG construction, dynamic depth
//! bounding, fixpoint solving and classification.

use std::collections::HashSet;
use std::time::Instant;

use spec_absint::{SolveStats, WorklistSolver};
use spec_cache::AddressMap;
use spec_ir::transform::{unroll_counted_loops, UnrollReport};
use spec_ir::{Cfg, LoopForest, Program};
use spec_vcfg::Vcfg;

use crate::classify::{classify_accesses, AnalysisResult};
use crate::engine::SpecProblem;
use crate::options::AnalysisOptions;
use crate::state::SpecState;

/// A configured must-hit cache analysis.
///
/// # Example
///
/// ```rust
/// use spec_core::CacheAnalysis;
/// use spec_ir::builder::ProgramBuilder;
/// use spec_ir::IndexExpr;
///
/// let mut b = ProgramBuilder::new("tiny");
/// let t = b.region("t", 64, false);
/// let entry = b.entry_block("entry");
/// b.load(entry, t, IndexExpr::Const(0));
/// b.load(entry, t, IndexExpr::Const(0));
/// b.ret(entry);
/// let program = b.finish().unwrap();
///
/// let result = CacheAnalysis::speculative().run(&program);
/// // The second access to `t` is a guaranteed hit.
/// assert_eq!(result.must_hit_count(), 1);
/// assert_eq!(result.miss_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CacheAnalysis {
    options: AnalysisOptions,
}

impl CacheAnalysis {
    /// Creates an analysis with explicit options.
    pub fn new(options: AnalysisOptions) -> Self {
        Self { options }
    }

    /// The paper's speculative analysis with default parameters.
    pub fn speculative() -> Self {
        Self::new(AnalysisOptions::speculative())
    }

    /// The non-speculative baseline analysis.
    pub fn non_speculative() -> Self {
        Self::new(AnalysisOptions::non_speculative())
    }

    /// The options this analysis runs with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Runs the analysis on `program`.
    pub fn run(&self, program: &Program) -> AnalysisResult {
        let start = Instant::now();
        let options = &self.options;

        // 1. Loop unrolling (Section 6.3).
        let (analyzed, unroll) = if options.unroll_loops {
            unroll_counted_loops(program, options.unroll)
        } else {
            (program.clone(), UnrollReport::default())
        };

        // 2. Memory layout and virtual control flow.
        let amap = AddressMap::new(&analyzed, &options.cache);
        let spec_config = if options.speculative {
            options.speculation
        } else {
            // Zero-length windows: sites exist but no speculative flow is
            // ever seeded, giving exactly the baseline Algorithm 1.
            options.speculation.with_depths(0, 0)
        };
        let vcfg = Vcfg::build(&analyzed, spec_config);

        // 3. Widening points: headers of loops that survived unrolling.
        let cfg = Cfg::new(&analyzed);
        let forest = LoopForest::find(&analyzed, &cfg);
        let widen_nodes: HashSet<usize> = forest
            .loops()
            .iter()
            .map(|l| vcfg.graph().first_node_of_block(l.header).index())
            .collect();

        let solver = WorklistSolver {
            widening_delay: options.widening_delay,
            ..WorklistSolver::default()
        };

        let num_colors = vcfg.num_colors();
        let mut total_stats = SolveStats::default();
        let mut rounds = 0u32;

        #[allow(clippy::too_many_arguments, clippy::type_complexity)]
        fn run_round<'a>(
            solver: &WorklistSolver,
            analyzed: &'a Program,
            vcfg: &'a Vcfg,
            amap: &'a AddressMap,
            options: &AnalysisOptions,
            widen_nodes: &HashSet<usize>,
            bounds: Vec<u32>,
            total: &mut SolveStats,
            rounds: &mut u32,
        ) -> (SpecProblem<'a>, Vec<SpecState>) {
            let mut problem = SpecProblem::new(
                analyzed,
                vcfg,
                amap,
                options.cache,
                options.track_shadow,
                bounds,
                widen_nodes.clone(),
            );
            let (states, stats) = solver.solve(&mut problem);
            total.node_visits += stats.node_visits;
            total.state_updates += stats.state_updates;
            total.max_worklist_len = total.max_worklist_len.max(stats.max_worklist_len);
            *rounds += 1;
            (problem, states)
        }

        // 4. Fixpoint, with the dynamic depth-bounding refinement
        //    (Section 6.2) when enabled: start every speculating branch at
        //    the optimistic window `b_h` if a baseline pass proves its
        //    condition operands are hits, then verify against the sound
        //    speculative result and enlarge any window whose proof no longer
        //    holds, until stable.
        let (problem, states) = if !options.speculative || num_colors == 0 {
            run_round(
                &solver, &analyzed, &vcfg, &amap, options, &widen_nodes,
                vec![0; num_colors], &mut total_stats, &mut rounds,
            )
        } else if !options.speculation.dynamic_depth_bounding {
            run_round(
                &solver, &analyzed, &vcfg, &amap, options, &widen_nodes,
                vec![options.speculation.depth_on_miss; num_colors],
                &mut total_stats, &mut rounds,
            )
        } else {
            // Baseline pass (windows of zero) for the initial must-hit facts.
            let (baseline_problem, baseline_states) = run_round(
                &solver, &analyzed, &vcfg, &amap, options, &widen_nodes,
                vec![0; num_colors], &mut total_stats, &mut rounds,
            );
            let mut bounds: Vec<u32> = vcfg
                .sites()
                .iter()
                .map(|site| {
                    let at_branch = &baseline_states[site.branch_node.index()].normal;
                    if baseline_problem.condition_is_must_hit(&site.condition_refs, at_branch) {
                        options.speculation.depth_on_hit
                    } else {
                        options.speculation.depth_on_miss
                    }
                })
                .collect();
            drop(baseline_problem);
            drop(baseline_states);

            loop {
                let (problem, states) = run_round(
                    &solver, &analyzed, &vcfg, &amap, options, &widen_nodes,
                    bounds.clone(), &mut total_stats, &mut rounds,
                );
                // Verify every optimistic window against the sound result.
                let violations: Vec<usize> = vcfg
                    .sites()
                    .iter()
                    .enumerate()
                    .filter(|(i, site)| {
                        bounds[*i] < options.speculation.depth_on_miss && {
                            let at_branch = &states[site.branch_node.index()].normal;
                            !problem.condition_is_must_hit(&site.condition_refs, at_branch)
                        }
                    })
                    .map(|(i, _)| i)
                    .collect();
                if violations.is_empty() {
                    break (problem, states);
                }
                for i in violations {
                    bounds[i] = options.speculation.depth_on_miss;
                }
            }
        };

        // 5. Classification.
        let accesses = classify_accesses(&problem, &vcfg, &states);
        let bounds = problem.bounds.clone();
        let speculated_branches = vcfg.num_speculated_branches();
        drop(problem);

        AnalysisResult {
            program: analyzed,
            address_map: amap,
            cache: options.cache,
            states,
            accesses,
            stats: total_stats,
            rounds,
            unroll,
            speculated_branches,
            colors: num_colors,
            bounds,
            elapsed: start.elapsed(),
        }
    }
}
