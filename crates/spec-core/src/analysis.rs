//! The analysis driver: fixpoint solving, dynamic depth bounding and
//! classification over prepared artifacts.
//!
//! [`CacheAnalysis`] is the one-shot entry point; it is a thin wrapper over
//! a single-use [`crate::session`].  Code that analyses the same program
//! under several configurations should prepare it once with
//! [`crate::session::Analyzer::prepare`] and reuse the
//! [`crate::session::PreparedProgram`].

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use spec_absint::{SolveStats, WorklistSolver};
use spec_cache::AddressMap;
use spec_ir::transform::UnrollReport;
use spec_ir::Program;
use spec_vcfg::Vcfg;

use crate::classify::{classify_accesses, AnalysisResult};
use crate::engine::SpecProblem;
use crate::options::AnalysisOptions;
use crate::session::{Analyzer, RoundCache, RoundResult};
use crate::state::SpecState;
use crate::summary::SummaryCtx;

/// A configured must-hit cache analysis.
///
/// # Example
///
/// ```rust
/// use spec_core::CacheAnalysis;
/// use spec_ir::builder::ProgramBuilder;
/// use spec_ir::IndexExpr;
///
/// let mut b = ProgramBuilder::new("tiny");
/// let t = b.region("t", 64, false);
/// let entry = b.entry_block("entry");
/// b.load(entry, t, IndexExpr::Const(0));
/// b.load(entry, t, IndexExpr::Const(0));
/// b.ret(entry);
/// let program = b.finish().unwrap();
///
/// let result = CacheAnalysis::speculative().run(&program);
/// // The second access to `t` is a guaranteed hit.
/// assert_eq!(result.must_hit_count(), 1);
/// assert_eq!(result.miss_count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CacheAnalysis {
    options: AnalysisOptions,
}

impl CacheAnalysis {
    /// Creates an analysis with explicit options.
    pub fn new(options: AnalysisOptions) -> Self {
        Self { options }
    }

    /// The paper's speculative analysis with default parameters.
    pub fn speculative() -> Self {
        Self::new(AnalysisOptions::speculative())
    }

    /// The non-speculative baseline analysis.
    pub fn non_speculative() -> Self {
        Self::new(AnalysisOptions::non_speculative())
    }

    /// The options this analysis runs with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Runs the analysis on `program`.
    ///
    /// This prepares `program` in a throw-away session and runs the one
    /// configuration; results are identical to
    /// [`crate::session::PreparedProgram::run`] with the same options.
    pub fn run(&self, program: &Program) -> AnalysisResult {
        Analyzer::new().prepare(program).run(&self.options)
    }
}

/// Runs the fixpoint (with the dynamic depth-bounding refinement of
/// Section 6.2 when enabled) and classification over prepared artifacts.
///
/// This is the shared back half of [`CacheAnalysis::run`] and
/// [`crate::session::PreparedProgram::run`]: given the same artifacts and
/// options it is deterministic, which is what makes session runs
/// bit-identical to fresh runs.  Individual fixpoint rounds are memoized in
/// `round_cache`, so configurations that revisit a round another
/// configuration already solved (most prominently the shared zero-bounds
/// seeding pass of dynamic depth bounding) skip straight to its result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_prepared(
    options: &AnalysisOptions,
    analyzed: &Arc<Program>,
    unroll: UnrollReport,
    vcfg: &Vcfg,
    amap: &Arc<AddressMap>,
    widen_nodes: &HashSet<usize>,
    round_cache: &RoundCache,
    summary: SummaryCtx<'_>,
    start: Instant,
) -> AnalysisResult {
    let solver = WorklistSolver {
        widening_delay: options.widening_delay,
        ..WorklistSolver::default()
    };

    let num_colors = vcfg.num_colors();
    let mut total_stats = SolveStats::default();
    let mut rounds = 0u32;

    /// Solves one round (or replays it from the cache), accumulating its
    /// statistics exactly as a fresh solve would.  The returned problem is
    /// freshly constructed either way — classification and the dynamic
    /// depth-bounding checks need its topology.
    ///
    /// An actually-solved round consults the summary context: when the
    /// session adopted a donor whose seeding plan passed the gates *and*
    /// the donor solved this very round, the frozen blocks transplant the
    /// donor's converged states and only the invalidated region iterates.
    /// The converged states are identical either way (the plan's gates
    /// guarantee it); only the per-block hit/miss accounting and the
    /// worklist-pop statistics differ.
    #[allow(clippy::too_many_arguments)]
    fn run_round<'a>(
        solver: &WorklistSolver,
        analyzed: &'a Program,
        vcfg: &'a Vcfg,
        amap: &'a AddressMap,
        options: &AnalysisOptions,
        widen_nodes: &HashSet<usize>,
        bounds: Vec<u32>,
        round_cache: &RoundCache,
        summary: &SummaryCtx<'_>,
        total: &mut SolveStats,
        rounds: &mut u32,
    ) -> (SpecProblem<'a>, Arc<RoundResult>) {
        let effective = options.effective_speculation();
        let key = (
            options.cache,
            options.track_shadow,
            options.widening_delay,
            effective.depth_on_miss,
            effective.merge_strategy,
            bounds.clone(),
        );
        let mut problem = SpecProblem::new(
            analyzed,
            vcfg,
            amap,
            options.cache,
            options.track_shadow,
            bounds,
            widen_nodes.clone(),
        );
        let donor_round = summary
            .seed
            .as_ref()
            .and_then(|(_, summaries)| summaries.donor_round(&key));
        let round = round_cache.get_or_compute(key, || {
            let blocks = analyzed.blocks().len() as u64;
            if let (Some((plan, _)), Some(donor)) = (&summary.seed, &donor_round) {
                let seeds: Vec<Option<SpecState>> = plan
                    .frozen
                    .iter()
                    .enumerate()
                    .map(|(node, &frozen)| {
                        frozen.then(|| donor.0[plan.donor_node[node] as usize].clone())
                    })
                    .collect();
                let (states, stats) = solver.solve_seeded(&mut problem, seeds);
                summary
                    .store
                    .record_round(plan.frozen_blocks, blocks - plan.frozen_blocks);
                return (Arc::new(states), stats);
            }
            summary.store.record_round(0, blocks);
            let (states, stats) = solver.solve(&mut problem);
            (Arc::new(states), stats)
        });
        let stats = round.1;
        total.node_visits += stats.node_visits;
        total.state_updates += stats.state_updates;
        total.max_worklist_len = total.max_worklist_len.max(stats.max_worklist_len);
        *rounds += 1;
        (problem, round)
    }

    // Fixpoint, with the dynamic depth-bounding refinement (Section 6.2)
    // when enabled: start every speculating branch at the optimistic window
    // `b_h` if a baseline pass proves its condition operands are hits, then
    // verify against the sound speculative result and enlarge any window
    // whose proof no longer holds, until stable.
    let (problem, round) = if !options.speculative || num_colors == 0 {
        run_round(
            &solver,
            analyzed,
            vcfg,
            amap,
            options,
            widen_nodes,
            vec![0; num_colors],
            round_cache,
            &summary,
            &mut total_stats,
            &mut rounds,
        )
    } else if !options.speculation.dynamic_depth_bounding {
        run_round(
            &solver,
            analyzed,
            vcfg,
            amap,
            options,
            widen_nodes,
            vec![options.speculation.depth_on_miss; num_colors],
            round_cache,
            &summary,
            &mut total_stats,
            &mut rounds,
        )
    } else {
        // Baseline pass (windows of zero) for the initial must-hit facts.
        // Across a comparison suite this is the most frequently shared
        // round: every dynamic-bounding configuration with the same cache,
        // shadow and widening settings starts from it.
        let (baseline_problem, baseline_round) = run_round(
            &solver,
            analyzed,
            vcfg,
            amap,
            options,
            widen_nodes,
            vec![0; num_colors],
            round_cache,
            &summary,
            &mut total_stats,
            &mut rounds,
        );
        let mut bounds: Vec<u32> = vcfg
            .sites()
            .iter()
            .map(|site| {
                let at_branch = &baseline_round.0[site.branch_node.index()].normal;
                if baseline_problem.condition_is_must_hit(&site.condition_refs, at_branch) {
                    options.speculation.depth_on_hit
                } else {
                    options.speculation.depth_on_miss
                }
            })
            .collect();
        drop(baseline_problem);
        drop(baseline_round);

        loop {
            let (problem, round) = run_round(
                &solver,
                analyzed,
                vcfg,
                amap,
                options,
                widen_nodes,
                bounds.clone(),
                round_cache,
                &summary,
                &mut total_stats,
                &mut rounds,
            );
            // Verify every optimistic window against the sound result.
            let violations: Vec<usize> = vcfg
                .sites()
                .iter()
                .enumerate()
                .filter(|(i, site)| {
                    bounds[*i] < options.speculation.depth_on_miss && {
                        let at_branch = &round.0[site.branch_node.index()].normal;
                        !problem.condition_is_must_hit(&site.condition_refs, at_branch)
                    }
                })
                .map(|(i, _)| i)
                .collect();
            if violations.is_empty() {
                break (problem, round);
            }
            for i in violations {
                bounds[i] = options.speculation.depth_on_miss;
            }
        }
    };

    // Classification.
    let states = &round.0;
    let accesses = classify_accesses(&problem, vcfg, states);
    let bounds = problem.bounds.clone();
    let speculated_branches = vcfg.num_speculated_branches();
    drop(problem);

    AnalysisResult {
        program: Arc::clone(analyzed),
        address_map: Arc::clone(amap),
        cache: options.cache,
        states: Arc::clone(&round.0),
        accesses,
        stats: total_stats,
        rounds,
        unroll,
        speculated_branches,
        colors: num_colors,
        bounds,
        elapsed: start.elapsed(),
    }
}
