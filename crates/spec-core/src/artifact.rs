//! Persistent prepared-program artifacts: serialize a whole analysis
//! session to disk and restore it in another process.
//!
//! A [`crate::session::PreparedProgram`] is a pure function of the program
//! plus the requests that have been run against it — every memoized artifact
//! (unrolled cores, address maps, VCFGs, fixpoint rounds) is deterministic.
//! That makes the entire session serializable: this module walks the same
//! structure the `HeapSize` accounting walks and encodes it with the
//! [`spec_store`] codec, so a server restart (or a different machine sharing
//! the artifact directory) can load warm state instead of re-preparing.
//!
//! ## Content addressing
//!
//! An artifact is addressed by the pair
//!
//! * **structural fingerprint** ([`spec_ir::fingerprint::program_fingerprint`])
//!   — names the file and keys lookups, and
//! * **options/schema signature** ([`options_signature`]) — a hash over a
//!   canonical description of the serialized traversal; any change to the
//!   shape of [`crate::AnalysisOptions`] or to this module's encoding must
//!   be reflected in the descriptor, turning stale artifacts into clean
//!   store misses instead of misdecodes.
//!
//! ## What is (not) persisted
//!
//! Cache *counters* (hits/misses/adoptions) are process statistics, not
//! session content — restored sessions start from zero, exactly like a fresh
//! prepare, so responses stay byte-identical after the timing strip.
//! Analyzer policy (suite-thread and round-cache bounds) is also per-process
//! and is re-applied from the loading [`Analyzer`], not read from disk.
//! Round-cache *recency* is preserved: rounds are written in
//! least-to-most-recently-used order and restored under fresh ticks, so a
//! restored bounded cache evicts in the same order the saved one would have.

use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use std::time::Instant;

use spec_ir::fingerprint::{program_fingerprint, Fingerprint};
use spec_ir::Program;
use spec_store::{fnv64, ArtifactStore, Codec, DecodeError, Decoder, Encoder, LoadOutcome};
use spec_telemetry::{Counter, Histogram, Registry};

use crate::session::{Analyzer, Memo, PreparedCore, PreparedProgram, RoundCache};
use crate::state::SpecState;
use crate::summary::{summary_keys, SummaryStore};

/// Canonical description of the serialized traversal.
///
/// This string *is* the schema: [`options_signature`] hashes it, and the
/// hash rides in every artifact header.  Whenever the encoding of any
/// serialized type changes shape — a new `AnalysisOptions` knob that feeds a
/// memo key, a new field in a serialized struct, a reordered traversal —
/// edit this descriptor (or bump `spec_store::ARTIFACT_FORMAT_VERSION`), and
/// every stale artifact turns into a clean store miss.
const PREPARED_SCHEMA: &str = "prepared-v2;\
 program{name,regions{name,size_bytes,secret},blocks{id,name?,insts,term},entry};\
 amaps[(line_size,num_sets,assoc)->{line_size,num_sets,base_blocks,block_counts}];\
 cores[(unroll_loops,{max_program_insts,max_trip_count})->{analyzed,\
 unroll{unrolled_loops,skipped_loops},widen_headers,\
 block_keys[per-block summary fingerprints],\
 vcfgs[(depth_on_miss,merge)->{graph{kinds,successors,entry},sites,config}],\
 rounds[(cache,shadow,widening_delay,depth_on_hit,merge,bounds)->\
 (states{normal,spec[color->{shadow,must,may}]},solve_stats)] in lru order]}";

/// The options/schema signature embedded in every artifact header.
pub fn options_signature() -> u64 {
    fnv64(PREPARED_SCHEMA.as_bytes())
}

impl Codec for SpecState {
    fn encode(&self, e: &mut Encoder) {
        self.normal.encode(e);
        self.spec.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SpecState {
            normal: Codec::decode(d)?,
            spec: Codec::decode(d)?,
        })
    }
}

/// Serializes a prepared session into a self-contained payload.
///
/// Memo tables are emitted in sorted key order (rounds in LRU order, whose
/// recency is part of the session's observable eviction behaviour), so the
/// payload is a deterministic function of the session contents.
pub fn encode_prepared(prepared: &PreparedProgram) -> Vec<u8> {
    let mut e = Encoder::new();
    prepared.fingerprint.encode(&mut e);
    prepared.program.encode(&mut e);

    let mut amaps = prepared.amaps.entries();
    amaps.sort_by_key(|(cache, _)| (cache.line_size, cache.num_sets, cache.associativity));
    e.usize(amaps.len());
    for (cache, amap) in amaps {
        cache.encode(&mut e);
        amap.encode(&mut e);
    }

    let mut cores = prepared.cores.entries();
    cores.sort_by_key(|((unroll_loops, unroll), _)| {
        (
            *unroll_loops,
            unroll.max_program_insts,
            unroll.max_trip_count,
        )
    });
    e.usize(cores.len());
    for (key, core) in cores {
        key.encode(&mut e);
        core.analyzed.encode(&mut e);
        core.unroll.encode(&mut e);
        core.widen_headers.encode(&mut e);
        core.block_keys.encode(&mut e);

        let mut vcfgs = core.vcfgs.entries();
        vcfgs.sort_by_key(|((depth, merge), _)| (*depth, *merge as u8));
        e.usize(vcfgs.len());
        for (vkey, vcfg) in vcfgs {
            vkey.encode(&mut e);
            vcfg.encode(&mut e);
        }

        core.rounds.lru_entries().encode(&mut e);
    }
    e.into_bytes()
}

/// Deserializes a prepared session, applying the loading process's analyzer
/// policy (thread and round-cache bounds).
///
/// Fails — rather than producing an inconsistent session — if the payload is
/// malformed, if the embedded program does not hash to the embedded
/// fingerprint, or if any derived index is out of range.
pub fn decode_prepared(bytes: &[u8], analyzer: &Analyzer) -> Result<PreparedProgram, DecodeError> {
    let mut d = Decoder::new(bytes);
    let prepared = decode_prepared_inner(&mut d, analyzer)?;
    d.finish()?;
    Ok(prepared)
}

fn decode_prepared_inner(
    d: &mut Decoder<'_>,
    analyzer: &Analyzer,
) -> Result<PreparedProgram, DecodeError> {
    let (max_suite_threads, round_cache_capacity) = analyzer.settings();
    let fingerprint = Fingerprint::decode(d)?;
    let program = Program::decode(d)?;
    if program_fingerprint(&program) != fingerprint {
        return Err(DecodeError::Invalid("program does not match fingerprint"));
    }

    let amap_count = d.seq_len()?;
    let mut amaps = Vec::with_capacity(amap_count);
    for _ in 0..amap_count {
        let cache = Codec::decode(d)?;
        let amap = Codec::decode(d)?;
        amaps.push((cache, Arc::new(amap)));
    }

    let core_count = d.seq_len()?;
    let mut cores = Vec::with_capacity(core_count);
    for _ in 0..core_count {
        let key = Codec::decode(d)?;
        let core = decode_core(d, round_cache_capacity)?;
        cores.push((key, Arc::new(core)));
    }

    Ok(PreparedProgram {
        program,
        fingerprint,
        max_suite_threads,
        round_cache_capacity,
        cores: Memo::from_entries(cores),
        amaps: Memo::from_entries(amaps),
        amaps_adopted: AtomicU64::new(0),
        // Donor adoption is a live-session act; a restored artifact starts
        // with no pending donors and zeroed summary counters, exactly like
        // a fresh prepare.
        summaries: SummaryStore::new(),
    })
}

fn decode_core(
    d: &mut Decoder<'_>,
    round_cache_capacity: Option<NonZeroUsize>,
) -> Result<PreparedCore, DecodeError> {
    let analyzed: Arc<Program> = Codec::decode(d)?;
    let unroll = Codec::decode(d)?;
    let widen_headers: Vec<spec_ir::BlockId> = Codec::decode(d)?;
    if widen_headers
        .iter()
        .any(|header| header.index() >= analyzed.blocks().len())
    {
        return Err(DecodeError::Invalid("widen header out of range"));
    }

    let block_keys: Vec<u64> = Codec::decode(d)?;
    if block_keys != summary_keys(&analyzed) {
        return Err(DecodeError::Invalid(
            "summary keys do not match the analyzed program",
        ));
    }

    let vcfg_count = d.seq_len()?;
    let mut vcfgs = Vec::with_capacity(vcfg_count);
    for _ in 0..vcfg_count {
        let key = Codec::decode(d)?;
        let vcfg: spec_vcfg::Vcfg = Codec::decode(d)?;
        vcfgs.push((key, Arc::new(vcfg)));
    }

    let rounds = Codec::decode(d)?;
    Ok(PreparedCore {
        analyzed,
        unroll,
        widen_headers,
        block_keys,
        // A restored core has no donor: summaries come into play only when
        // the incremental layer adopts across an edit.
        summaries: None,
        vcfgs: Memo::from_entries(vcfgs),
        rounds: RoundCache::from_entries(round_cache_capacity, rounds),
    })
}

/// Store I/O telemetry: operation latencies and payload byte counters,
/// optional on a [`PreparedStore`] (one-shot CLI runs carry none).
#[derive(Clone, Debug)]
pub struct StoreTelemetry {
    load_seconds: Histogram,
    persist_seconds: Histogram,
    gc_seconds: Histogram,
    loaded_bytes: Counter,
    persisted_bytes: Counter,
}

impl StoreTelemetry {
    /// Registers the `spec_store_io_seconds{op}` and
    /// `spec_store_io_bytes_total{op}` families on `registry` and returns
    /// the recording handles.
    pub fn registered(registry: &Registry) -> Self {
        let op_seconds = |op: &'static str| {
            registry.histogram(
                "spec_store_io_seconds",
                "Artifact-store operation latency: load, persist, gc.",
                &[("op", op)],
            )
        };
        let op_bytes = |op: &'static str| {
            registry.counter(
                "spec_store_io_bytes_total",
                "Artifact payload bytes moved, by operation.",
                &[("op", op)],
            )
        };
        Self {
            load_seconds: op_seconds("load"),
            persist_seconds: op_seconds("persist"),
            gc_seconds: op_seconds("gc"),
            loaded_bytes: op_bytes("load"),
            persisted_bytes: op_bytes("persist"),
        }
    }
}

/// An [`ArtifactStore`] specialised to prepared-program payloads: the
/// second cache tier below [`crate::incremental::SessionCache`]'s in-memory
/// entries.
#[derive(Clone, Debug)]
pub struct PreparedStore {
    store: ArtifactStore,
    signature: u64,
    telemetry: Option<StoreTelemetry>,
}

impl PreparedStore {
    /// Opens a store rooted at `dir` (created lazily on first save).
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self {
            store: ArtifactStore::new(dir),
            signature: options_signature(),
            telemetry: None,
        }
    }

    /// Bounds the on-disk store to `bytes`, enforced by recency after every
    /// save (the disk-tier analogue of
    /// [`crate::incremental::SessionCache::max_session_bytes`]).
    pub fn max_store_bytes(mut self, bytes: u64) -> Self {
        self.store = self.store.with_max_bytes(Some(bytes));
        self
    }

    /// Attaches store I/O telemetry (builder-style, like
    /// [`PreparedStore::max_store_bytes`]).
    pub fn telemetry(mut self, telemetry: StoreTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The underlying artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Loads and deserializes the artifact for `fingerprint`, if present
    /// and valid.  Returns the restored session plus the payload size in
    /// bytes (for the load-bytes counters).  Any failure — missing file,
    /// header/checksum rejection, or a payload that fails to decode — comes
    /// back as `None`, with the offending file quarantined, so callers fall
    /// through to a cold prepare.
    pub fn load(
        &self,
        analyzer: &Analyzer,
        fingerprint: Fingerprint,
    ) -> Option<(PreparedProgram, u64)> {
        let started = Instant::now();
        match self.store.load(fingerprint.0, self.signature) {
            LoadOutcome::Loaded(payload) => {
                match decode_prepared(&payload, analyzer) {
                    Ok(prepared) => {
                        if let Some(telemetry) = &self.telemetry {
                            telemetry.load_seconds.record(started.elapsed());
                            telemetry.loaded_bytes.add(payload.len() as u64);
                        }
                        Some((prepared, payload.len() as u64))
                    }
                    Err(_) => {
                        // The checksum matched but the payload did not
                        // decode: a schema drift the signature failed to
                        // catch.  Quarantine so it is never retried.
                        self.store.reject(fingerprint.0);
                        None
                    }
                }
            }
            LoadOutcome::Missing | LoadOutcome::Rejected(_) => None,
        }
    }

    /// Serializes and atomically writes `prepared`, returning the bytes
    /// written.  GC runs (and is timed) separately from the write itself,
    /// so the persist and gc series stay distinguishable.
    pub fn save(&self, prepared: &PreparedProgram) -> std::io::Result<u64> {
        let payload = encode_prepared(prepared);
        let started = Instant::now();
        let written =
            self.store
                .save_without_gc(prepared.fingerprint().0, self.signature, &payload)?;
        if let Some(telemetry) = &self.telemetry {
            telemetry.persist_seconds.record(started.elapsed());
            telemetry.persisted_bytes.add(written);
        }
        self.note_latest(prepared.program().name(), prepared.fingerprint());
        let gc_started = Instant::now();
        let _ = self.store.gc();
        if let Some(telemetry) = &self.telemetry {
            telemetry.gc_seconds.record(gc_started.elapsed());
        }
        Ok(written)
    }

    /// Path of the name-index sidecar for `name`.  Artifacts are keyed by
    /// the name-free structural fingerprint, so after an edit nothing would
    /// connect the new program to its predecessor's artifact; the sidecar
    /// remembers, per program name, the fingerprint last persisted under
    /// it.  It is purely advisory — a stale or colliding index costs a
    /// failed donor load, never correctness.
    fn named_index_path(&self, name: &str) -> PathBuf {
        self.store
            .dir()
            .join(format!("name-{:016x}.latest", fnv64(name.as_bytes())))
    }

    /// Best-effort atomic update of the name index after a save.  The temp
    /// name carries `.tmp.` so a crashed leftover is swept by the store GC.
    fn note_latest(&self, name: &str, fingerprint: Fingerprint) {
        let path = self.named_index_path(name);
        let temp = self.store.dir().join(format!(
            "name-{:016x}.tmp.{}",
            fnv64(name.as_bytes()),
            std::process::id()
        ));
        if std::fs::write(&temp, format!("{:016x}", fingerprint.0)).is_ok()
            && std::fs::rename(&temp, &path).is_err()
        {
            let _ = std::fs::remove_file(&temp);
        }
    }

    /// The *predecessor* artifact last persisted under `name`, if it is
    /// still loadable and is not the `exclude` fingerprint itself — the
    /// cross-restart donor for compositional summary reuse.  The decoded
    /// program's name must match: the index is a 64-bit hash, so a
    /// collision must read as a miss, not a donor.
    pub(crate) fn donor(
        &self,
        analyzer: &Analyzer,
        name: &str,
        exclude: Fingerprint,
    ) -> Option<PreparedProgram> {
        let hex = std::fs::read_to_string(self.named_index_path(name)).ok()?;
        let fingerprint = u64::from_str_radix(hex.trim(), 16).ok()?;
        if fingerprint == exclude.0 {
            return None;
        }
        let (prepared, _) = self.load(analyzer, Fingerprint(fingerprint))?;
        (prepared.program().name() == name).then_some(prepared)
    }

    /// Read-only full verification of every artifact in the store — the
    /// engine of `specan artifacts verify`.  Each file goes through the
    /// complete serve-path validation chain (header, checksum, options
    /// signature, payload decode, embedded-fingerprint check) without
    /// quarantining or touching recency.  Returns one `(fingerprint,
    /// result)` row per file, sorted by fingerprint; `Ok` carries the
    /// payload size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors listing the store directory (per-file read
    /// failures are reported in the rows instead).
    pub fn verify(&self, analyzer: &Analyzer) -> std::io::Result<Vec<(u64, Result<u64, String>)>> {
        let mut out = Vec::new();
        for entry in self.store.entries()? {
            let verdict = match std::fs::read(&entry.path) {
                Err(err) => Err(format!("cannot read: {err}")),
                Ok(bytes) => match spec_store::store::parse_artifact(
                    &bytes,
                    Some(entry.fingerprint),
                    Some(self.signature),
                ) {
                    Err(reason) => Err(reason.to_string()),
                    Ok((_, payload)) => match decode_prepared(payload, analyzer) {
                        Ok(prepared) if prepared.fingerprint().0 == entry.fingerprint => {
                            Ok(payload.len() as u64)
                        }
                        Ok(_) => Err("embedded fingerprint mismatch".to_string()),
                        Err(err) => Err(format!("payload does not decode: {err}")),
                    },
                },
            };
            out.push((entry.fingerprint, verdict));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use spec_cache::CacheConfig;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BranchSemantics, IndexExpr, MemRef};

    use super::*;
    use crate::session::comparison_configs;
    use crate::AnalysisOptions;

    fn sample_program(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name);
        let table = b.region("table", 4 * 64, false);
        let key = b.secret_region("key", 64);
        let entry = b.entry_block("entry");
        let hot = b.block("hot");
        let done = b.block("done");
        b.load(entry, table, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(key, 0)],
            BranchSemantics::SecretBit { bit: 0 },
            hot,
            done,
        );
        b.load(hot, table, IndexExpr::secret(64));
        b.jump(hot, done);
        b.load(done, table, IndexExpr::Const(0));
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn empty_session_round_trips() {
        let program = sample_program("empty");
        let analyzer = Analyzer::new();
        let prepared = analyzer.prepare(&program);
        let bytes = encode_prepared(&prepared);
        let restored = decode_prepared(&bytes, &analyzer).unwrap();
        assert_eq!(restored.fingerprint(), prepared.fingerprint());
        assert_eq!(restored.program(), prepared.program());
    }

    #[test]
    fn populated_session_round_trips_with_equal_reports() {
        let program = sample_program("populated");
        let analyzer = Analyzer::new();
        let prepared = analyzer.prepare(&program);
        let cache = CacheConfig::fully_associative(8, 64);
        let configs = comparison_configs(cache);
        let first = prepared.run_suite(&configs).report().without_timing();

        let bytes = encode_prepared(&prepared);
        let restored = decode_prepared(&bytes, &analyzer).unwrap();
        // Restored sessions start with zeroed counters...
        assert_eq!(restored.cache_stats().total_misses(), 0);
        // ...but serve byte-identical reports without rebuilding artifacts:
        // everything is replayed from the restored memo tables.
        let second = restored.run_suite(&configs).report().without_timing();
        assert_eq!(first.to_json(), second.to_json());
        let stats = restored.cache_stats();
        assert_eq!(stats.core_misses, 0, "cores came from disk");
        assert_eq!(stats.amap_misses, 0, "amaps came from disk");
        assert_eq!(stats.vcfg_misses, 0, "vcfgs came from disk");
        assert_eq!(stats.round_misses, 0, "rounds came from disk");
    }

    #[test]
    fn encoding_is_deterministic() {
        let program = sample_program("deterministic");
        let analyzer = Analyzer::new();
        let cache = CacheConfig::fully_associative(8, 64);
        let make = || {
            let prepared = analyzer.prepare(&program);
            prepared.run_suite(&comparison_configs(cache));
            encode_prepared(&prepared)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let program = sample_program("fp");
        let analyzer = Analyzer::new();
        let prepared = analyzer.prepare(&program);
        let mut bytes = encode_prepared(&prepared);
        bytes[0] ^= 0x01; // flip a fingerprint bit
        assert!(decode_prepared(&bytes, &analyzer).is_err());
    }

    #[test]
    fn corrupt_payloads_never_panic() {
        let program = sample_program("fuzz");
        let analyzer = Analyzer::new();
        let prepared = analyzer.prepare(&program);
        prepared.run(
            &AnalysisOptions::builder()
                .cache(CacheConfig::fully_associative(8, 64))
                .build()
                .unwrap(),
        );
        let bytes = encode_prepared(&prepared);
        for cut in (0..bytes.len()).step_by(7) {
            let _ = decode_prepared(&bytes[..cut], &analyzer);
        }
        for i in (0..bytes.len()).step_by(3) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let _ = decode_prepared(&mutated, &analyzer);
        }
    }

    /// Populates a session whose round-cache LRU order differs from
    /// insertion order: the whole comparison panel runs, then the first
    /// configuration replays (pure hits), moving its rounds to the
    /// most-recent end.
    fn populated_with_skewed_recency(
        analyzer: &Analyzer,
    ) -> (PreparedProgram, Vec<(String, AnalysisOptions)>) {
        let program = sample_program("recency");
        let prepared = analyzer.prepare(&program);
        let configs = comparison_configs(CacheConfig::fully_associative(8, 64));
        prepared.run_suite(&configs);
        prepared.run(&configs[0].1);
        (prepared, configs)
    }

    #[test]
    fn round_cache_recency_survives_a_round_trip() {
        let analyzer = Analyzer::new();
        let (prepared, _) = populated_with_skewed_recency(&analyzer);
        let bytes = encode_prepared(&prepared);
        let restored = decode_prepared(&bytes, &analyzer).unwrap();

        let saved: std::collections::HashMap<_, _> = prepared
            .cores
            .entries()
            .into_iter()
            .map(|(key, core)| (key, core.rounds.lru_order()))
            .collect();
        assert!(
            saved.values().any(|order| order.len() > 1),
            "the contract needs a multi-entry round cache to be meaningful"
        );
        for (key, core) in restored.cores.entries() {
            assert_eq!(
                core.rounds.lru_order(),
                saved[&key],
                "restoring must reproduce the saved least-to-most-recent order \
                 under fresh ticks"
            );
            // Counters describe this process's executions only: the restore
            // itself is not an execution event.
            assert_eq!(core.rounds.counts(), (0, 0, 0));
        }
    }

    #[test]
    fn bounded_restore_drops_oldest_rounds_and_reconciles_counters() {
        let analyzer = Analyzer::new();
        let (prepared, configs) = populated_with_skewed_recency(&analyzer);
        let baseline = prepared.run_suite(&configs).report().without_timing();
        let saved: std::collections::HashMap<_, _> = prepared
            .cores
            .entries()
            .into_iter()
            .map(|(key, core)| (key, core.rounds.lru_order()))
            .collect();
        let bytes = encode_prepared(&prepared);

        let tight = Analyzer::new().round_cache_capacity(NonZeroUsize::new(1).unwrap());
        let restored = decode_prepared(&bytes, &tight).unwrap();
        for (key, core) in restored.cores.entries() {
            let order = core.rounds.lru_order();
            assert!(order.len() <= 1, "capacity 1 must hold at the restore");
            assert_eq!(
                order.last(),
                saved[&key].last(),
                "the survivor is the most recently used saved round"
            );
        }
        // The drop-to-capacity is part of the restore, not an execution:
        // counters start zeroed and the growth stamp sits at its origin, so
        // store dirty-tracking cannot misread the restore as growth.
        assert_eq!(restored.cache_stats().round_evictions, 0);
        assert_eq!(restored.growth_stamp(), 0);

        // The bounded restore still answers byte-identically — dropped
        // rounds are re-solved, which the ledger now shows as misses and a
        // moved growth stamp.
        let report = restored.run_suite(&configs).report().without_timing();
        assert_eq!(report.to_json(), baseline.to_json());
        assert!(restored.cache_stats().round_misses > 0);
        assert!(restored.growth_stamp() > 0);
    }

    #[test]
    fn prepared_store_round_trips_and_quarantines() {
        let dir =
            std::env::temp_dir().join(format!("spec-core-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let analyzer = Analyzer::new();
        let store = PreparedStore::open(&dir);
        let program = sample_program("stored");
        let prepared = analyzer.prepare(&program);
        let cache = CacheConfig::fully_associative(8, 64);
        let baseline = prepared
            .run_suite(&comparison_configs(cache))
            .report()
            .without_timing();
        store.save(&prepared).unwrap();

        let (restored, bytes) = store.load(&analyzer, prepared.fingerprint()).unwrap();
        assert!(bytes > 0);
        let report = restored
            .run_suite(&comparison_configs(cache))
            .report()
            .without_timing();
        assert_eq!(report.to_json(), baseline.to_json());

        // Unknown fingerprint: miss.
        assert!(store
            .load(&analyzer, Fingerprint(prepared.fingerprint().0 ^ 1))
            .is_none());

        // A different options signature rejects (and quarantines) the file.
        let mut stale = store.clone();
        stale.signature ^= 0xdead;
        assert!(stale.load(&analyzer, prepared.fingerprint()).is_none());
        assert!(store.load(&analyzer, prepared.fingerprint()).is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
