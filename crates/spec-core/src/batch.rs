//! Sharded batch scanning: analyse a *bundle* of programs under a labelled
//! configuration panel, fanned out across processes, with mergeable reports.
//!
//! [`crate::session`] scales one program across threads of one process; this
//! module scales a **panel** — programs × labelled configurations — across
//! shards.  The unit of exchange between shards is a deterministic JSON
//! report ([`BatchReport`], timing stripped via
//! [`Report::without_timing`]), so the merged result of a sharded run is
//! **bit-identical** to a single-process in-order run of the same panel, no
//! matter how the panel was split or which shard finished first.  That
//! determinism is what makes the reports CI-friendly: they can be diffed,
//! cached, asserted against and merged across machines.
//!
//! The pipeline:
//!
//! 1. [`discover_programs`] expands directories into a sorted, de-duplicated
//!    list of `.spec` files — the *bundle*;
//! 2. [`plan_shards`] splits the bundle into contiguous, near-even shards;
//! 3. each shard is a serializable [`ShardSpec`] and runs either in-process
//!    (scoped threads) or in a spawned worker subprocess
//!    (`specan worker --shard-json <spec>`) via [`run_bundle`] — the worker
//!    body itself is [`run_shard`], shared by both paths;
//! 4. [`BatchReport::merge`] recombines the shard reports in bundle order
//!    — verifying, via the [`BundleStamp`] every stamped report carries
//!    (the [`panel_checksum`] over the full bundle's program fingerprints
//!    plus the slice position), that the inputs are complete, compatible,
//!    non-overlapping slices of one bundle — and the result serializes
//!    with [`BatchReport::to_json`] / parses back with
//!    [`BatchReport::from_json`].  `specan merge` is this fan-in as a CLI
//!    step for artifacts produced on different machines.
//!
//! # Example
//!
//! ```rust
//! use spec_core::batch::{run_shard, PanelKind, PanelSpec, ShardSpec};
//!
//! let dir = std::env::temp_dir().join("spec-batch-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("tiny.spec");
//! std::fs::write(&path, "program tiny\nregion t 64\nblock main entry:\n  load t[0]\n  ret\n").unwrap();
//!
//! let spec = ShardSpec {
//!     programs: vec![path],
//!     panel: PanelSpec { kind: PanelKind::LeakCheck, cache_lines: 8 },
//!     stamp: None,
//! };
//! let report = run_shard(&spec).unwrap();
//! assert_eq!(report.programs.len(), 1);
//! assert!(!report.any_leak());
//! // The JSON round-trips losslessly — the merge protocol depends on it.
//! let parsed = spec_core::batch::BatchReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(parsed, report);
//! ```

use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use spec_cache::CacheConfig;
use spec_ir::fingerprint::{combined_fingerprint, program_fingerprint, Fingerprint};
use spec_ir::text::parse_program;

use crate::json::{self, JsonValue};
use crate::options::AnalysisOptions;
use crate::session::{comparison_configs, Analyzer, MergeError, Report, ReportRow};

/// The label of the row a program's leak verdict is read from: every panel
/// kind includes the paper's full speculative configuration under this
/// label, and a program *leaks* iff that row has a nonzero
/// `unsafe_secret_accesses` count.
pub const VERDICT_LABEL: &str = "speculative";

/// Which labelled configuration panel a scan runs per program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanelKind {
    /// The two-row leak panel: non-speculative `baseline` vs. the paper's
    /// full `speculative` configuration.  The cheap CI gate.
    LeakCheck,
    /// The standard five-row comparison panel of
    /// [`comparison_configs`] — the paper's tables.
    Comparison,
}

impl PanelKind {
    fn as_str(self) -> &'static str {
        match self {
            PanelKind::LeakCheck => "leak-check",
            PanelKind::Comparison => "comparison",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "leak-check" => Some(PanelKind::LeakCheck),
            "comparison" => Some(PanelKind::Comparison),
            _ => None,
        }
    }
}

/// The serializable description of a panel: which configuration family to
/// run and on what cache geometry.  Carried inside every [`ShardSpec`] and
/// [`BatchReport`] so shard outputs are self-describing and a merge can
/// reject shards that ran different panels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanelSpec {
    /// The configuration family.
    pub kind: PanelKind,
    /// Cache size in 64-byte lines (fully associative, the paper's model).
    pub cache_lines: usize,
}

impl PanelSpec {
    /// Expands the spec into the labelled configurations every program of
    /// the bundle is analysed under.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::InvalidPanel`] when the cache geometry is
    /// degenerate (e.g. zero lines).
    pub fn configs(&self) -> Result<Vec<(String, AnalysisOptions)>, BatchError> {
        let cache = CacheConfig::fully_associative(self.cache_lines, 64);
        let check = |builder: crate::options::AnalysisOptionsBuilder| {
            builder
                .cache(cache)
                .build()
                .map_err(|err| BatchError::InvalidPanel(err.to_string()))
        };
        match self.kind {
            PanelKind::LeakCheck => Ok(vec![
                (
                    "baseline".to_string(),
                    check(AnalysisOptions::builder().baseline())?,
                ),
                (
                    VERDICT_LABEL.to_string(),
                    check(AnalysisOptions::builder())?,
                ),
            ]),
            PanelKind::Comparison => {
                check(AnalysisOptions::builder())?; // validate the geometry once
                Ok(comparison_configs(cache))
            }
        }
    }

    /// The stable signature folded into every bundle checksum: a checksum
    /// only matches across runs of the *same* configuration family on the
    /// same geometry.
    fn signature(&self) -> String {
        format!("specan-panel:{}:{}", self.kind.as_str(), self.cache_lines)
    }

    pub(crate) fn to_json(self) -> String {
        format!(
            "{{\"kind\": {}, \"cache_lines\": {}}}",
            json::string(self.kind.as_str()),
            self.cache_lines
        )
    }

    pub(crate) fn from_json(value: &JsonValue) -> Result<Self, BatchError> {
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .and_then(PanelKind::parse)
            .ok_or_else(|| BatchError::malformed("panel kind"))?;
        let cache_lines = value
            .get("cache_lines")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| BatchError::malformed("panel cache_lines"))?
            as usize;
        Ok(PanelSpec { kind, cache_lines })
    }
}

/// Where a report's programs sit inside the full panel — the integrity
/// stamp that lets a cross-machine fan-in ([`BatchReport::merge`]) verify
/// it is combining **complete, compatible** slices.
///
/// The `checksum` is [`panel_checksum`] over the *whole* bundle (every
/// program's structural fingerprint, in bundle order, folded with the
/// panel signature), so every slice of one `--shard K/N` matrix carries the
/// same checksum while any other bundle — an extra file, an edited program,
/// a different panel — carries a different one.  `start`/`total` place the
/// slice: concatenating slices whose starts tile `0..total` reproduces the
/// bundle, and anything else (overlap, gap, missing machine) is detected
/// before a merged report exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BundleStamp {
    /// [`panel_checksum`] of the full bundle this report slices.
    pub checksum: Fingerprint,
    /// Number of programs in the full bundle.
    pub total: usize,
    /// Bundle index of this report's first program.
    pub start: usize,
}

impl BundleStamp {
    fn to_json(self) -> String {
        format!(
            "{{\"checksum\": {}, \"total\": {}, \"start\": {}}}",
            json::string(&self.checksum.to_hex()),
            self.total,
            self.start
        )
    }

    fn from_json(value: &JsonValue) -> Result<Self, BatchError> {
        let checksum = value
            .get("checksum")
            .and_then(JsonValue::as_str)
            .and_then(Fingerprint::from_hex)
            .ok_or_else(|| BatchError::malformed("bundle checksum"))?;
        let field = |key: &str| -> Result<usize, BatchError> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| BatchError::malformed(&format!("bundle {key}")))
        };
        Ok(BundleStamp {
            checksum,
            total: field("total")?,
            start: field("start")?,
        })
    }
}

/// The checksum of one panel over an ordered list of program fingerprints
/// — the value a [`BundleStamp`] carries.  Reuses the stable FNV core of
/// [`spec_ir::fingerprint`], so checksums survive disk, sockets and
/// process boundaries.
pub fn panel_checksum(
    panel: PanelSpec,
    fingerprints: impl IntoIterator<Item = Fingerprint>,
) -> Fingerprint {
    combined_fingerprint(&panel.signature(), fingerprints)
}

/// Fingerprints every program of `files` (the full bundle, in bundle
/// order) and returns the bundle's [`panel_checksum`].  This is the
/// pre-sharding pass every bundle command runs, so each machine of a
/// `--shard K/N` matrix stamps its slice against the same full-bundle
/// checksum.  Parsing is cheap next to analysis (the incremental layer
/// leans on the same fact).
///
/// # Errors
///
/// Returns [`BatchError::Io`]/[`BatchError::Parse`] for unreadable or
/// invalid files and [`BatchError::DuplicateProgram`] when two files
/// declare the same program name.
pub fn stamp_bundle(files: &[PathBuf], panel: PanelSpec) -> Result<Fingerprint, BatchError> {
    let mut names: Vec<String> = Vec::with_capacity(files.len());
    let mut fingerprints = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(path).map_err(|error| BatchError::Io {
            path: path.clone(),
            error,
        })?;
        let program = parse_program(&source).map_err(|err| BatchError::Parse {
            path: path.clone(),
            message: err.to_string(),
        })?;
        let name = program.name().to_string();
        if names.contains(&name) {
            return Err(BatchError::DuplicateProgram { name });
        }
        names.push(name);
        fingerprints.push(program_fingerprint(&program));
    }
    Ok(panel_checksum(panel, fingerprints))
}

/// One shard of a bundle: the program files this worker analyses, the
/// panel it runs them under, and (when the caller knows the full bundle)
/// the stamp placing the shard inside it.  Serializes to the JSON handed
/// to `specan worker --shard-json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// The `.spec` files of this shard, in bundle order.
    pub programs: Vec<PathBuf>,
    /// The panel to run.
    pub panel: PanelSpec,
    /// The shard's place in the full bundle; `None` produces an unstamped
    /// report (hand-rolled worker invocations, ad-hoc shards).
    pub stamp: Option<BundleStamp>,
}

impl ShardSpec {
    /// Serializes the shard for the worker command line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"programs\": [");
        for (i, path) in self.programs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(&path.display().to_string()));
        }
        out.push_str("], \"panel\": ");
        out.push_str(&self.panel.to_json());
        if let Some(stamp) = self.stamp {
            out.push_str(", \"bundle\": ");
            out.push_str(&stamp.to_json());
        }
        out.push('}');
        out
    }

    /// Parses a shard back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Json`] for syntactically invalid input and
    /// [`BatchError::MalformedReport`] when required fields are missing.
    pub fn from_json(input: &str) -> Result<Self, BatchError> {
        let value = JsonValue::parse(input)?;
        let programs = value
            .get("programs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| BatchError::malformed("shard programs"))?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(PathBuf::from)
                    .ok_or_else(|| BatchError::malformed("shard program path"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let panel = PanelSpec::from_json(
            value
                .get("panel")
                .ok_or_else(|| BatchError::malformed("shard panel"))?,
        )?;
        let stamp = value
            .get("bundle")
            .map(BundleStamp::from_json)
            .transpose()?;
        Ok(ShardSpec {
            programs,
            panel,
            stamp,
        })
    }
}

/// How [`run_bundle`] executes its shards.
#[derive(Clone, Debug)]
pub enum ExecMode {
    /// Run every shard on a scoped thread of this process.
    InProcess,
    /// Spawn one `<worker_exe> worker --shard-json <spec>` subprocess per
    /// shard and merge their stdout reports.  The executable is normally
    /// `std::env::current_exe()` of the `specan` binary itself.
    Subprocess {
        /// Path of the worker executable.
        worker_exe: PathBuf,
    },
}

/// Errors of the batch layer.
#[derive(Debug)]
pub enum BatchError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A program file failed to parse.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The parser's message.
        message: String,
    },
    /// No `.spec` files were found.
    NoPrograms,
    /// A discovered path is not valid UTF-8, so it cannot travel through
    /// the JSON worker protocol losslessly.
    NonUtf8Path {
        /// The offending path (lossily rendered).
        path: PathBuf,
    },
    /// Two bundle files declare the same program name, which would make the
    /// merged report ambiguous.
    DuplicateProgram {
        /// The duplicated program name.
        name: String,
    },
    /// The panel configuration is invalid.
    InvalidPanel(String),
    /// A worker subprocess failed.
    Worker {
        /// The worker's exit code, if it exited at all.
        code: Option<i32>,
        /// The worker's stderr (trimmed).
        stderr: String,
    },
    /// A report or shard document is not valid JSON.
    Json(json::JsonError),
    /// A report or shard document is valid JSON but not a valid document.
    MalformedReport(String),
    /// Shard reports could not be merged.
    Merge(MergeError),
    /// Shard reports ran different panels.
    PanelMismatch,
    /// Shard reports disagree about the bundle they slice: different
    /// checksums or totals, or a mix of stamped and unstamped reports.
    StampMismatch,
    /// Two stamped shard reports cover the same bundle position.
    OverlappingShards {
        /// The first doubly-covered bundle index.
        index: usize,
    },
    /// The stamped shard reports do not cover the whole bundle.
    IncompleteBundle {
        /// Programs covered by the supplied slices.
        covered: usize,
        /// Programs in the full bundle.
        total: usize,
    },
    /// The merged verdicts do not reproduce the bundle checksum the shards
    /// claim — a slice was tampered with or belongs to a different bundle.
    ChecksumMismatch,
}

impl BatchError {
    fn malformed(what: &str) -> Self {
        BatchError::MalformedReport(format!("missing or malformed {what}"))
    }
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            BatchError::Parse { path, message } => write!(f, "{}: {message}", path.display()),
            BatchError::NoPrograms => write!(f, "no .spec programs found"),
            BatchError::NonUtf8Path { path } => write!(
                f,
                "`{}` is not valid UTF-8 (program paths must be UTF-8 to cross \
                 the JSON worker protocol)",
                path.display()
            ),
            BatchError::DuplicateProgram { name } => {
                write!(f, "program `{name}` appears more than once in the bundle")
            }
            BatchError::InvalidPanel(message) => write!(f, "invalid panel: {message}"),
            BatchError::Worker { code, stderr } => {
                write!(f, "worker failed (exit {code:?})")?;
                if !stderr.is_empty() {
                    write!(f, ": {stderr}")?;
                }
                Ok(())
            }
            BatchError::Json(err) => write!(f, "{err}"),
            BatchError::MalformedReport(message) => write!(f, "malformed report: {message}"),
            BatchError::Merge(err) => write!(f, "{err}"),
            BatchError::PanelMismatch => write!(f, "shard reports ran different panels"),
            BatchError::StampMismatch => write!(
                f,
                "shard reports do not slice the same bundle (bundle checksum, \
                 total, or stamp presence differs)"
            ),
            BatchError::OverlappingShards { index } => write!(
                f,
                "shard reports overlap: bundle position {index} is covered twice"
            ),
            BatchError::IncompleteBundle { covered, total } => write!(
                f,
                "shard reports cover only {covered} of {total} bundle programs \
                 (a slice is missing)"
            ),
            BatchError::ChecksumMismatch => write!(
                f,
                "merged programs do not reproduce the claimed bundle checksum"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<json::JsonError> for BatchError {
    fn from(err: json::JsonError) -> Self {
        BatchError::Json(err)
    }
}

impl From<MergeError> for BatchError {
    fn from(err: MergeError) -> Self {
        BatchError::Merge(err)
    }
}

/// Expands files and directories into the bundle's program list:
/// directories are walked recursively for `*.spec` files, explicit files
/// are taken as-is, and the result is sorted and de-duplicated — the
/// canonical panel order every sharding of the bundle reproduces.
///
/// # Errors
///
/// Returns [`BatchError::Io`] for unreadable paths and
/// [`BatchError::NoPrograms`] when the expansion comes up empty.
pub fn discover_programs(paths: &[PathBuf]) -> Result<Vec<PathBuf>, BatchError> {
    // Directory symlink loops (`sub/back -> ..`) would recurse forever;
    // tracking each directory's canonical form visits every real directory
    // once, loop or no loop.
    fn walk(
        dir: &Path,
        out: &mut Vec<PathBuf>,
        visited: &mut Vec<PathBuf>,
    ) -> Result<(), BatchError> {
        let io_err = |error| BatchError::Io {
            path: dir.to_path_buf(),
            error,
        };
        let canonical = std::fs::canonicalize(dir).map_err(io_err)?;
        if visited.contains(&canonical) {
            return Ok(());
        }
        visited.push(canonical);
        let entries = std::fs::read_dir(dir).map_err(io_err)?;
        for entry in entries {
            let path = entry.map_err(io_err)?.path();
            if path.is_dir() {
                walk(&path, out, visited)?;
            } else if path.extension().is_some_and(|ext| ext == "spec") {
                // The path must survive the JSON worker protocol, which
                // carries it as a UTF-8 string; reject it here, where the
                // error can name the file, instead of failing opaquely
                // inside a worker subprocess.
                if path.to_str().is_none() {
                    return Err(BatchError::NonUtf8Path { path });
                }
                out.push(path);
            }
        }
        Ok(())
    }

    let mut programs = Vec::new();
    let mut visited = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut programs, &mut visited)?;
        } else if path.is_file() {
            // Explicit files get the same UTF-8 guard as discovered ones.
            if path.to_str().is_none() {
                return Err(BatchError::NonUtf8Path { path: path.clone() });
            }
            programs.push(path.clone());
        } else {
            return Err(BatchError::Io {
                path: path.clone(),
                error: std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            });
        }
    }
    programs.sort();
    programs.dedup();
    if programs.is_empty() {
        return Err(BatchError::NoPrograms);
    }
    Ok(programs)
}

/// The K-th (1-based) of exactly `n` contiguous, near-even slices of
/// `n_items` (the first `n_items % n` slices hold one extra item).  Slices
/// may be empty when `n > n_items` — a CI fleet is allowed more machines
/// than programs.  This is the one source of truth for the split
/// arithmetic: [`plan_shards`] and the CLI's `--shard K/N` both use it, so
/// a per-machine slice always matches the corresponding process shard.
///
/// # Panics
///
/// Panics unless `1 <= k <= n`.
pub fn shard_slice(n_items: usize, k: usize, n: usize) -> Range<usize> {
    assert!(k >= 1 && k <= n, "shard index {k} out of 1..={n}");
    let base = n_items / n;
    let extra = n_items % n;
    let start = (k - 1) * base + (k - 1).min(extra);
    start..start + base + usize::from(k - 1 < extra)
}

/// Splits `n_programs` into at most `jobs` contiguous, near-even shards
/// ([`shard_slice`] does the arithmetic; empty shards are never planned).
/// Contiguity is what lets [`BatchReport::merge`] restore the bundle order
/// by concatenating shard reports in shard order.
pub fn plan_shards(n_programs: usize, jobs: usize) -> Vec<Range<usize>> {
    let shards = jobs.max(1).min(n_programs);
    (1..=shards)
        .map(|k| shard_slice(n_programs, k, shards))
        .collect()
}

/// Runs one shard to completion in this process: loads every program,
/// runs the panel via [`crate::session::PreparedProgram::run_suite`], and
/// returns the deterministic (timing-stripped) shard report.  This is the
/// body of `specan worker` and the per-thread work of in-process sharding —
/// both execution paths share it, which is why their merged outputs agree.
///
/// The shard is the batch layer's unit of parallelism, so the suites inside
/// it run on one thread: `jobs` shards never fan out into `jobs × configs`
/// threads, and a worker fleet saturates its cores without oversubscribing
/// them.  (To parallelise one program's configurations instead, use
/// [`crate::session::PreparedProgram::run_suite`] directly.)
///
/// # Errors
///
/// Returns [`BatchError::Io`]/[`BatchError::Parse`] for unreadable or
/// invalid program files, [`BatchError::InvalidPanel`] for a degenerate
/// panel, and [`BatchError::DuplicateProgram`] when two files of the shard
/// declare the same program name.
pub fn run_shard(spec: &ShardSpec) -> Result<BatchReport, BatchError> {
    let configs = spec.panel.configs()?;
    let mut programs: Vec<ProgramVerdict> = Vec::with_capacity(spec.programs.len());
    for path in &spec.programs {
        let source = std::fs::read_to_string(path).map_err(|error| BatchError::Io {
            path: path.clone(),
            error,
        })?;
        let program = parse_program(&source).map_err(|err| BatchError::Parse {
            path: path.clone(),
            message: err.to_string(),
        })?;
        let prepared = Analyzer::new()
            .max_suite_threads(std::num::NonZeroUsize::MIN)
            .prepare(&program);
        let report = prepared.run_suite(&configs).report().without_timing();
        if programs.iter().any(|p| p.report.program == report.program) {
            return Err(BatchError::DuplicateProgram {
                name: report.program,
            });
        }
        programs.push(ProgramVerdict::from_report(report, prepared.fingerprint()));
    }
    Ok(BatchReport {
        panel: spec.panel,
        stamp: spec.stamp,
        programs,
    })
}

/// Runs a whole bundle sharded `jobs` ways and returns the merged report.
///
/// `programs` is the bundle in panel order (normally the output of
/// [`discover_programs`]); it is split with [`plan_shards`] and executed
/// per `mode` — scoped threads in-process, or one spawned worker
/// subprocess per shard.  Subprocess workers are all spawned before any is
/// awaited, so at most `jobs` processes run concurrently and waiting in
/// shard order costs no parallelism.
///
/// The merged report is bit-identical to `run_shard` over the undivided
/// bundle — sharding is an execution detail, not a semantic one.
///
/// # Errors
///
/// Propagates shard failures ([`run_shard`]'s errors, or
/// [`BatchError::Worker`] when a subprocess dies) and merge conflicts.
pub fn run_bundle(
    programs: &[PathBuf],
    panel: PanelSpec,
    jobs: usize,
    mode: &ExecMode,
) -> Result<BatchReport, BatchError> {
    run_bundle_slice(programs, 0..programs.len(), panel, jobs, mode)
}

/// Runs the `slice` of a bundle sharded `jobs` ways and returns the merged
/// **slice report**, stamped against the full bundle: its [`BundleStamp`]
/// carries the checksum over *all* of `bundle`, so per-machine artifacts of
/// a `--shard K/N` matrix recombine — and verify — through
/// [`BatchReport::merge`].  An empty slice is legal (a CI fleet may have
/// more machines than programs) and yields a stamped, program-free report.
///
/// # Errors
///
/// Everything [`run_bundle`] raises; [`BatchError::NoPrograms`] refers to
/// an empty *bundle*, not an empty slice.
pub fn run_bundle_slice(
    bundle: &[PathBuf],
    slice: Range<usize>,
    panel: PanelSpec,
    jobs: usize,
    mode: &ExecMode,
) -> Result<BatchReport, BatchError> {
    if bundle.is_empty() {
        return Err(BatchError::NoPrograms);
    }
    // The full-bundle checksum every slice stamps itself against.
    let checksum = stamp_bundle(bundle, panel)?;
    let stamp_at = |start: usize| BundleStamp {
        checksum,
        total: bundle.len(),
        start,
    };
    let files = &bundle[slice.clone()];
    if files.is_empty() {
        return Ok(BatchReport {
            panel,
            stamp: Some(stamp_at(slice.start)),
            programs: Vec::new(),
        });
    }
    let shards: Vec<ShardSpec> = plan_shards(files.len(), jobs)
        .into_iter()
        .map(|range| ShardSpec {
            programs: files[range.clone()].to_vec(),
            panel,
            stamp: Some(stamp_at(slice.start + range.start)),
        })
        .collect();
    let reports = match mode {
        ExecMode::InProcess => run_shards_in_process(&shards)?,
        ExecMode::Subprocess { worker_exe } => run_shards_subprocess(&shards, worker_exe)?,
    };
    BatchReport::merge_slices(reports)
}

fn run_shards_in_process(shards: &[ShardSpec]) -> Result<Vec<BatchReport>, BatchError> {
    if let [only] = shards {
        return Ok(vec![run_shard(only)?]);
    }
    let mut slots: Vec<Option<Result<BatchReport, BatchError>>> =
        shards.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (shard, slot) in shards.iter().zip(slots.iter_mut()) {
            scope.spawn(move || *slot = Some(run_shard(shard)));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard ran"))
        .collect()
}

fn run_shards_subprocess(
    shards: &[ShardSpec],
    worker_exe: &Path,
) -> Result<Vec<BatchReport>, BatchError> {
    // The shard spec travels over the worker's stdin (`--shard-json -`):
    // a monorepo shard can list thousands of paths, which would overflow
    // the platform's per-argument size limit as an argv string.
    let spawn = |shard: &ShardSpec| -> Result<Child, BatchError> {
        let io_err = |error| BatchError::Io {
            path: worker_exe.to_path_buf(),
            error,
        };
        let mut child = Command::new(worker_exe)
            .arg("worker")
            .arg("--shard-json")
            .arg("-")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(io_err)?;
        // Write the spec and close stdin so the worker sees EOF.  The
        // worker's first act is draining stdin, so this cannot deadlock
        // against its (not yet produced) output.
        use std::io::Write as _;
        let mut stdin = child.stdin.take().expect("stdin was piped");
        if let Err(error) = stdin.write_all(shard.to_json().as_bytes()) {
            // A broken pipe means the worker died before draining stdin
            // (wrong binary, early usage error).  Reap it — no zombie —
            // and surface its stderr, which explains the death better
            // than the pipe error does.
            drop(stdin);
            return match child.wait_with_output() {
                Ok(output) if !output.status.success() => Err(BatchError::Worker {
                    code: output.status.code(),
                    stderr: String::from_utf8_lossy(&output.stderr).trim().to_string(),
                }),
                _ => Err(io_err(error)),
            };
        }
        drop(stdin);
        Ok(child)
    };
    // Spawn everything up front; collect in shard order afterwards.
    let children: Vec<Result<Child, BatchError>> = shards.iter().map(spawn).collect();
    let mut reports = Vec::with_capacity(shards.len());
    let mut first_error = None;
    for child in children {
        let outcome = child.and_then(|child| {
            let output = child.wait_with_output().map_err(|error| BatchError::Io {
                path: worker_exe.to_path_buf(),
                error,
            })?;
            if !output.status.success() {
                return Err(BatchError::Worker {
                    code: output.status.code(),
                    stderr: String::from_utf8_lossy(&output.stderr).trim().to_string(),
                });
            }
            BatchReport::from_json(&String::from_utf8_lossy(&output.stdout))
        });
        // Even on error, keep draining the remaining children so none is
        // left running (wait_with_output reaps each one).
        match outcome {
            Ok(report) => reports.push(report),
            Err(err) if first_error.is_none() => first_error = Some(err),
            Err(_) => {}
        }
    }
    match first_error {
        Some(err) => Err(err),
        None => Ok(reports),
    }
}

/// One program's slice of a [`BatchReport`]: its per-configuration report,
/// its structural fingerprint (the [`spec_ir::fingerprint`] value the
/// bundle checksum folds over), and the leak verdict derived from the
/// [`VERDICT_LABEL`] row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramVerdict {
    /// `true` iff the program has a secret-indexed access that is not
    /// provably timing-neutral under the full speculative configuration.
    pub leak: bool,
    /// The structural fingerprint of the analysed program.
    pub fingerprint: Fingerprint,
    /// The program's labelled (timing-stripped) report.
    pub report: Report,
}

impl ProgramVerdict {
    /// Derives the leak verdict from the report's [`VERDICT_LABEL`] row —
    /// the one place the "leaks iff `unsafe_secret_accesses > 0` under the
    /// full speculative configuration" rule lives.
    pub fn from_report(report: Report, fingerprint: Fingerprint) -> Self {
        let leak = report
            .rows
            .iter()
            .find(|row| row.label == VERDICT_LABEL)
            .is_some_and(|row| row.unsafe_secret_accesses > 0);
        Self {
            leak,
            fingerprint,
            report,
        }
    }
}

/// The deterministic merged report of a batch scan: one
/// [`ProgramVerdict`] per program, in panel order, under one panel, with
/// the [`BundleStamp`] placing the covered programs inside the full
/// bundle.
///
/// Equal panels over equal programs produce equal reports (`PartialEq`,
/// and bit-identical [`BatchReport::to_json`]) regardless of sharding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// The panel every program was analysed under.
    pub panel: PanelSpec,
    /// The slice's place in the full bundle; `None` for unstamped reports
    /// (hand-rolled worker shards), which merge without verification.
    pub stamp: Option<BundleStamp>,
    /// Per-program results, in panel (bundle) order.
    pub programs: Vec<ProgramVerdict>,
}

impl BatchReport {
    /// Combines shard reports into the **complete** bundle report,
    /// verifying — when the shards are stamped, which everything this
    /// workspace emits is — that they are compatible slices of one bundle
    /// and that together they cover it exactly.  This is the cross-machine
    /// fan-in behind `specan merge`: it refuses to fabricate a "green"
    /// merged artifact out of mismatched, overlapping or incomplete
    /// slices.
    ///
    /// # Errors
    ///
    /// Everything [`BatchReport::merge_slices`] raises, plus
    /// [`BatchError::IncompleteBundle`] when the (stamped) slices do not
    /// cover the whole bundle.
    pub fn merge(shards: impl IntoIterator<Item = BatchReport>) -> Result<Self, BatchError> {
        let merged = Self::merge_slices(shards)?;
        if let Some(stamp) = merged.stamp {
            if stamp.start != 0 || merged.programs.len() != stamp.total {
                return Err(BatchError::IncompleteBundle {
                    covered: merged.programs.len(),
                    total: stamp.total,
                });
            }
        }
        Ok(merged)
    }

    /// Combines shard reports into one contiguous slice report — the
    /// relaxed fan-in [`run_bundle_slice`] uses for one machine's share of
    /// a `--shard K/N` matrix, where full coverage is someone else's job.
    ///
    /// Stamped inputs are sorted by their bundle position and verified:
    /// same panel, same checksum and total, contiguous non-overlapping
    /// coverage; when the result happens to cover the whole bundle, the
    /// checksum is recomputed from the merged program fingerprints and
    /// compared against the claim.  Unstamped inputs are concatenated in
    /// input order, with only the panel and duplicate checks of old.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Merge`] for an empty input,
    /// [`BatchError::PanelMismatch`]/[`BatchError::StampMismatch`] for
    /// incompatible shards, [`BatchError::OverlappingShards`] when two
    /// slices cover the same bundle position, a gap inside the supplied
    /// slices as [`BatchError::IncompleteBundle`],
    /// [`BatchError::ChecksumMismatch`] when a complete merge does not
    /// reproduce the claimed checksum, and
    /// [`BatchError::DuplicateProgram`] / duplicate-label
    /// [`BatchError::Merge`] for ambiguous contents.
    pub fn merge_slices(shards: impl IntoIterator<Item = BatchReport>) -> Result<Self, BatchError> {
        let mut shards: Vec<BatchReport> = shards.into_iter().collect();
        let first = shards.first().ok_or(BatchError::Merge(MergeError::Empty))?;
        let panel = first.panel;
        let reference = first.stamp;
        for shard in &shards {
            if shard.panel != panel {
                return Err(BatchError::PanelMismatch);
            }
            match (shard.stamp, reference) {
                (Some(stamp), Some(reference))
                    if stamp.checksum == reference.checksum && stamp.total == reference.total => {}
                (None, None) => {}
                _ => return Err(BatchError::StampMismatch),
            }
        }
        let merged_stamp = match reference {
            Some(reference) => {
                // Slices in bundle order; verify they tile without overlap
                // or gap.  (Empty slices are legal anywhere their start
                // matches the running position.)
                shards.sort_by_key(|shard| shard.stamp.expect("checked stamped").start);
                let covered: usize = shards.iter().map(|shard| shard.programs.len()).sum();
                // Program-free slices cover nothing, so they play no part
                // in the tiling walk — wherever their start happens to sit
                // relative to the populated slices (a legal empty slice of
                // a small bundle can share a start with a populated one).
                let start = shards
                    .iter()
                    .find(|shard| !shard.programs.is_empty())
                    .map(|shard| shard.stamp.expect("checked stamped").start)
                    .unwrap_or(0);
                let mut position = start;
                for shard in &shards {
                    if shard.programs.is_empty() {
                        continue;
                    }
                    let stamp = shard.stamp.expect("checked stamped");
                    if stamp.start < position {
                        return Err(BatchError::OverlappingShards { index: stamp.start });
                    }
                    if stamp.start > position {
                        return Err(BatchError::IncompleteBundle {
                            covered,
                            total: reference.total,
                        });
                    }
                    position += shard.programs.len();
                }
                if position > reference.total {
                    return Err(BatchError::StampMismatch);
                }
                Some(BundleStamp {
                    checksum: reference.checksum,
                    total: reference.total,
                    start,
                })
            }
            None => None,
        };
        // Absorb every shard — the first included — through the duplicate
        // checks: a parsed foreign artifact may carry internal duplicates.
        let mut merged = BatchReport {
            panel,
            stamp: merged_stamp,
            programs: Vec::new(),
        };
        for shard in shards {
            for verdict in shard.programs {
                if merged
                    .programs
                    .iter()
                    .any(|p| p.report.program == verdict.report.program)
                {
                    return Err(BatchError::DuplicateProgram {
                        name: verdict.report.program,
                    });
                }
                for (i, row) in verdict.report.rows.iter().enumerate() {
                    if verdict.report.rows[..i]
                        .iter()
                        .any(|r| r.label == row.label)
                    {
                        return Err(BatchError::Merge(MergeError::DuplicateLabel {
                            label: row.label.clone(),
                        }));
                    }
                }
                merged.programs.push(verdict);
            }
        }
        if let Some(stamp) = merged.stamp {
            if stamp.start == 0 && merged.programs.len() == stamp.total {
                // A complete merge must reproduce the claimed checksum from
                // the verdicts it actually absorbed.
                let recomputed =
                    panel_checksum(panel, merged.programs.iter().map(|p| p.fingerprint));
                if recomputed != stamp.checksum {
                    return Err(BatchError::ChecksumMismatch);
                }
            }
        }
        Ok(merged)
    }

    /// Number of leaking programs.
    pub fn leak_count(&self) -> usize {
        self.programs.iter().filter(|p| p.leak).count()
    }

    /// `true` iff at least one program leaks — the scan's exit-1 condition.
    pub fn any_leak(&self) -> bool {
        self.programs.iter().any(|p| p.leak)
    }

    /// Serializes the report.  The output contains only deterministic
    /// fields (no wall-clock times), so equal panels serialize to equal
    /// bytes and shard outputs can be merged, cached and diffed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"panel\": {},\n", self.panel.to_json()));
        if let Some(stamp) = self.stamp {
            out.push_str(&format!("  \"bundle\": {},\n", stamp.to_json()));
        }
        out.push_str(&format!("  \"leaks\": {},\n", self.leak_count()));
        out.push_str("  \"programs\": [\n");
        for (i, verdict) in self.programs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"program\": {},\n",
                json::string(&verdict.report.program)
            ));
            out.push_str(&format!(
                "      \"fingerprint\": {},\n",
                json::string(&verdict.fingerprint.to_hex())
            ));
            out.push_str(&format!("      \"leak\": {},\n", verdict.leak));
            out.push_str("      \"runs\": [\n");
            for (j, row) in verdict.report.rows.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"label\": {}, ", json::string(&row.label)));
                out.push_str(&format!("\"accesses\": {}, ", row.accesses));
                out.push_str(&format!("\"must_hits\": {}, ", row.must_hits));
                out.push_str(&format!("\"misses\": {}, ", row.misses));
                out.push_str(&format!(
                    "\"speculative_misses\": {}, ",
                    row.speculative_misses
                ));
                out.push_str(&format!("\"secret_accesses\": {}, ", row.secret_accesses));
                out.push_str(&format!(
                    "\"unsafe_secret_accesses\": {}, ",
                    row.unsafe_secret_accesses
                ));
                out.push_str(&format!(
                    "\"speculated_branches\": {}, ",
                    row.speculated_branches
                ));
                out.push_str(&format!("\"iterations\": {}, ", row.iterations));
                out.push_str(&format!("\"rounds\": {}", row.rounds));
                out.push_str(if j + 1 == verdict.report.rows.len() {
                    "}\n"
                } else {
                    "},\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 == self.programs.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }

    /// Parses a report back from [`BatchReport::to_json`] output (e.g. a
    /// worker subprocess's stdout).
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::Json`] for invalid JSON and
    /// [`BatchError::MalformedReport`] for a structurally wrong document.
    pub fn from_json(input: &str) -> Result<Self, BatchError> {
        let value = JsonValue::parse(input)?;
        let panel = PanelSpec::from_json(
            value
                .get("panel")
                .ok_or_else(|| BatchError::malformed("report panel"))?,
        )?;
        let stamp = value
            .get("bundle")
            .map(BundleStamp::from_json)
            .transpose()?;
        let mut programs = Vec::new();
        for entry in value
            .get("programs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| BatchError::malformed("report programs"))?
        {
            let program = entry
                .get("program")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| BatchError::malformed("program name"))?
                .to_string();
            let fingerprint = entry
                .get("fingerprint")
                .and_then(JsonValue::as_str)
                .and_then(Fingerprint::from_hex)
                .ok_or_else(|| BatchError::malformed("program fingerprint"))?;
            let leak = entry
                .get("leak")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| BatchError::malformed("program leak flag"))?;
            let mut rows = Vec::new();
            for run in entry
                .get("runs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| BatchError::malformed("program runs"))?
            {
                rows.push(parse_row(run)?);
            }
            programs.push(ProgramVerdict {
                leak,
                fingerprint,
                report: Report {
                    program,
                    elapsed: None,
                    cache: None,
                    rows,
                },
            });
        }
        Ok(BatchReport {
            panel,
            stamp,
            programs,
        })
    }
}

fn parse_row(run: &JsonValue) -> Result<ReportRow, BatchError> {
    let label = run
        .get("label")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| BatchError::malformed("run label"))?
        .to_string();
    let raw = |key: &str| -> Result<u64, BatchError> {
        run.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| BatchError::malformed(&format!("run {key}")))
    };
    // Checked narrowing: an out-of-range count is corruption and must fail
    // loudly, not wrap into a plausible-looking small number.
    let count = |key: &str| -> Result<usize, BatchError> {
        raw(key)?
            .try_into()
            .map_err(|_| BatchError::malformed(&format!("run {key}")))
    };
    Ok(ReportRow {
        label,
        accesses: count("accesses")?,
        must_hits: count("must_hits")?,
        misses: count("misses")?,
        speculative_misses: count("speculative_misses")?,
        secret_accesses: count("secret_accesses")?,
        unsafe_secret_accesses: count("unsafe_secret_accesses")?,
        speculated_branches: count("speculated_branches")?,
        iterations: raw("iterations")?,
        rounds: raw("rounds")?
            .try_into()
            .map_err(|_| BatchError::malformed("run rounds"))?,
        time: Duration::ZERO,
    })
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scanned {} program(s), {} leaking",
            self.programs.len(),
            self.leak_count()
        )?;
        for verdict in &self.programs {
            writeln!(
                f,
                "\n`{}`: {}",
                verdict.report.program,
                if verdict.leak { "LEAK" } else { "leak-free" }
            )?;
            writeln!(
                f,
                "{:<20} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7}",
                "configuration", "accesses", "must-hit", "misses", "sp-miss", "secret", "unsafe"
            )?;
            for row in &verdict.report.rows {
                writeln!(
                    f,
                    "{:<20} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7}",
                    row.label,
                    row.accesses,
                    row.must_hits,
                    row.misses,
                    row.speculative_misses,
                    row.secret_accesses,
                    row.unsafe_secret_accesses
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SCRATCH_ID: AtomicUsize = AtomicUsize::new(0);

    /// A scratch directory holding the given `(file_stem, program_name)`
    /// pairs as minimal leak-free programs; removed on drop.
    struct Scratch {
        dir: PathBuf,
        files: Vec<PathBuf>,
    }

    impl Scratch {
        fn new(programs: &[(&str, &str)]) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "spec-batch-test-{}-{}",
                std::process::id(),
                SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let files = programs
                .iter()
                .map(|(stem, name)| {
                    let path = dir.join(format!("{stem}.spec"));
                    std::fs::write(
                        &path,
                        format!(
                            "program {name}\nregion t 64\nblock main entry:\n  load t[0]\n  ret\n"
                        ),
                    )
                    .unwrap();
                    path
                })
                .collect();
            Self { dir, files }
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn leak_panel() -> PanelSpec {
        PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 8,
        }
    }

    #[test]
    fn plan_shards_is_contiguous_near_even_and_complete() {
        for n in 0..20 {
            for jobs in 1..8 {
                let ranges = plan_shards(n, jobs);
                assert!(ranges.len() <= jobs.min(n.max(1)));
                let mut covered = 0;
                let mut sizes = Vec::new();
                for range in &ranges {
                    assert_eq!(range.start, covered, "shards must be contiguous");
                    covered = range.end;
                    sizes.push(range.len());
                }
                assert_eq!(covered, n, "every program must land in a shard");
                if let (Some(max), Some(min)) = (sizes.iter().max(), sizes.iter().min()) {
                    assert!(max - min <= 1, "shards must be near-even: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn shard_slice_allows_more_machines_than_programs() {
        // 3 items over 5 machines: the first three slices hold one each,
        // the rest are legally empty.
        let sizes: Vec<usize> = (1..=5).map(|k| shard_slice(3, k, 5).len()).collect();
        assert_eq!(sizes, [1, 1, 1, 0, 0]);
        assert_eq!(shard_slice(3, 4, 5), 3..3);
        // Slices tile the input contiguously.
        let mut covered = 0;
        for k in 1..=5 {
            let range = shard_slice(3, k, 5);
            assert_eq!(range.start, covered);
            covered = range.end;
        }
        assert_eq!(covered, 3);
    }

    #[test]
    fn shard_spec_round_trips_through_json() {
        let spec = ShardSpec {
            programs: vec![
                PathBuf::from("a \"quoted\" path.spec"),
                PathBuf::from("dir/b.spec"),
            ],
            panel: PanelSpec {
                kind: PanelKind::Comparison,
                cache_lines: 128,
            },
            stamp: None,
        };
        assert_eq!(ShardSpec::from_json(&spec.to_json()).unwrap(), spec);
        // A stamped shard round-trips its bundle placement too.
        let stamped = ShardSpec {
            stamp: Some(BundleStamp {
                checksum: Fingerprint(0xdead_beef),
                total: 7,
                start: 3,
            }),
            ..spec
        };
        assert_eq!(ShardSpec::from_json(&stamped.to_json()).unwrap(), stamped);
        assert!(ShardSpec::from_json("{\"programs\": 3}").is_err());
        assert!(ShardSpec::from_json("not json").is_err());
    }

    #[test]
    fn discovery_sorts_and_recurses() {
        let scratch = Scratch::new(&[("b", "beta"), ("a", "alpha")]);
        let nested = scratch.dir.join("sub");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(
            nested.join("c.spec"),
            "program gamma\nregion t 64\nblock main entry:\n  load t[0]\n  ret\n",
        )
        .unwrap();
        std::fs::write(nested.join("ignored.txt"), "not a program").unwrap();
        let found = discover_programs(std::slice::from_ref(&scratch.dir)).unwrap();
        let stems: Vec<String> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(stems, ["a.spec", "b.spec", "c.spec"]);
        // Passing a file and the directory containing it dedups.
        let again = discover_programs(&[scratch.files[0].clone(), scratch.dir.clone()]).unwrap();
        assert_eq!(again.len(), 3);
        assert!(matches!(
            discover_programs(&[]),
            Err(BatchError::NoPrograms)
        ));
    }

    #[cfg(unix)]
    #[test]
    fn discovery_rejects_non_utf8_paths() {
        use std::os::unix::ffi::OsStrExt as _;
        let scratch = Scratch::new(&[("ok", "ok")]);
        let bad_name = std::ffi::OsStr::from_bytes(b"bad\xff.spec");
        std::fs::write(
            scratch.dir.join(bad_name),
            "program bad\nregion t 64\nblock main entry:\n  load t[0]\n  ret\n",
        )
        .unwrap();
        // The lossy path would break the worker protocol; fail up front.
        assert!(matches!(
            discover_programs(std::slice::from_ref(&scratch.dir)),
            Err(BatchError::NonUtf8Path { .. })
        ));
    }

    #[cfg(unix)]
    #[test]
    fn discovery_survives_directory_symlink_loops() {
        let scratch = Scratch::new(&[("a", "alpha")]);
        let nested = scratch.dir.join("sub");
        std::fs::create_dir_all(&nested).unwrap();
        // `sub/back` points at the scratch root: a cycle.
        std::os::unix::fs::symlink(&scratch.dir, nested.join("back")).unwrap();
        let found = discover_programs(std::slice::from_ref(&scratch.dir)).unwrap();
        // The loop terminates and the real file is found exactly once.
        assert_eq!(found.len(), 1);
        assert!(found[0].ends_with("a.spec"));
    }

    #[test]
    fn merge_keeps_shard_order_and_rejects_duplicates() {
        let scratch = Scratch::new(&[("a", "alpha"), ("b", "beta"), ("c", "gamma")]);
        let shard = |range: std::ops::Range<usize>| ShardSpec {
            programs: scratch.files[range].to_vec(),
            panel: leak_panel(),
            stamp: None,
        };
        let first = run_shard(&shard(0..2)).unwrap();
        let second = run_shard(&shard(2..3)).unwrap();
        let merged = BatchReport::merge([first.clone(), second.clone()]).unwrap();
        let names: Vec<&str> = merged
            .programs
            .iter()
            .map(|p| p.report.program.as_str())
            .collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        // A shard showing up twice duplicates its programs.
        assert!(matches!(
            BatchReport::merge([first.clone(), first.clone()]),
            Err(BatchError::DuplicateProgram { name }) if name == "alpha"
        ));
        // A duplicate *inside* the first shard (e.g. a corrupted foreign
        // artifact fed through from_json) is just as ambiguous.
        let mut corrupt = first.clone();
        corrupt.programs.push(corrupt.programs[0].clone());
        assert!(matches!(
            BatchReport::merge([corrupt]),
            Err(BatchError::DuplicateProgram { name }) if name == "alpha"
        ));
        // Shards from different panels don't merge.
        let mut foreign = second;
        foreign.panel.cache_lines = 16;
        assert!(matches!(
            BatchReport::merge([first, foreign]),
            Err(BatchError::PanelMismatch)
        ));
        assert!(matches!(
            BatchReport::merge(std::iter::empty()),
            Err(BatchError::Merge(MergeError::Empty))
        ));
    }

    #[test]
    fn duplicate_program_names_within_a_shard_are_rejected() {
        let scratch = Scratch::new(&[("one", "same"), ("two", "same")]);
        let result = run_shard(&ShardSpec {
            programs: scratch.files.clone(),
            panel: leak_panel(),
            stamp: None,
        });
        assert!(matches!(
            result,
            Err(BatchError::DuplicateProgram { name }) if name == "same"
        ));
    }

    #[test]
    fn batch_report_json_round_trips() {
        let scratch = Scratch::new(&[("x", "with \"quotes\""), ("y", "plain")]);
        let report = run_shard(&ShardSpec {
            programs: scratch.files.clone(),
            panel: PanelSpec {
                kind: PanelKind::Comparison,
                cache_lines: 8,
            },
            stamp: None,
        })
        .unwrap();
        let json = report.to_json();
        let parsed = BatchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        // Serialization is deterministic: re-emitting the parse is identical.
        assert_eq!(parsed.to_json(), json);
        assert!(BatchReport::from_json("{\"panel\": {}}").is_err());
    }

    #[test]
    fn every_report_row_field_survives_the_worker_protocol() {
        // A synthetic row with pairwise-distinct values pins each field of
        // the serialize/parse pair: a field dropped from (or miswired in)
        // BatchReport::to_json/parse_row breaks this equality even though
        // both sharded execution paths would still agree with each other.
        let row = ReportRow {
            label: "pin".to_string(),
            accesses: 1,
            must_hits: 2,
            misses: 3,
            speculative_misses: 4,
            secret_accesses: 5,
            unsafe_secret_accesses: 6,
            speculated_branches: 7,
            iterations: 8,
            rounds: 9,
            time: std::time::Duration::ZERO,
        };
        let report = BatchReport {
            panel: leak_panel(),
            stamp: Some(BundleStamp {
                checksum: Fingerprint(11),
                total: 12,
                start: 10,
            }),
            programs: vec![ProgramVerdict {
                leak: true,
                fingerprint: Fingerprint(13),
                report: Report {
                    program: "pinned".to_string(),
                    elapsed: None,
                    cache: None,
                    rows: vec![row],
                },
            }],
        };
        assert_eq!(BatchReport::from_json(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn sharded_bundle_is_bit_identical_to_in_order_run() {
        let scratch = Scratch::new(&[
            ("a", "alpha"),
            ("b", "beta"),
            ("c", "gamma"),
            ("d", "delta"),
            ("e", "epsilon"),
        ]);
        let reference = run_bundle(&scratch.files, leak_panel(), 1, &ExecMode::InProcess).unwrap();
        for jobs in [2, 3, 5, 8] {
            let sharded =
                run_bundle(&scratch.files, leak_panel(), jobs, &ExecMode::InProcess).unwrap();
            assert_eq!(sharded, reference, "jobs={jobs} diverged");
            assert_eq!(sharded.to_json(), reference.to_json());
        }
    }

    #[test]
    fn stamped_slices_merge_back_to_the_unsharded_report() {
        let scratch = Scratch::new(&[("a", "alpha"), ("b", "beta"), ("c", "gamma")]);
        let full = run_bundle(&scratch.files, leak_panel(), 2, &ExecMode::InProcess).unwrap();
        let stamp = full.stamp.expect("bundle runs are stamped");
        assert_eq!((stamp.start, stamp.total), (0, 3));
        let slice = |range: std::ops::Range<usize>| {
            run_bundle_slice(&scratch.files, range, leak_panel(), 1, &ExecMode::InProcess).unwrap()
        };
        let first = slice(0..2);
        let second = slice(2..3);
        assert_eq!(first.stamp.unwrap().start, 0);
        assert_eq!(second.stamp.unwrap().start, 2);
        assert_eq!(second.stamp.unwrap().checksum, stamp.checksum);
        // Order-independent fan-in, byte-identical to the unsharded run.
        let merged = BatchReport::merge([second.clone(), first.clone()]).unwrap();
        assert_eq!(merged, full);
        assert_eq!(merged.to_json(), full.to_json());
        // The same holds through the JSON artifacts a CI fleet exchanges.
        let merged = BatchReport::merge([
            BatchReport::from_json(&first.to_json()).unwrap(),
            BatchReport::from_json(&second.to_json()).unwrap(),
        ])
        .unwrap();
        assert_eq!(merged.to_json(), full.to_json());
        // An empty slice (more machines than programs) merges in silently —
        // wherever its start sits, including one shared with a populated
        // slice (the sort may then place it between populated slices).
        let empty = slice(3..3);
        assert!(empty.programs.is_empty());
        let merged = BatchReport::merge([empty, first.clone(), second.clone()]).unwrap();
        assert_eq!(merged, full);
        let zero_width = slice(0..0);
        assert_eq!(zero_width.stamp.unwrap().start, 0);
        let merged = BatchReport::merge([first, zero_width, second]).unwrap();
        assert_eq!(merged, full);
    }

    #[test]
    fn merge_rejects_overlapping_incomplete_and_mismatched_slices() {
        let scratch = Scratch::new(&[("a", "alpha"), ("b", "beta"), ("c", "gamma")]);
        let slice = |range: std::ops::Range<usize>| {
            run_bundle_slice(&scratch.files, range, leak_panel(), 1, &ExecMode::InProcess).unwrap()
        };
        let first = slice(0..2);
        let second = slice(2..3);

        // The same slice twice covers bundle positions twice.
        assert!(matches!(
            BatchReport::merge([first.clone(), first.clone()]),
            Err(BatchError::OverlappingShards { index: 0 })
        ));
        // A missing slice (a machine's artifact never arrived) is refused.
        assert!(matches!(
            BatchReport::merge([first.clone()]),
            Err(BatchError::IncompleteBundle {
                covered: 2,
                total: 3
            })
        ));
        // So is a gap *between* the supplied slices.
        assert!(matches!(
            BatchReport::merge([slice(0..1), second.clone()]),
            Err(BatchError::IncompleteBundle {
                covered: 2,
                total: 3
            })
        ));
        // A slice of a *different* bundle (one program structurally edited)
        // cannot sneak in: its full-bundle checksum differs.  (Fingerprints
        // are name-free, so the edit must be structural, not a rename.)
        let other = Scratch::new(&[("a", "alpha"), ("b", "beta"), ("c", "gamma")]);
        std::fs::write(
            &other.files[2],
            "program gamma\nregion t 64\nblock main entry:\n  load t[0]\n  load t[0]\n  ret\n",
        )
        .unwrap();
        let foreign =
            run_bundle_slice(&other.files, 2..3, leak_panel(), 1, &ExecMode::InProcess).unwrap();
        assert!(matches!(
            BatchReport::merge([first.clone(), foreign]),
            Err(BatchError::StampMismatch)
        ));
        // Mixing stamped and unstamped reports is ambiguous, not legacy.
        let mut unstamped = second.clone();
        unstamped.stamp = None;
        assert!(matches!(
            BatchReport::merge([first.clone(), unstamped]),
            Err(BatchError::StampMismatch)
        ));
        // Tampered contents under a matching stamp fail the recompute.
        let mut tampered = second.clone();
        tampered.programs[0].fingerprint = Fingerprint(0x1234);
        assert!(matches!(
            BatchReport::merge([first.clone(), tampered]),
            Err(BatchError::ChecksumMismatch)
        ));
        // The honest pair still merges after all those rejections.
        assert!(BatchReport::merge([first, second]).is_ok());
    }

    #[test]
    fn merge_rejects_duplicate_labels_within_a_slice() {
        let row = |label: &str| ReportRow {
            label: label.to_string(),
            accesses: 1,
            must_hits: 1,
            misses: 0,
            speculative_misses: 0,
            secret_accesses: 0,
            unsafe_secret_accesses: 0,
            speculated_branches: 0,
            iterations: 1,
            rounds: 1,
            time: Duration::ZERO,
        };
        // A foreign artifact whose rows duplicate a configuration label is
        // ambiguous — which "speculative" row is the verdict's?
        let doubled = BatchReport {
            panel: leak_panel(),
            stamp: None,
            programs: vec![ProgramVerdict {
                leak: false,
                fingerprint: Fingerprint(1),
                report: Report {
                    program: "dup".to_string(),
                    elapsed: None,
                    cache: None,
                    rows: vec![row("speculative"), row("speculative")],
                },
            }],
        };
        assert!(matches!(
            BatchReport::merge([doubled]),
            Err(BatchError::Merge(MergeError::DuplicateLabel { label })) if label == "speculative"
        ));
    }

    #[test]
    fn invalid_panels_and_unreadable_programs_error_cleanly() {
        let panel = PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 0,
        };
        assert!(matches!(panel.configs(), Err(BatchError::InvalidPanel(_))));
        let missing = ShardSpec {
            programs: vec![PathBuf::from("/nonexistent/x.spec")],
            panel: leak_panel(),
            stamp: None,
        };
        assert!(matches!(run_shard(&missing), Err(BatchError::Io { .. })));
        let scratch = Scratch::new(&[("ok", "ok")]);
        std::fs::write(scratch.dir.join("bad.spec"), "this is not a program").unwrap();
        let bad = ShardSpec {
            programs: vec![scratch.dir.join("bad.spec")],
            panel: leak_panel(),
            stamp: None,
        };
        assert!(matches!(run_shard(&bad), Err(BatchError::Parse { .. })));
    }
}
