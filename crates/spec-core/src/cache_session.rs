//! The one caller-facing entry point of the tiered session caches.
//!
//! [`crate::incremental::SessionCache`] grew organically into eight public
//! methods that every holder — the analysis service, `specan analyze
//! --incremental`, `specan scan --session-dir` — sequenced by hand:
//! lookup, compare names, prepare, install, persist, enforce.  This module
//! replaces that sprawl with a single acquire/commit protocol wrapped
//! around the whole tier stack, and makes the warm path **lock-free**:
//!
//! ```text
//!   L0  per-worker thread-local LRU of pinned Arc handles   (no lock)
//!   L1  the shared SessionCache entry table                 (one mutex)
//!   L2  the on-disk PreparedStore artifact tier             (under L1)
//! ```
//!
//! [`CacheSession::acquire`] walks the tiers top-down and returns a
//! [`CacheOutcome`]: a hit hands back the prepared session (tagged with
//! the tier that answered), a miss hands back a [`PrepareGuard`] that
//! holds **no lock** — the expensive [`Analyzer::prepare`] provably runs
//! outside any critical section, and [`PrepareGuard::commit`] installs the
//! result under the lock afterwards.  Misuse the old surface permitted
//! (installing without looking up, forgetting the name check, enforcing
//! the budget before persisting) is unrepresentable here.
//!
//! # The L0 tier and generation invalidation
//!
//! Each worker thread keeps a small LRU of `(program name, structural
//! fingerprint) → Arc<PreparedProgram>` handles per session front,
//! following the two-tier decision-cache shape of Ferrous-DNS: reads
//! touch thread-local state only, and a monotonic **generation counter**
//! (bumped by the `SessionCache` on every entry replacement, budget
//! eviction and removal) invalidates every worker's L0 wholesale on the
//! next acquire — no cross-thread coordination, no per-entry messaging.
//!
//! Generations bound *memory*, not correctness: analysis results are pure
//! functions of the program, so even a handle the L1 already evicted
//! answers byte-identically.  Name-correctness never rests on the counter
//! either — a name-sensitive acquire compares the candidate's program
//! against the requested one directly, every time, on every tier (the
//! same rule the store tier applies at load).  What a stale generation
//! *could* cost is only a pinned `Arc` outliving its eviction, and the
//! bump reclaims exactly that.
//!
//! # Accounting
//!
//! Every acquire lands in exactly one counter — `l0_hits`, `l1_hits`,
//! `store_hits`, `prepares` (committed guards) or `abandoned` (dropped
//! guards) — so at quiescence [`AcquireStats::reconciles`] holds:
//! `l0 + l1 + store + prepares + abandoned == acquires`.  The property
//! suite in `tests/cache_session.rs` pins both that ledger and the
//! cross-worker staleness guarantee.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use spec_ir::fingerprint::{program_fingerprint, Fingerprint};
use spec_ir::Program;
use spec_telemetry::{Histogram, Registry};

use crate::incremental::{SessionCache, SessionStats, SessionTier};
use crate::session::{Analyzer, CacheStats, PreparedProgram};

/// How many prepared handles one worker thread pins per session front.
/// Small on purpose: the L0 exists to strip the lock from the steady-state
/// working set of a worker, not to mirror the L1 — and every slot pins a
/// whole prepared session against eviction until the next generation bump.
const L0_CAPACITY: usize = 16;

/// Process-unique ids so two `CacheSession`s living on one thread (tests,
/// nested tools) never read each other's L0 entries.
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This worker's L0 tiers, keyed by session-front id.
    static L0_TIERS: RefCell<HashMap<u64, L0Tier>> = RefCell::new(HashMap::new());
}

/// One thread's lock-free cache over one session front.
struct L0Tier {
    /// The invalidation generation every held entry was seeded under.
    generation: u64,
    /// LRU order: most recently used last.
    entries: Vec<L0Entry>,
}

struct L0Entry {
    fingerprint: Fingerprint,
    prepared: Arc<PreparedProgram>,
}

/// Locks a mutex, recovering from poisoning.  A thread that panicked while
/// holding a session lock leaves plain data (maps and counters) behind, and
/// every consumer of that data re-validates what matters — fingerprints,
/// program equality — on use; abandoning the whole service over a poisoned
/// flag would turn one lost request into a dead pool.  Worst case the
/// survivors re-prepare cold, which is slow and correct.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lifetime acquire counters of one [`CacheSession`] — which tier answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AcquireStats {
    /// Total [`CacheSession::acquire`]/[`CacheSession::acquire_structural`]
    /// calls.
    pub acquires: u64,
    /// Acquires answered from the calling thread's L0, without the lock.
    pub l0_hits: u64,
    /// Acquires answered by the shared in-memory L1 under the lock.
    pub l1_hits: u64,
    /// Acquires answered by deserializing from the on-disk store tier.
    pub store_hits: u64,
    /// Guards committed: cold (or renamed) preparations installed.
    pub prepares: u64,
    /// Guards dropped uncommitted (an error between acquire and commit).
    pub abandoned: u64,
}

impl AcquireStats {
    /// The ledger invariant: every acquire is accounted to exactly one
    /// tier or guard outcome.  Holds whenever no [`PrepareGuard`] is
    /// currently in flight.
    pub fn reconciles(&self) -> bool {
        self.l0_hits + self.l1_hits + self.store_hits + self.prepares + self.abandoned
            == self.acquires
    }
}

/// What [`CacheSession::acquire`] resolved, tier-tagged.
///
/// The three hit arms are interchangeable for correctness — the handle
/// answers byte-identically wherever it came from — and differ only in
/// cost and accounting.  The miss arm carries the obligation: prepare
/// (outside any lock) and [`PrepareGuard::commit`], or drop the guard to
/// abandon the request.
pub enum CacheOutcome<'a> {
    /// Served from the calling thread's L0 — no lock was taken.
    L0Hit(Arc<PreparedProgram>),
    /// Served warm from the shared in-memory L1.
    WarmHit(Arc<PreparedProgram>),
    /// Deserialized from the on-disk artifact store (now resident in L1).
    StoreHit(Arc<PreparedProgram>),
    /// Nothing usable is cached: prepare cold and commit the result.
    NeedsPrepare(PrepareGuard<'a>),
}

impl CacheOutcome<'_> {
    /// The accounting tag of this outcome (`l0`, `warm`, `store`,
    /// `renamed`, `prepared`) — the vocabulary of the service log lines.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::L0Hit(_) => "l0",
            CacheOutcome::WarmHit(_) => "warm",
            CacheOutcome::StoreHit(_) => "store",
            CacheOutcome::NeedsPrepare(guard) if guard.renamed => "renamed",
            CacheOutcome::NeedsPrepare(_) => "prepared",
        }
    }
}

/// Per-tier acquire latency histograms, one series per answering tier.
/// Optional on a [`CacheSession`] — fronts without telemetry (one-shot
/// CLI runs, tests) record nothing and pay one relaxed pointer read.
///
/// `l0`/`l1`/`store` time the acquire probe itself; `cold` spans the whole
/// miss obligation — acquire through [`PrepareGuard::commit`] — so it
/// includes the preparation, which is the cost a cold request actually
/// pays.  Abandoned guards record nothing (there is no latency to a
/// request that failed before preparing).
pub struct TierTelemetry {
    l0: Histogram,
    l1: Histogram,
    store: Histogram,
    cold: Histogram,
}

impl TierTelemetry {
    /// Registers the `spec_cache_acquire_seconds{tier}` family on
    /// `registry` and returns the recording handles.
    pub fn registered(registry: &Registry) -> Self {
        let tier = |name: &'static str| {
            registry.histogram(
                "spec_cache_acquire_seconds",
                "Session acquire latency by answering tier (cold spans acquire through commit).",
                &[("tier", name)],
            )
        };
        Self {
            l0: tier("l0"),
            l1: tier("l1"),
            store: tier("store"),
            cold: tier("cold"),
        }
    }
}

/// The obligation half of a [`CacheOutcome::NeedsPrepare`]: proof that the
/// caller is *outside* every session lock, with [`PrepareGuard::commit`]
/// as the only way back in.  Dropping the guard without committing is
/// legal (the request failed before preparing) and counted as
/// [`AcquireStats::abandoned`].
pub struct PrepareGuard<'a> {
    session: &'a CacheSession,
    renamed: bool,
    committed: bool,
    /// When the acquire that produced this guard started — the cold-tier
    /// latency measures from here to the commit.
    started: Instant,
}

impl PrepareGuard<'_> {
    /// `true` when a structurally identical session was cached but its
    /// names differ from the requested program's — the caller asked for
    /// name-exact resolution, so it must re-prepare under the new names
    /// (the service logs these as `renamed` rather than `prepared`).
    pub fn renamed(&self) -> bool {
        self.renamed
    }

    /// Cold-prepares `program` with the session's analyzer — outside any
    /// lock — and commits the result.  The convenience path for callers
    /// with no analyzer of their own.
    pub fn prepare(self, program: &Program) -> Arc<PreparedProgram> {
        let prepared = Arc::new(self.session.inner.analyzer.prepare(program));
        self.commit(prepared)
    }

    /// Installs an externally prepared session into the shared cache
    /// (write-through to the store tier, budget enforced, L0 seeded) and
    /// returns the resident handle.  Last-writer-wins under races, exactly
    /// like the cache it fronts: concurrent preparations of one program
    /// are interchangeable.
    pub fn commit(mut self, prepared: Arc<PreparedProgram>) -> Arc<PreparedProgram> {
        self.committed = true;
        self.session.inner.prepares.fetch_add(1, Ordering::Relaxed);
        let installed = self.session.commit_prepared(prepared);
        if let Some(telemetry) = self.session.inner.telemetry.get() {
            telemetry.cold.record(self.started.elapsed());
        }
        installed
    }
}

impl Drop for PrepareGuard<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.session.inner.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct SessionFront {
    id: u64,
    cache: Mutex<SessionCache>,
    /// A clone of the cache's analyzer, so guard commits prepare without
    /// touching the lock.
    analyzer: Analyzer,
    /// The cache's invalidation generation, shared so acquires read it
    /// without the lock.
    generation: Arc<AtomicU64>,
    /// Builder-time facts of the wrapped cache, cached here so the
    /// accounting fast path never locks.
    has_store: bool,
    budget: Option<u64>,
    /// Per-tier acquire latency histograms, installed once by telemetry-
    /// carrying holders (the service); `get()` on the hot path is one
    /// relaxed load.
    telemetry: OnceLock<TierTelemetry>,
    acquires: AtomicU64,
    l0_hits: AtomicU64,
    l1_hits: AtomicU64,
    store_hits: AtomicU64,
    prepares: AtomicU64,
    abandoned: AtomicU64,
}

/// The single caller-facing handle over the L0/L1/store tier stack — see
/// the module docs for the protocol.  Cheap to clone (one `Arc`); all
/// methods take `&self` and the handle is `Sync`, so one session front is
/// shared across a whole worker pool.
#[derive(Clone)]
pub struct CacheSession {
    inner: Arc<SessionFront>,
}

impl CacheSession {
    /// Wraps `cache` — configured via its own builders (analyzer, byte
    /// budget, artifact store) — as a shared, lock-disciplined front.
    pub fn new(cache: SessionCache) -> Self {
        let analyzer = cache.analyzer().clone();
        let generation = cache.generation_handle();
        let has_store = cache.has_store();
        let budget = cache.budget();
        Self {
            inner: Arc::new(SessionFront {
                id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
                cache: Mutex::new(cache),
                analyzer,
                generation,
                has_store,
                budget,
                telemetry: OnceLock::new(),
                acquires: AtomicU64::new(0),
                l0_hits: AtomicU64::new(0),
                l1_hits: AtomicU64::new(0),
                store_hits: AtomicU64::new(0),
                prepares: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
            }),
        }
    }

    /// Installs per-tier latency histograms on this front (idempotent:
    /// the first install wins, later calls are ignored).  Fronts without
    /// telemetry record nothing.
    pub fn set_tier_telemetry(&self, telemetry: TierTelemetry) {
        let _ = self.inner.telemetry.set(telemetry);
    }

    /// Resolves `program` name-exactly: a hit requires the cached session's
    /// program to compare equal, names included, on every tier.  This is
    /// the tier for `analyze`-shaped output, which embeds region and block
    /// names the structural fingerprint deliberately ignores — a
    /// rename-only edit yields [`CacheOutcome::NeedsPrepare`] with
    /// [`PrepareGuard::renamed`] set instead of replaying stale names.
    pub fn acquire(&self, program: &Program) -> CacheOutcome<'_> {
        self.acquire_inner(program, true)
    }

    /// Resolves `program` by structural fingerprint under its program
    /// name, ignoring region/block renames — for name-insensitive outputs
    /// (`compare`, `scan` verdicts), which serialize identically across
    /// renames.
    pub fn acquire_structural(&self, program: &Program) -> CacheOutcome<'_> {
        self.acquire_inner(program, false)
    }

    fn acquire_inner(&self, program: &Program, name_exact: bool) -> CacheOutcome<'_> {
        let started = Instant::now();
        self.inner.acquires.fetch_add(1, Ordering::Relaxed);
        let fingerprint = program_fingerprint(program);
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(prepared) = self.l0_lookup(fingerprint, program, name_exact, generation) {
            self.inner.l0_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(telemetry) = self.inner.telemetry.get() {
                telemetry.l0.record(started.elapsed());
            }
            return CacheOutcome::L0Hit(prepared);
        }
        // L1, then the store, under the one lock.  The generation is read
        // back *inside* the critical section: bumps only happen under this
        // lock, so the value stamps exactly the state the handle came from.
        let (hit, stamped) = {
            let mut cache = relock(&self.inner.cache);
            (cache.lookup_tiered(program), cache.generation())
        };
        match hit {
            Some((prepared, tier)) => {
                if name_exact && prepared.program() != program {
                    return CacheOutcome::NeedsPrepare(PrepareGuard {
                        session: self,
                        renamed: true,
                        committed: false,
                        started,
                    });
                }
                self.l0_seed(fingerprint, prepared.clone(), stamped);
                match tier {
                    SessionTier::Memory => {
                        self.inner.l1_hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(telemetry) = self.inner.telemetry.get() {
                            telemetry.l1.record(started.elapsed());
                        }
                        CacheOutcome::WarmHit(prepared)
                    }
                    SessionTier::Store => {
                        self.inner.store_hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(telemetry) = self.inner.telemetry.get() {
                            telemetry.store.record(started.elapsed());
                        }
                        CacheOutcome::StoreHit(prepared)
                    }
                }
            }
            None => CacheOutcome::NeedsPrepare(PrepareGuard {
                session: self,
                renamed: false,
                committed: false,
                started,
            }),
        }
    }

    /// The calling thread's L0 probe.  `generation` was loaded before the
    /// probe; per-thread read coherence on the monotone counter guarantees
    /// it is never older than what this thread stored, so a mismatch means
    /// "invalidations happened" and the tier is cleared wholesale.
    fn l0_lookup(
        &self,
        fingerprint: Fingerprint,
        program: &Program,
        name_exact: bool,
        generation: u64,
    ) -> Option<Arc<PreparedProgram>> {
        L0_TIERS.with(|tiers| {
            let mut tiers = tiers.borrow_mut();
            let tier = tiers.get_mut(&self.inner.id)?;
            if tier.generation != generation {
                tier.entries.clear();
                tier.generation = generation;
                return None;
            }
            // Same key discipline as the L1: entries are per program name,
            // matched by structural fingerprint — plus, for name-exact
            // acquires, full program equality.  Correctness never leans on
            // the generation: the comparison is against the handle itself.
            let index = tier.entries.iter().position(|entry| {
                entry.fingerprint == fingerprint
                    && entry.prepared.program().name() == program.name()
                    && (!name_exact || entry.prepared.program() == program)
            })?;
            let entry = tier.entries.remove(index);
            let prepared = Arc::clone(&entry.prepared);
            tier.entries.push(entry);
            Some(prepared)
        })
    }

    /// Seeds the calling thread's L0 with a handle stamped at `stamped`
    /// (the generation read under the lock that produced it).  A tier
    /// already ahead of the stamp skips the seed — the handle may predate
    /// an invalidation it never saw; a tier behind it is cleared first.
    fn l0_seed(&self, fingerprint: Fingerprint, prepared: Arc<PreparedProgram>, stamped: u64) {
        L0_TIERS.with(|tiers| {
            let mut tiers = tiers.borrow_mut();
            let tier = tiers.entry(self.inner.id).or_insert_with(|| L0Tier {
                generation: stamped,
                entries: Vec::new(),
            });
            if tier.generation > stamped {
                return;
            }
            if tier.generation < stamped {
                tier.entries.clear();
                tier.generation = stamped;
            }
            let name = prepared.program().name();
            tier.entries
                .retain(|entry| entry.prepared.program().name() != name);
            if tier.entries.len() >= L0_CAPACITY {
                tier.entries.remove(0);
            }
            tier.entries.push(L0Entry {
                fingerprint,
                prepared,
            });
        });
    }

    fn commit_prepared(&self, prepared: Arc<PreparedProgram>) -> Arc<PreparedProgram> {
        let fingerprint = prepared.fingerprint();
        let (installed, stamped) = {
            let mut cache = relock(&self.inner.cache);
            // The stamp is read *before* the install: an install that
            // replaces an entry or evicts over budget bumps the generation,
            // and a seed stamped after the bump would outlive exactly the
            // invalidation it just caused (a thrashing budget-0 session
            // would serve every repeat from a handle it already evicted).
            // Stamped before, the very next acquire sees the bump and
            // clears the tier — one L1 walk, then the seed re-forms.
            let stamped = cache.generation();
            let installed = cache.install(prepared);
            (installed, stamped)
        };
        self.l0_seed(fingerprint, Arc::clone(&installed), stamped);
        installed
    }

    /// The request-boundary maintenance pass, in the one correct order:
    /// flush dirty entries to the store tier (so a crash at any boundary
    /// finds warm artifacts on disk), then enforce the byte budget (which
    /// persists-before-evicting on its own), then snapshot the stats.
    /// Long-running holders call this after every request; both halves are
    /// no-ops without their respective configuration, and the budget half
    /// skips its re-measure entirely when a coarse growth tick proves no
    /// resident entry changed since the last in-budget pass.
    pub fn checkpoint(&self) -> SessionStats {
        let mut cache = relock(&self.inner.cache);
        if self.inner.has_store {
            cache.persist_dirty();
        }
        cache.enforce_budget();
        self.overlay(cache.stats())
    }

    /// The wrapped cache's lifetime counters with the front's L0/L1 tier
    /// hits overlaid — the complete ledger.
    pub fn stats(&self) -> SessionStats {
        self.overlay(relock(&self.inner.cache).stats())
    }

    /// Aggregated artifact-cache counters across every resident program,
    /// with the front's tier hits overlaid.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = relock(&self.inner.cache).cache_stats();
        stats.l0_hits = self.inner.l0_hits.load(Ordering::Relaxed);
        stats.l1_hits = self.inner.l1_hits.load(Ordering::Relaxed);
        stats
    }

    /// This front's acquire ledger (see [`AcquireStats::reconciles`]).
    pub fn acquire_stats(&self) -> AcquireStats {
        AcquireStats {
            acquires: self.inner.acquires.load(Ordering::Relaxed),
            l0_hits: self.inner.l0_hits.load(Ordering::Relaxed),
            l1_hits: self.inner.l1_hits.load(Ordering::Relaxed),
            store_hits: self.inner.store_hits.load(Ordering::Relaxed),
            prepares: self.inner.prepares.load(Ordering::Relaxed),
            abandoned: self.inner.abandoned.load(Ordering::Relaxed),
        }
    }

    /// The current invalidation generation — lock-free.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Number of programs resident in the L1.
    pub fn len(&self) -> usize {
        relock(&self.inner.cache).len()
    }

    /// `true` iff the L1 holds no program.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The L1's byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.inner.budget
    }

    /// `true` iff an on-disk artifact tier is configured.
    pub fn has_store(&self) -> bool {
        self.inner.has_store
    }

    /// The summed byte estimate of every L1-resident entry, measured now.
    /// L0-pinned handles are not additional memory: every L0 entry is an
    /// `Arc` onto (at most [`L0_CAPACITY`] per worker of) the same
    /// sessions, resident or recently evicted.
    pub fn resident_bytes(&self) -> u64 {
        relock(&self.inner.cache).resident_bytes()
    }

    fn overlay(&self, mut stats: SessionStats) -> SessionStats {
        stats.l0_hits = self.inner.l0_hits.load(Ordering::Relaxed);
        stats.l1_hits = self.inner.l1_hits.load(Ordering::Relaxed);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::IndexExpr;

    fn program(name: &str, offset: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        let t = b.region("t", 256, false);
        let entry = b.entry_block("entry");
        b.load(entry, t, IndexExpr::Const(offset));
        b.ret(entry);
        b.finish().unwrap()
    }

    #[test]
    fn acquire_walks_l1_then_l0_and_reconciles() {
        let session = CacheSession::new(SessionCache::new());
        let p = program("a", 0);

        let CacheOutcome::NeedsPrepare(guard) = session.acquire(&p) else {
            panic!("an empty session must miss");
        };
        assert!(!guard.renamed());
        let prepared = guard.prepare(&p);
        assert_eq!(prepared.program(), &p);

        // The commit seeded this thread's L0: the re-acquire never locks.
        let CacheOutcome::L0Hit(hit) = session.acquire(&p) else {
            panic!("the committed handle must be in L0");
        };
        assert!(Arc::ptr_eq(&hit, &prepared));

        let stats = session.acquire_stats();
        assert_eq!(
            (stats.acquires, stats.l0_hits, stats.prepares),
            (2, 1, 1),
            "{stats:?}"
        );
        assert!(stats.reconciles());
        let session_stats = session.stats();
        assert_eq!(session_stats.l0_hits, 1);
        assert_eq!(session_stats.inserted, 1);
    }

    #[test]
    fn l1_serves_other_sessions_threads_and_seeds_l0() {
        let session = CacheSession::new(SessionCache::new());
        let p = program("a", 0);
        let CacheOutcome::NeedsPrepare(guard) = session.acquire(&p) else {
            panic!("cold miss expected");
        };
        guard.prepare(&p);

        // A different thread has an empty L0: its first acquire is a warm
        // L1 hit, its second an L0 hit off the seed.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert!(matches!(session.acquire(&p), CacheOutcome::WarmHit(_)));
                assert!(matches!(session.acquire(&p), CacheOutcome::L0Hit(_)));
            });
        });
        let stats = session.acquire_stats();
        assert_eq!((stats.l0_hits, stats.l1_hits, stats.prepares), (1, 1, 1));
        assert!(stats.reconciles());
    }

    #[test]
    fn two_fronts_on_one_thread_never_share_an_l0() {
        let first = CacheSession::new(SessionCache::new());
        let second = CacheSession::new(SessionCache::new());
        let p = program("a", 0);
        match first.acquire(&p) {
            CacheOutcome::NeedsPrepare(guard) => {
                guard.prepare(&p);
            }
            _ => panic!("cold miss expected"),
        }
        assert!(matches!(first.acquire(&p), CacheOutcome::L0Hit(_)));
        assert!(
            matches!(second.acquire(&p), CacheOutcome::NeedsPrepare(_)),
            "a sibling front must not see the other's L0 seed"
        );
        assert_eq!(second.acquire_stats().abandoned, 1, "dropped guard counts");
        assert!(second.acquire_stats().reconciles());
    }

    #[test]
    fn rename_yields_a_renamed_guard_instead_of_stale_names() {
        let session = CacheSession::new(SessionCache::new());
        let p = program("a", 0);
        match session.acquire(&p) {
            CacheOutcome::NeedsPrepare(guard) => guard.prepare(&p),
            _ => panic!("cold miss expected"),
        };

        // Same structure, renamed region: the structural tier serves it...
        let mut renamed = ProgramBuilder::new("a");
        let t = renamed.region("t_v2", 256, false);
        let entry = renamed.entry_block("entry");
        renamed.load(entry, t, IndexExpr::Const(0));
        renamed.ret(entry);
        let renamed = renamed.finish().unwrap();
        assert!(matches!(
            session.acquire_structural(&renamed),
            CacheOutcome::L0Hit(_) | CacheOutcome::WarmHit(_)
        ));
        // ...but the name-exact tier must re-prepare, and the commit
        // swaps the entry so the old names are gone everywhere.
        let outcome = session.acquire(&renamed);
        assert_eq!(outcome.tag(), "renamed");
        let CacheOutcome::NeedsPrepare(guard) = outcome else {
            unreachable!()
        };
        let swapped = guard.prepare(&renamed);
        assert_eq!(swapped.program(), &renamed);
        // The swap bumped the generation, so the commit's own seed is
        // already stale: the re-acquire rebinds warm from the L1 (and
        // re-seeds), never replaying the old names.
        match session.acquire(&renamed) {
            CacheOutcome::WarmHit(hit) => assert_eq!(hit.program(), &renamed),
            other => panic!("expected a warm hit, got `{}`", other.tag()),
        };
        match session.acquire(&renamed) {
            CacheOutcome::L0Hit(hit) => assert_eq!(hit.program(), &renamed),
            other => panic!("expected an L0 hit, got `{}`", other.tag()),
        };
    }

    #[test]
    fn generation_bumps_clear_the_l0() {
        let session = CacheSession::new(SessionCache::new());
        let p = program("a", 0);
        match session.acquire(&p) {
            CacheOutcome::NeedsPrepare(guard) => guard.prepare(&p),
            _ => panic!("cold miss expected"),
        };
        assert!(matches!(session.acquire(&p), CacheOutcome::L0Hit(_)));
        let before = session.generation();

        // An edit-driven replacement bumps the generation...
        let edited = program("a", 64);
        match session.acquire(&edited) {
            CacheOutcome::NeedsPrepare(guard) => guard.prepare(&edited),
            other => panic!("an edit must miss, got `{}`", other.tag()),
        };
        assert!(session.generation() > before);
        // ...and the stale-programmed L0 entry is unreachable: the edited
        // program is what every tier now serves.  The first re-acquire
        // clears the outdated tier and rebinds warm; the one after that is
        // lock-free again.
        match session.acquire(&edited) {
            CacheOutcome::WarmHit(hit) => assert_eq!(hit.program(), &edited),
            other => panic!("expected a warm hit, got `{}`", other.tag()),
        };
        match session.acquire(&edited) {
            CacheOutcome::L0Hit(hit) => assert_eq!(hit.program(), &edited),
            other => panic!("expected an L0 hit, got `{}`", other.tag()),
        };
    }

    #[test]
    fn l0_capacity_is_bounded() {
        let session = CacheSession::new(SessionCache::new());
        for i in 0..(L0_CAPACITY + 4) as u64 {
            let p = program(&format!("p{i:03}"), 0);
            match session.acquire(&p) {
                CacheOutcome::NeedsPrepare(guard) => guard.prepare(&p),
                _ => panic!("distinct names must miss"),
            };
        }
        L0_TIERS.with(|tiers| {
            let tiers = tiers.borrow();
            let tier = tiers.get(&session.inner.id).expect("tier exists");
            assert_eq!(tier.entries.len(), L0_CAPACITY, "the LRU bound holds");
        });
        // The oldest seeds fell out of L0 but stay warm in L1.
        assert!(matches!(
            session.acquire(&program("p000", 0)),
            CacheOutcome::WarmHit(_)
        ));
    }
}
