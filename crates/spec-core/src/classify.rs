//! Classification of memory accesses and the analysis result type.

use std::sync::Arc;
use std::time::Duration;

use spec_absint::SolveStats;
use spec_cache::{AbstractCacheState, AddressMap, CacheAccess, CacheConfig};
use spec_ir::transform::UnrollReport;
use spec_ir::{BlockId, MemRef, Program};
use spec_vcfg::{NodeId, Vcfg};

use crate::engine::SpecProblem;
use crate::state::SpecState;

/// Classification of one memory-access instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// The VCFG node of the access.
    pub node: NodeId,
    /// The basic block containing the access.
    pub block: BlockId,
    /// Position of the access within its basic block's instruction list.
    pub inst_index: usize,
    /// The memory reference being accessed.
    pub mem: MemRef,
    /// Name of the accessed region (for reports).
    pub region_name: String,
    /// `true` if the access is guaranteed to hit in every *architectural*
    /// execution, i.e. considering both the normal state and any rolled-back
    /// speculative pollution that reaches this point.
    pub observable_hit: bool,
    /// `true` if the access is guaranteed to hit when only the normal
    /// (non-speculative) state is considered.
    pub normal_hit: bool,
    /// `true` if the access also hits whenever it is executed *during* a
    /// speculative (later squashed) execution.
    pub speculative_hit: bool,
    /// `true` if this node can be reached by some speculative execution.
    pub reached_speculatively: bool,
    /// `true` if the access index depends on secret data.
    pub secret_dependent: bool,
}

impl AccessInfo {
    /// An observable miss: the access may miss in a committed execution.
    pub fn is_possible_miss(&self) -> bool {
        !self.observable_hit
    }

    /// A speculative miss: the access may miss while being executed
    /// speculatively (masked by the pipeline, but it still perturbs the
    /// cache).
    pub fn is_speculative_miss(&self) -> bool {
        self.reached_speculatively && !self.speculative_hit
    }
}

/// Result of one analysis run.
///
/// The program, address map and fixed-point states are shared (`Arc`) with
/// the session that produced them, so constructing a result from memoized
/// artifacts costs reference bumps, not deep copies.
#[derive(Debug)]
pub struct AnalysisResult {
    /// The program that was actually analysed (after unrolling).
    pub program: Arc<Program>,
    /// Memory layout used by the analysis.
    pub address_map: Arc<AddressMap>,
    /// Cache geometry used by the analysis.
    pub cache: CacheConfig,
    /// Per-node abstract states at the fixed point (indexed by node).
    pub states: Arc<Vec<SpecState>>,
    /// Classification of every memory access.
    pub accesses: Vec<AccessInfo>,
    /// Solver statistics, accumulated over all rounds of the dynamic
    /// depth-bounding refinement.
    pub stats: SolveStats,
    /// Number of fixpoint rounds run (1 unless dynamic bounding refined).
    pub rounds: u32,
    /// Loop-unrolling report.
    pub unroll: UnrollReport,
    /// Number of conditional branches that may be speculated.
    pub speculated_branches: usize,
    /// Number of speculative executions (colors).
    pub colors: usize,
    /// Final speculation window per color.
    pub bounds: Vec<u32>,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

impl AnalysisResult {
    /// Number of accesses that may miss in a committed execution
    /// (the paper's `#Miss`).
    pub fn miss_count(&self) -> usize {
        self.accesses
            .iter()
            .filter(|a| a.is_possible_miss())
            .count()
    }

    /// Number of accesses that may miss while executed speculatively
    /// (the paper's `#SpMiss`).
    pub fn speculative_miss_count(&self) -> usize {
        self.accesses
            .iter()
            .filter(|a| a.is_speculative_miss())
            .count()
    }

    /// Number of accesses guaranteed to hit in every committed execution.
    pub fn must_hit_count(&self) -> usize {
        self.accesses.len() - self.miss_count()
    }

    /// Total number of memory accesses classified.
    pub fn access_count(&self) -> usize {
        self.accesses.len()
    }

    /// Total fixpoint iterations (worklist pops) across all rounds.
    pub fn iterations(&self) -> u64 {
        self.stats.node_visits
    }

    /// Classified accesses.
    pub fn accesses(&self) -> &[AccessInfo] {
        &self.accesses
    }

    /// Accesses whose index depends on secret data.
    pub fn secret_accesses(&self) -> impl Iterator<Item = &AccessInfo> {
        self.accesses.iter().filter(|a| a.secret_dependent)
    }

    /// Classification of the access at a given block and instruction
    /// position of the analysed program, if that instruction accesses
    /// memory.
    pub fn access_at(&self, block: BlockId, inst_index: usize) -> Option<&AccessInfo> {
        self.accesses
            .iter()
            .find(|a| a.block == block && a.inst_index == inst_index)
    }

    /// The abstract state at the entry of `node`.
    pub fn state_at(&self, node: NodeId) -> &SpecState {
        &self.states[node.index()]
    }

    /// Names of the regions whose blocks are all guaranteed cached in the
    /// normal state at `node` — handy for walking through Table 1/2 of the
    /// paper.
    pub fn fully_cached_regions_at(&self, node: NodeId) -> Vec<String> {
        let state = &self.state_at(node).normal;
        self.program
            .regions()
            .iter()
            .enumerate()
            .filter(|(idx, _)| {
                let region = spec_ir::RegionId::from_raw(*idx as u32);
                self.address_map
                    .blocks_of(region)
                    .all(|b| state.is_must_hit(b))
            })
            .map(|(_, r)| r.name.clone())
            .collect()
    }
}

/// Classifies every memory access of the analysed program against the
/// fixed-point states.
pub(crate) fn classify_accesses(
    problem: &SpecProblem<'_>,
    vcfg: &Vcfg,
    states: &[SpecState],
) -> Vec<AccessInfo> {
    let program = problem.program;
    let graph = vcfg.graph();
    let mut infos = Vec::new();
    for node in graph.nodes() {
        let Some(mem) = graph.memory_ref(program, node) else {
            continue;
        };
        let state = &states[node.index()];
        let access = problem.resolve(&mem);
        let normal_hit = access_hits(problem, &access, &state.normal);

        let membership = &problem.membership[node.index()];
        // Pollution carried separately through the resume region (just-in-
        // time merging) must also guarantee the hit for it to be observable.
        let mut observable_hit = normal_hit;
        for color in &membership.resume {
            if let Some(spec) = state.spec_state(*color) {
                observable_hit &= access_hits(problem, &access, spec);
            }
        }
        // Accesses executed during speculation (squashed work).
        let mut reached_speculatively = false;
        let mut speculative_hit = true;
        for (color, dist) in &membership.spec {
            if *dist > problem.bounds[color.index()] {
                continue;
            }
            if let Some(spec) = state.spec_state(*color) {
                reached_speculatively = true;
                speculative_hit &= access_hits(problem, &access, spec);
            }
        }

        let inst_index = match graph.kind(node) {
            spec_vcfg::NodeKind::Inst { index, .. } => index,
            spec_vcfg::NodeKind::Terminator { .. } => {
                unreachable!("terminators do not access memory")
            }
        };
        infos.push(AccessInfo {
            node,
            block: graph.kind(node).block(),
            inst_index,
            mem,
            region_name: program.region(mem.region).name.clone(),
            observable_hit,
            normal_hit,
            speculative_hit,
            reached_speculatively,
            secret_dependent: mem.index.is_secret_dependent(),
        });
    }
    infos
}

/// Whether an abstract access is guaranteed to hit in `state`.
fn access_hits(
    problem: &SpecProblem<'_>,
    access: &CacheAccess,
    state: &AbstractCacheState,
) -> bool {
    if state.is_bottom() {
        // No execution reaches this point along this component; it cannot
        // contribute a miss.
        return true;
    }
    match access {
        CacheAccess::Precise(block) => state.is_must_hit(*block),
        CacheAccess::AnyOf(region) => problem
            .amap
            .blocks_of(*region)
            .all(|b| state.is_must_hit(b)),
    }
}
