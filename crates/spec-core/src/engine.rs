//! The speculative dataflow problem: how states flow through the VCFG.
//!
//! This module implements Algorithm 2/3 of the paper as an instance of the
//! generic worklist solver in `spec-absint`:
//!
//! * ordinary edges propagate both the normal state `S` and every
//!   speculative state `SS[c]`;
//! * at a branch that may speculate, the normal state is *seeded* into the
//!   speculative state of the corresponding color on the mispredicted arm
//!   (the `vn_start` virtual edge);
//! * from every node inside a color's speculative window, a *rollback* edge
//!   carries the speculative state to the correct arm — either folding it
//!   into the normal state right away ([`MergeStrategy::MergeAtRollback`])
//!   or keeping it speculative until the branch's join point
//!   ([`MergeStrategy::JustInTime`], the `vn_stop` virtual edge);
//! * speculative propagation is limited to the per-color window
//!   (`b_h`/`b_m` instructions, Section 6.2).

use std::collections::{HashMap, HashSet};

use spec_absint::DataflowProblem;
use spec_cache::{AbstractCacheState, AddressMap, CacheAccess, CacheConfig, MemBlock};
use spec_ir::{IndexExpr, MemRef, Program};
use spec_vcfg::{Color, MergeStrategy, NodeId, Vcfg};

use crate::state::SpecState;

/// Per-node speculative membership, precomputed for fast lookups during the
/// fixpoint iteration.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeMembership {
    /// Colors whose speculative window contains this node, with the
    /// instruction distance from the start of speculation.
    pub spec: HashMap<Color, u32>,
    /// Colors whose resume region (correct arm before the commit point)
    /// contains this node.
    pub resume: HashSet<Color>,
}

/// The dataflow problem solved by the speculative analysis.
pub(crate) struct SpecProblem<'a> {
    pub program: &'a Program,
    pub vcfg: &'a Vcfg,
    pub amap: &'a AddressMap,
    pub cache: CacheConfig,
    pub track_shadow: bool,
    pub merge_strategy: MergeStrategy,
    /// Speculation window currently in force for each color.
    pub bounds: Vec<u32>,
    /// Widening points (first nodes of unresolved loop headers).
    pub widen_nodes: HashSet<usize>,
    /// Per-node membership in speculative / resume regions.
    pub membership: Vec<NodeMembership>,
    /// Extra (virtual) successors: rollback targets per node.
    pub extra_successors: Vec<Vec<usize>>,
}

impl<'a> SpecProblem<'a> {
    pub fn new(
        program: &'a Program,
        vcfg: &'a Vcfg,
        amap: &'a AddressMap,
        cache: CacheConfig,
        track_shadow: bool,
        bounds: Vec<u32>,
        widen_nodes: HashSet<usize>,
    ) -> Self {
        let n = vcfg.graph().len();
        let mut membership = vec![NodeMembership::default(); n];
        let mut extra_successors: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for site in vcfg.sites() {
            for (node, dist) in &site.spec_distance {
                membership[node.index()].spec.insert(site.color, *dist);
                // Rollback edge: from any speculatively reached node to the
                // entry of the correct arm.
                extra_successors[node.index()].insert(site.resume_entry.index());
            }
            for node in &site.resume_region {
                membership[node.index()].resume.insert(site.color);
            }
        }
        let graph = vcfg.graph();
        let extra_successors = extra_successors
            .into_iter()
            .enumerate()
            .map(|(from, set)| {
                let from_node = NodeId::from_raw(from as u32);
                let mut targets: Vec<usize> = set
                    .into_iter()
                    .filter(|to| {
                        // Keep only targets that are not already plain successors.
                        !graph.successors(from_node).iter().any(|s| s.index() == *to)
                    })
                    .collect();
                // Sorted order keeps the worklist schedule — and with it the
                // solver statistics — deterministic across runs; hash-set
                // iteration order would otherwise leak into `successors()`.
                targets.sort_unstable();
                targets
            })
            .collect();
        Self {
            program,
            vcfg,
            amap,
            cache,
            track_shadow,
            merge_strategy: vcfg.config().merge_strategy,
            bounds,
            widen_nodes,
            membership,
            extra_successors,
        }
    }

    /// Resolves a memory reference into an abstract cache access.
    pub fn resolve(&self, mem: &MemRef) -> CacheAccess {
        match mem.index {
            IndexExpr::Const(offset) => {
                CacheAccess::Precise(self.amap.block_of_offset(mem.region, offset))
            }
            _ => CacheAccess::AnyOf(mem.region),
        }
    }

    /// Applies the cache effect of the instruction at `node` to `state`.
    fn apply_node_effect(&self, node: NodeId, state: &mut SpecState) {
        let Some(mem) = self.vcfg.graph().memory_ref(self.program, node) else {
            return;
        };
        let access = self.resolve(&mem);
        let amap = self.amap;
        state
            .normal
            .access(&self.cache, &access, |b| amap.set_of(b));
        for spec in state.spec.values_mut() {
            spec.access(&self.cache, &access, |b| amap.set_of(b));
        }
    }

    /// Whether the speculative state of `color` may flow along an ordinary
    /// edge into `to`.
    fn spec_flow_allowed(&self, color: Color, to: NodeId) -> bool {
        let member = &self.membership[to.index()];
        if let Some(dist) = member.spec.get(&color) {
            return *dist <= self.bounds[color.index()];
        }
        member.resume.contains(&color)
    }

    /// Checks whether every memory location a branch condition depends on is
    /// a guaranteed cache hit in `state` (used for dynamic depth bounding).
    pub fn condition_is_must_hit(&self, refs: &[MemRef], state: &AbstractCacheState) -> bool {
        if state.is_bottom() {
            return false;
        }
        refs.iter().all(|m| match self.resolve(m) {
            CacheAccess::Precise(block) => state.is_must_hit(block),
            CacheAccess::AnyOf(region) => self
                .amap
                .blocks_of(region)
                .all(|b: MemBlock| state.is_must_hit(b)),
        })
    }
}

impl DataflowProblem for SpecProblem<'_> {
    type State = SpecState;

    fn num_nodes(&self) -> usize {
        self.vcfg.graph().len()
    }

    fn bottom_state(&self) -> SpecState {
        SpecState::bottom(self.track_shadow)
    }

    fn entry_state(&self, node: usize) -> Option<SpecState> {
        (node == self.vcfg.graph().entry().index()).then(|| {
            SpecState::from_normal(AbstractCacheState::empty_cache(
                &self.cache,
                self.track_shadow,
            ))
        })
    }

    fn successors(&self, node: usize) -> Vec<usize> {
        let mut succs: Vec<usize> = self
            .vcfg
            .graph()
            .successors(NodeId::from_raw(node as u32))
            .iter()
            .map(|n| n.index())
            .collect();
        succs.extend(self.extra_successors[node].iter().copied());
        succs
    }

    fn transfer(&mut self, from: usize, to: usize, state: &SpecState) -> SpecState {
        let from_node = NodeId::from_raw(from as u32);
        let to_node = NodeId::from_raw(to as u32);
        let graph = self.vcfg.graph();

        // 1. Apply the cache effect of executing `from`.
        let mut effective = state.clone();
        self.apply_node_effect(from_node, &mut effective);

        let mut out = self.bottom_state();
        let is_graph_edge = graph.successors(from_node).contains(&to_node);

        // 2. Ordinary control flow: propagate the normal state and the
        //    speculative states whose window or resume region covers `to`.
        if is_graph_edge {
            out.normal.join_in_place(&effective.normal);
            for (color, spec) in &effective.spec {
                if !spec.is_bottom() && self.spec_flow_allowed(*color, to_node) {
                    out.join_spec(*color, spec);
                }
            }
            // Seed new speculative flows: the branch at `from` may be
            // mispredicted towards `to` (the wrong arm), executing it with
            // the current architectural cache state.
            for &color in self.vcfg.colors_at_branch(from_node) {
                let site = self.vcfg.site(color);
                if site.speculated_entry != to_node {
                    continue;
                }
                let Some(entry_dist) = site.spec_distance_of(to_node) else {
                    continue;
                };
                if entry_dist <= self.bounds[color.index()] {
                    out.join_spec(color, &effective.normal);
                }
            }
        }

        // 3. Rollback (virtual) edges: from inside a speculative window to
        //    the entry of the correct arm.
        for (color, dist) in &self.membership[from].spec {
            if *dist > self.bounds[color.index()] {
                continue;
            }
            let site = self.vcfg.site(*color);
            if site.resume_entry != to_node {
                continue;
            }
            let Some(spec) = effective.spec.get(color) else {
                continue;
            };
            if spec.is_bottom() {
                continue;
            }
            match self.merge_strategy {
                MergeStrategy::JustInTime => {
                    out.join_spec(*color, spec);
                }
                MergeStrategy::MergeAtRollback => {
                    out.normal.join_in_place(spec);
                }
            }
        }

        // 4. Commit (the `vn_stop` conversion): speculative states arriving
        //    at their branch's join point are folded into the normal state.
        for &color in self.vcfg.commits_at(to_node) {
            out.commit_color(color);
        }
        out
    }

    fn widen_at(&self, node: usize) -> bool {
        self.widen_nodes.contains(&node)
    }
}
