//! A federation gateway: one endpoint fronting a fleet of `specan serve`
//! backends.
//!
//! A single [`crate::service`] process is bounded by one machine's cores
//! and memory.  The gateway closes that gap for interactive traffic the
//! way `specan merge` closed it for batch scans: `specan gateway` listens
//! on one NDJSON-over-TCP endpoint speaking exactly the [`Request`] /
//! [`Response`] protocol of `specan serve`, and forwards every work
//! request to one of N backends.  Clients — `specan submit` included —
//! cannot tell the difference: responses stay byte-identical (post
//! timing-strip) to a direct single-server run, the house determinism
//! invariant.
//!
//! # Fingerprint-affinity routing
//!
//! Warmth lives in the backends: a backend that has prepared a program
//! holds its warm `PreparedProgram` (and, with `--artifact-dir`, its disk
//! artifact).  Scattering resubmissions across the fleet would re-prepare
//! the same program everywhere, so the gateway routes by **structural
//! fingerprint** ([`spec_ir::fingerprint`]): each request's program (for
//! `scan`, the combined fingerprint of the bundle) is ranked against every
//! backend with rendezvous hashing — score = hash(fingerprint ‖ backend
//! address), backends ordered by score.  The same program therefore lands
//! on the same backend for as long as that backend is healthy, whitespace
//! and rename edits included (the fingerprint is structural, not textual),
//! while distinct programs spread uniformly.  A request whose program does
//! not parse has no fingerprint and is spread round-robin — whichever
//! backend it lands on renders the same parse error.
//!
//! # Health checks, ejection, failover
//!
//! A prober thread sends `status` to every backend each
//! [`GatewayConfig::probe_interval`]; [`GatewayConfig::eject_after`]
//! consecutive failures eject a backend from routing.  Ejected backends
//! keep receiving probes (the half-open state) and are readmitted on the
//! first success.  A work request that fails in transport — connect
//! refused, connection died mid-response, read deadline exceeded — is
//! replayed transparently on the next backend in its rendezvous order,
//! with bounded attempts and linear backoff; only transport failures
//! replay (an error *response* is a deterministic answer and is returned
//! as-is).  Because every backend computes the same deterministic bytes,
//! a replayed response is indistinguishable from a first-try one.
//!
//! # Fleet status
//!
//! `status` at the gateway aggregates the fleet: gateway-level counters
//! (`routed`, `retried`, `rerouted`, `ejected`, `readmitted`) plus one
//! entry per backend with its health state and — for live backends — its
//! own `status` document (session/cache/store counters) embedded verbatim.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use spec_ir::fingerprint::{combined_fingerprint, program_fingerprint, Fingerprint};
use spec_ir::text::parse_program;
use spec_telemetry::{escape_label, Counter, Gauge, Histogram, Registry, TraceLog, TraceSender};

use crate::json::ParseLimits;
use crate::service::{
    log_line, panic_message, read_line_capped, request_kind, write_response, ClientOptions,
    Request, RequestTelemetry, Response, ServiceClient, PROTOCOL_VERSION,
};

/// Default `host:port` of `specan gateway` (one above the serve default,
/// so a gateway and a backend co-exist on one machine out of the box).
pub const DEFAULT_GATEWAY_ADDR: &str = "127.0.0.1:4871";

/// Gateway tuning — see [`GatewayConfig::builder`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// The backend fleet, as `host:port` addresses of running `specan
    /// serve` processes.  Order is irrelevant to routing (rendezvous
    /// hashing ranks per fingerprint) but fixed in `status` output.
    pub backends: Vec<String>,
    /// Concurrent forwarding workers (the request-level parallelism of
    /// the gateway itself; each backend still applies its own `--jobs`).
    pub jobs: NonZeroUsize,
    /// Per-request line cap, as in [`crate::service::ServiceConfig`].
    pub max_request_bytes: usize,
    /// Delay between health-probe sweeps over the fleet.
    pub probe_interval: Duration,
    /// Consecutive failures (probes or forwarded requests) after which a
    /// backend is ejected from routing until a probe succeeds again.
    pub eject_after: u32,
    /// Deadline on connecting to a backend (probes and forwards alike).
    pub connect_timeout: Duration,
    /// Read deadline on probe responses — a hung backend must fail its
    /// probe, not wedge the prober.
    pub probe_read_timeout: Duration,
    /// Read deadline on forwarded work requests.  `None` waits forever;
    /// the default is generous (analyses can be slow) but finite, so a
    /// SIGSTOPped backend eventually frees the worker and the request
    /// retries elsewhere.
    pub request_read_timeout: Option<Duration>,
    /// Base of the linear backoff between retry attempts (attempt `n`
    /// sleeps `n * retry_backoff`).
    pub retry_backoff: Duration,
    /// Cap on forwarding attempts per request; `None` tries every backend
    /// once (in rendezvous order) before giving up.
    pub max_attempts: Option<NonZeroUsize>,
    /// Trace-log path (`--trace-log`): one NDJSON event per routed request
    /// (id, kind, backend, attempts, outcome, duration), written by a
    /// dedicated thread exactly as in
    /// [`crate::service::ServiceConfig::trace_log`].
    pub trace_log: Option<PathBuf>,
}

impl GatewayConfig {
    /// A config fronting `backends` with `jobs` workers and the default
    /// knobs (8 MiB requests, 500 ms probes, ejection after 3 failures,
    /// 1 s connect / 2 s probe-read / 120 s request-read deadlines, 25 ms
    /// backoff, attempts bounded by the fleet size).
    pub fn new(backends: Vec<String>, jobs: NonZeroUsize) -> Self {
        Self {
            backends,
            jobs,
            max_request_bytes: 8 << 20,
            probe_interval: Duration::from_millis(500),
            eject_after: 3,
            connect_timeout: Duration::from_secs(1),
            probe_read_timeout: Duration::from_secs(2),
            request_read_timeout: Some(Duration::from_secs(120)),
            retry_backoff: Duration::from_millis(25),
            max_attempts: None,
            trace_log: None,
        }
    }

    /// A validating builder seeded with [`GatewayConfig::new`]'s defaults.
    pub fn builder(backends: Vec<String>, jobs: NonZeroUsize) -> GatewayConfigBuilder {
        GatewayConfigBuilder {
            config: Self::new(backends, jobs),
        }
    }

    /// The per-request attempt bound: `max_attempts` clamped to the fleet
    /// size (retrying the same dead backend twice buys nothing).
    fn effective_attempts(&self) -> usize {
        let fleet = self.backends.len();
        self.max_attempts
            .map_or(fleet, |cap| cap.get().min(fleet))
            .max(1)
    }
}

/// Why a [`GatewayConfigBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GatewayConfigError {
    /// No backends: there is nothing to route to.
    EmptyFleet,
    /// A zero ejection threshold would eject every backend immediately.
    ZeroEjectAfter,
    /// The request line cap is zero, which would reject every request.
    ZeroRequestCap,
}

impl std::fmt::Display for GatewayConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyFleet => write!(f, "a gateway needs at least one --backend"),
            Self::ZeroEjectAfter => write!(f, "--eject-after must be at least 1"),
            Self::ZeroRequestCap => write!(f, "max request bytes must be non-zero"),
        }
    }
}

impl std::error::Error for GatewayConfigError {}

/// Builder for [`GatewayConfig`] — see [`GatewayConfig::builder`].
#[derive(Clone, Debug)]
pub struct GatewayConfigBuilder {
    config: GatewayConfig,
}

impl GatewayConfigBuilder {
    /// Per-request line cap in bytes (default 8 MiB).
    pub fn max_request_bytes(mut self, bytes: usize) -> Self {
        self.config.max_request_bytes = bytes;
        self
    }

    /// Delay between health-probe sweeps (default 500 ms).
    pub fn probe_interval(mut self, interval: Duration) -> Self {
        self.config.probe_interval = interval;
        self
    }

    /// Consecutive-failure ejection threshold (default 3).
    pub fn eject_after(mut self, failures: u32) -> Self {
        self.config.eject_after = failures;
        self
    }

    /// Backend connect deadline (default 1 s).
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.config.connect_timeout = timeout;
        self
    }

    /// Read deadline on forwarded work requests (default 120 s).
    pub fn request_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.request_read_timeout = timeout;
        self
    }

    /// Base of the linear retry backoff (default 25 ms).
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff = backoff;
        self
    }

    /// Cap on forwarding attempts per request (default: fleet size).
    pub fn max_attempts(mut self, attempts: NonZeroUsize) -> Self {
        self.config.max_attempts = Some(attempts);
        self
    }

    /// NDJSON trace-log path (`--trace-log`).
    pub fn trace_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace_log = Some(path.into());
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`GatewayConfigError`] for an empty fleet, a zero ejection
    /// threshold, or a zero request cap.
    pub fn build(self) -> Result<GatewayConfig, GatewayConfigError> {
        if self.config.backends.is_empty() {
            return Err(GatewayConfigError::EmptyFleet);
        }
        if self.config.eject_after == 0 {
            return Err(GatewayConfigError::ZeroEjectAfter);
        }
        if self.config.max_request_bytes == 0 {
            return Err(GatewayConfigError::ZeroRequestCap);
        }
        Ok(self.config)
    }
}

/// Lifetime counters of one [`gateway`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayReport {
    /// Requests parsed (including `status`/`shutdown`).
    pub requests: u64,
    /// Requests that failed (parse errors, or every attempt exhausted).
    pub errors: u64,
}

/// One backend's routing state.  Health is advisory — routing prefers
/// healthy backends but falls back to ejected ones when nothing else is
/// left, so a fleet that is momentarily all-ejected still serves.
struct Backend {
    addr: String,
    healthy: AtomicBool,
    /// Consecutive failures (probe or forward); reset on any success.
    failures: AtomicU32,
    /// `spec_gateway_backend_healthy{backend}`: 1 routable, 0 ejected.
    health: Gauge,
    /// `spec_gateway_probe_rtt_seconds{backend}`: last successful probe's
    /// round trip; keeps its final value while the backend is down.
    probe_rtt: Gauge,
    /// `spec_gateway_forward_seconds{backend}`: successful forwards only,
    /// so the buckets measure the backend and not the retry machinery.
    forward: Histogram,
}

impl Backend {
    /// Registers the per-backend series up front, so every backend's
    /// labels appear in the exposition before any traffic reaches it.
    fn new(addr: String, registry: &Registry) -> Self {
        let labels = [("backend", addr.as_str())];
        let health = registry.gauge(
            "spec_gateway_backend_healthy",
            "1 while the backend is routable, 0 while ejected.",
            &labels,
        );
        health.set(1.0);
        let probe_rtt = registry.gauge(
            "spec_gateway_probe_rtt_seconds",
            "Round trip of the most recent successful health probe.",
            &labels,
        );
        let forward = registry.histogram(
            "spec_gateway_forward_seconds",
            "Latency of successful request forwards, per backend.",
            &labels,
        );
        Self {
            addr,
            healthy: AtomicBool::new(true),
            failures: AtomicU32::new(0),
            health,
            probe_rtt,
            forward,
        }
    }

    /// Records a successful probe or forward: resets the failure streak
    /// and readmits an ejected backend.
    fn record_success(&self, counters: &Counters) {
        self.failures.store(0, Ordering::SeqCst);
        self.health.set(1.0);
        if !self.healthy.swap(true, Ordering::SeqCst) {
            counters.readmitted.inc();
            log_line(&format!("gateway: readmitted {}", self.addr));
        }
    }

    /// Records a failed probe or forward; ejects at the threshold.
    fn record_failure(&self, eject_after: u32, counters: &Counters) {
        let streak = self
            .failures
            .fetch_add(1, Ordering::SeqCst)
            .saturating_add(1);
        if streak >= eject_after {
            self.health.set(0.0);
            if self.healthy.swap(false, Ordering::SeqCst) {
                counters.ejected.inc();
                log_line(&format!(
                    "gateway: ejected {} after {streak} consecutive failure(s)",
                    self.addr
                ));
            }
        }
    }
}

/// The routing counters, registered so they render in the exposition and
/// still read individually for the `status` document.
struct Counters {
    routed: Counter,
    retried: Counter,
    rerouted: Counter,
    ejected: Counter,
    readmitted: Counter,
}

impl Counters {
    fn registered(registry: &Registry) -> Self {
        Self {
            routed: registry.counter(
                "spec_gateway_routed_total",
                "Work requests entering the routing loop.",
                &[],
            ),
            retried: registry.counter(
                "spec_gateway_retried_total",
                "Forwarding retries after a transport failure.",
                &[],
            ),
            rerouted: registry.counter(
                "spec_gateway_rerouted_total",
                "Responses served away from the affinity primary.",
                &[],
            ),
            ejected: registry.counter(
                "spec_gateway_ejected_total",
                "Backends ejected after consecutive failures.",
                &[],
            ),
            readmitted: registry.counter(
                "spec_gateway_readmitted_total",
                "Ejected backends readmitted by a successful probe or forward.",
                &[],
            ),
        }
    }
}

struct GatewayState {
    config: GatewayConfig,
    backends: Vec<Backend>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Every gateway series lives here: the request ledger, the routing
    /// counters, and the per-backend gauges and histograms.  `metrics`
    /// renders it and then folds in the backends' own expositions.
    registry: Registry,
    requests: RequestTelemetry,
    trace: Option<TraceSender>,
    /// Spreads fingerprint-free requests uniformly.
    round_robin: AtomicUsize,
    limits: ParseLimits,
    addr: SocketAddr,
}

struct GatewayJob {
    id: Option<u64>,
    request: Request,
    out: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

/// Per-request trace-log fields filled by [`GatewayState::route`].
#[derive(Default)]
struct RouteTrace {
    backend: Option<String>,
    attempts: usize,
    rerouted: bool,
}

impl RouteTrace {
    fn render(&self, id: Option<u64>, kind: &str, ok: bool, total: Duration) -> String {
        let id = id.map_or_else(|| "null".to_string(), |value| value.to_string());
        let backend = self.backend.as_deref().map_or_else(
            || "null".to_string(),
            |addr| format!("\"{}\"", spec_telemetry::json_escape(addr)),
        );
        format!(
            "{{\"id\": {id}, \"kind\": \"{kind}\", \"ok\": {ok}, \"backend\": {backend}, \
             \"attempts\": {}, \"rerouted\": {}, \"total_secs\": {}}}",
            self.attempts,
            self.rerouted,
            total.as_secs_f64(),
        )
    }
}

/// The structural fingerprint a request routes on: the program's for
/// `analyze`/`compare`, the order-sensitive combination of the bundle's
/// for `scan` (so one bundle warms one backend), `None` when a source does
/// not parse (the parse error is the same everywhere — spread uniformly).
fn routing_fingerprint(request: &Request) -> Option<Fingerprint> {
    match request {
        Request::Analyze { source, .. } | Request::Compare { source, .. } => {
            parse_program(source).ok().map(|p| program_fingerprint(&p))
        }
        Request::Scan { sources, .. } => sources
            .iter()
            .map(|source| parse_program(source).ok().map(|p| program_fingerprint(&p)))
            .collect::<Option<Vec<_>>>()
            .map(|fps| combined_fingerprint("gateway-scan", fps)),
        Request::Status | Request::Metrics | Request::Shutdown => None,
    }
}

/// The rendezvous score of `fingerprint` on the backend at `addr` — the
/// stable FNV core over the fingerprint followed by the address, so every
/// gateway (and every restart) ranks identically.
fn affinity_score(fingerprint: Fingerprint, addr: &str) -> u64 {
    let mut bytes = fingerprint.0.to_le_bytes().to_vec();
    bytes.extend_from_slice(addr.as_bytes());
    Fingerprint::of_bytes(&bytes).0
}

impl GatewayState {
    fn new(config: GatewayConfig, addr: SocketAddr) -> Self {
        let registry = Registry::new();
        let requests = RequestTelemetry::new(
            &registry,
            "spec_gateway_requests_total",
            "spec_gateway_request_seconds",
        );
        let counters = Counters::registered(&registry);
        let backends = config
            .backends
            .iter()
            .map(|addr| Backend::new(addr.clone(), &registry))
            .collect();
        let limits = ParseLimits {
            max_bytes: config.max_request_bytes,
            ..ParseLimits::default()
        };
        Self {
            backends,
            counters,
            shutdown: AtomicBool::new(false),
            registry,
            requests,
            trace: None,
            round_robin: AtomicUsize::new(0),
            limits,
            addr,
            config,
        }
    }

    /// Backend indices in routing order for one request: rendezvous rank
    /// for fingerprinted requests, round-robin rotation otherwise.  The
    /// first element is the request's *affinity primary* — where it lands
    /// while that backend is healthy.
    fn ranked(&self, fingerprint: Option<Fingerprint>) -> Vec<usize> {
        let n = self.backends.len();
        match fingerprint {
            Some(fp) => {
                let mut order: Vec<usize> = (0..n).collect();
                // Ties (duplicate addresses) break on index, keeping the
                // sort total and deterministic.
                order.sort_by_key(|&i| {
                    (
                        std::cmp::Reverse(affinity_score(fp, &self.backends[i].addr)),
                        i,
                    )
                });
                order
            }
            None => {
                let start = self.round_robin.fetch_add(1, Ordering::Relaxed) % n;
                (0..n).map(|i| (start + i) % n).collect()
            }
        }
    }

    /// The attempt order: ranked healthy backends first, then — as a last
    /// resort — ranked ejected ones, so an all-ejected fleet degrades to
    /// "try everything" instead of refusing service.
    fn attempt_order(&self, ranked: &[usize]) -> Vec<usize> {
        let mut order: Vec<usize> = ranked
            .iter()
            .copied()
            .filter(|&i| self.backends[i].healthy.load(Ordering::SeqCst))
            .collect();
        order.extend(
            ranked
                .iter()
                .copied()
                .filter(|&i| !self.backends[i].healthy.load(Ordering::SeqCst)),
        );
        order
    }

    /// One forwarding attempt: fresh connection, one call, timeouts from
    /// the config.  Any `Err` is a transport failure (retriable); an error
    /// *response* comes back as `Ok` and is final.
    fn forward_once(&self, backend: &Backend, request: &Request) -> io::Result<Response> {
        let mut client = ServiceClient::connect_with(
            &backend.addr,
            ClientOptions {
                connect_timeout: Some(self.config.connect_timeout),
                read_timeout: self.config.request_read_timeout,
            },
        )?;
        client.call(request)
    }

    /// Routes one work request: affinity-ranked candidates, bounded
    /// retries with linear backoff, transparent re-route on transport
    /// failure.  Returns the backend's response (its `id` still unmapped)
    /// or the last transport error once every attempt is spent.
    fn route(&self, request: &Request, trace: &mut RouteTrace) -> Result<Response, String> {
        let cmd = request_kind(request);
        let ranked = self.ranked(routing_fingerprint(request));
        let primary = ranked[0];
        let order = self.attempt_order(&ranked);
        let attempts = self.config.effective_attempts().min(order.len()).max(1);
        self.counters.routed.inc();
        let mut last_err = String::new();
        for (attempt, &index) in order.iter().take(attempts).enumerate() {
            if attempt > 0 {
                self.counters.retried.inc();
                std::thread::sleep(self.config.retry_backoff * attempt as u32);
            }
            trace.attempts = attempt + 1;
            let backend = &self.backends[index];
            let forwarded = Instant::now();
            match self.forward_once(backend, request) {
                Ok(response) => {
                    backend.forward.record(forwarded.elapsed());
                    backend.record_success(&self.counters);
                    // Served away from the affinity primary — whether the
                    // primary failed just now or was already ejected.
                    let rerouted = index != primary;
                    if rerouted {
                        self.counters.rerouted.inc();
                    }
                    trace.backend = Some(backend.addr.clone());
                    trace.rerouted = rerouted;
                    log_line(&format!(
                        "gateway: {cmd} -> {}{}",
                        backend.addr,
                        if rerouted { " (rerouted)" } else { "" }
                    ));
                    return Ok(response);
                }
                Err(err) => {
                    backend.record_failure(self.config.eject_after, &self.counters);
                    log_line(&format!(
                        "gateway: {cmd} -> {} failed (attempt {}): {err}",
                        backend.addr,
                        attempt + 1
                    ));
                    last_err = err.to_string();
                }
            }
        }
        Err(format!(
            "no backend answered `{cmd}` after {attempts} attempt(s): {last_err}"
        ))
    }

    /// The aggregated fleet `status` document.
    fn fleet_status(&self) -> String {
        let mut fleet = String::from("[");
        let mut healthy = 0usize;
        for (i, backend) in self.backends.iter().enumerate() {
            if i > 0 {
                fleet.push_str(", ");
            }
            let live = backend.healthy.load(Ordering::SeqCst);
            healthy += usize::from(live);
            // A passive probe: the backend's own status document embeds
            // verbatim (it is one JSON object) — `null` when unreachable.
            // Deliberately no record_success/failure here: `status` must
            // observe routing state, not steer it.
            let status = ServiceClient::connect_with(
                &backend.addr,
                ClientOptions {
                    connect_timeout: Some(self.config.connect_timeout),
                    read_timeout: Some(self.config.probe_read_timeout),
                },
            )
            .and_then(|mut client| client.call(&Request::Status))
            .ok()
            .filter(|response| response.ok)
            .map(|response| response.output);
            fleet.push_str(&format!(
                "{{\"addr\": {}, \"healthy\": {live}, \"consecutive_failures\": {}, \
                 \"status\": {}}}",
                crate::json::string(&backend.addr),
                backend.failures.load(Ordering::SeqCst),
                status.as_deref().unwrap_or("null")
            ));
        }
        fleet.push(']');
        // One registry snapshot, so `requests`/`errors` and the routing
        // counters cohere the same way a `metrics` scrape does.
        let snapshot = self.registry.snapshot();
        format!(
            "{{\"protocol\": {PROTOCOL_VERSION}, \"role\": \"gateway\", \"jobs\": {}, \
             \"backends\": {}, \"healthy\": {healthy}, \"requests\": {}, \"errors\": {}, \
             \"gateway\": {{\"routed\": {}, \"retried\": {}, \"rerouted\": {}, \
             \"ejected\": {}, \"readmitted\": {}}}, \"fleet\": {fleet}}}",
            self.config.jobs,
            self.backends.len(),
            snapshot.counter_sum("spec_gateway_requests_total"),
            snapshot.counter_sum_where("spec_gateway_requests_total", |labels| {
                labels.iter().any(|(k, v)| k == "outcome" && v == "error")
            }),
            self.counters.routed.get(),
            self.counters.retried.get(),
            self.counters.rerouted.get(),
            self.counters.ejected.get(),
            self.counters.readmitted.get(),
        )
    }

    /// The gateway `metrics` exposition: the gateway's own registry, then
    /// every reachable backend's exposition with a `backend="addr"` label
    /// spliced into each series so one scrape covers the whole fleet.
    /// `# HELP`/`# TYPE` lines dedupe per family across backends.
    fn metrics_output(&self) -> String {
        let mut out = self.registry.render();
        let mut seen_families = std::collections::BTreeSet::new();
        for backend in &self.backends {
            let scraped = ServiceClient::connect_with(
                &backend.addr,
                ClientOptions {
                    connect_timeout: Some(self.config.connect_timeout),
                    read_timeout: Some(self.config.probe_read_timeout),
                },
            )
            .and_then(|mut client| client.call(&Request::Metrics))
            .ok()
            .filter(|response| response.ok)
            .map(|response| response.output);
            let Some(scraped) = scraped else {
                continue; // unreachable backends contribute nothing
            };
            let label = format!("backend=\"{}\"", escape_label(&backend.addr));
            for line in scraped.lines() {
                if line.is_empty() {
                    continue;
                }
                if let Some(comment) = line.strip_prefix("# ") {
                    // "# HELP <name> ..." / "# TYPE <name> <kind>".
                    let family = comment.split_whitespace().nth(1).unwrap_or("");
                    if seen_families.insert((line.starts_with("# HELP"), family.to_string())) {
                        out.push_str(line);
                        out.push('\n');
                    }
                    continue;
                }
                // A series line: `name{labels} value` or `name value`.
                let spliced = match line.find('{') {
                    Some(brace) => {
                        format!("{}{{{label},{}", &line[..brace], &line[brace + 1..])
                    }
                    None => match line.find(' ') {
                        Some(space) => format!("{}{{{label}}}{}", &line[..space], &line[space..]),
                        None => line.to_string(),
                    },
                };
                out.push_str(&spliced);
                out.push('\n');
            }
        }
        out
    }

    /// One probe sweep: `status` to every backend, feeding the ejection /
    /// readmission state machine.  Ejected backends stay probed — this is
    /// the half-open path that readmits them.
    fn probe_sweep(&self) {
        for backend in &self.backends {
            let started = Instant::now();
            let alive = ServiceClient::connect_with(
                &backend.addr,
                ClientOptions {
                    connect_timeout: Some(self.config.connect_timeout),
                    read_timeout: Some(self.config.probe_read_timeout),
                },
            )
            .and_then(|mut client| client.call(&Request::Status))
            .map(|response| response.ok)
            .unwrap_or(false);
            if alive {
                // Only successful probes move the RTT gauge: a dead
                // backend keeps its last observed round trip.
                backend.probe_rtt.set(started.elapsed().as_secs_f64());
                backend.record_success(&self.counters);
            } else {
                backend.record_failure(self.config.eject_after, &self.counters);
            }
        }
    }
}

/// Runs the federation gateway on `listener` until a `shutdown` request
/// arrives, then drains the workers and returns the lifetime counters.
/// `shutdown` stops the *gateway* only — the backends are separate
/// processes with their own lifecycles.
///
/// # Errors
///
/// Propagates listener-level I/O errors; per-connection and per-backend
/// failures are handled by the retry and ejection machinery.
pub fn gateway(listener: TcpListener, config: &GatewayConfig) -> io::Result<GatewayReport> {
    let addr = listener.local_addr()?;
    // Declared before `state` so it drops after `state`'s sender clone,
    // letting the writer thread observe disconnect and drain the queue.
    let trace_log = config
        .trace_log
        .as_deref()
        .map(TraceLog::create)
        .transpose()?;
    let mut state = GatewayState::new(config.clone(), addr);
    state.trace = trace_log.as_ref().map(TraceLog::sender);
    let (tx, rx) = mpsc::channel::<GatewayJob>();
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        let rx = &rx;
        let state = &state;
        scope.spawn(move || probe_loop(state));
        for _ in 0..state.config.jobs.get() {
            scope.spawn(move || worker_loop(rx, state));
        }
        loop {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(err) => {
                    // Same transient-error stance as `serve`: outlive
                    // ECONNABORTED/EMFILE storms, re-check shutdown.
                    if err.kind() != io::ErrorKind::Interrupted {
                        log_line(&format!("gateway: accept error (retrying): {err}"));
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    continue;
                }
            };
            if state.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection of the shutdown path
            }
            let tx = tx.clone();
            scope.spawn(move || connection_loop(stream, tx, state));
        }
        drop(tx);
    });
    let snapshot = state.registry.snapshot();
    Ok(GatewayReport {
        requests: snapshot.counter_sum("spec_gateway_requests_total"),
        errors: snapshot.counter_sum_where("spec_gateway_requests_total", |labels| {
            labels.iter().any(|(k, v)| k == "outcome" && v == "error")
        }),
    })
}

fn probe_loop(state: &GatewayState) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        state.probe_sweep();
        // Sleep in slices so a shutdown releases the prober within a beat
        // even under a long probe interval.
        let mut remaining = state.config.probe_interval;
        while !remaining.is_zero() {
            if state.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining -= slice;
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<GatewayJob>>, state: &GatewayState) {
    loop {
        let job = {
            let rx = crate::cache_session::relock(rx);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // every sender is gone: drained
            }
        };
        let kind = request_kind(&job.request);
        let mut trace = RouteTrace::default();
        // The same containment stance as `serve`'s workers: a panic in the
        // routing path costs one error response, never the gateway.
        let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.route(&job.request, &mut trace)
        }))
        .unwrap_or_else(|payload| {
            Err(format!(
                "internal: request panicked: {}",
                panic_message(payload.as_ref())
            ))
        });
        let response = match routed {
            Ok(mut response) => {
                // The backend answered under its own (per-connection)
                // request id; the client gets its own id back.
                response.id = job.id;
                response
            }
            Err(message) => Response::failure(job.id, message),
        };
        // Counted before the bytes leave, so a scrape racing the response
        // still sees the request.
        let elapsed = job.enqueued.elapsed();
        state.requests.complete(kind, response.ok, Some(elapsed));
        write_response(&job.out, &response);
        if let Some(sender) = &state.trace {
            sender.emit(trace.render(job.id, kind, response.ok, elapsed));
        }
    }
}

fn connection_loop(stream: TcpStream, tx: mpsc::Sender<GatewayJob>, state: &GatewayState) {
    // The timeout is a shutdown poll, exactly as in `serve`.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    loop {
        let line = match read_line_capped(&mut reader, state.limits.max_bytes, &state.shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => return, // EOF or shutdown
            Err(err) => {
                state.requests.complete("invalid", false, None);
                write_response(&out, &Response::failure(None, err.to_string()));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json(&line, &state.limits) {
            Ok((id, Request::Status)) => {
                // Counted before rendering, so the document includes the
                // request that asked for it.
                state.requests.complete("status", true, None);
                write_response(&out, &Response::success(id, 0, state.fleet_status()));
            }
            Ok((id, Request::Metrics)) => {
                state.requests.complete("metrics", true, None);
                write_response(&out, &Response::success(id, 0, state.metrics_output()));
            }
            Ok((id, Request::Shutdown)) => {
                state.requests.complete("shutdown", true, None);
                log_line("gateway: shutdown requested");
                write_response(&out, &Response::success(id, 0, "shutting down".to_string()));
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(state.addr);
                return;
            }
            Ok((id, request)) => {
                let job = GatewayJob {
                    id,
                    request,
                    out: Arc::clone(&out),
                    enqueued: Instant::now(),
                };
                if tx.send(job).is_err() {
                    return; // the pool is gone: shutting down
                }
            }
            Err(message) => {
                state.requests.complete("invalid", false, None);
                write_response(&out, &Response::failure(None, message));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{PanelKind, PanelSpec};
    use crate::service::{serve, ServiceConfig};

    const TINY: &str = "program tiny\nregion t 128\nsecret_region k 128\nblock main entry:\n  load t[0]\n  load k[secret*64]\n  ret\n";
    const OTHER: &str = "program other\nregion t 128\nblock main entry:\n  load t[0]\n  ret\n";

    fn test_state(backends: Vec<String>) -> GatewayState {
        let config = GatewayConfig::builder(backends, NonZeroUsize::MIN)
            .eject_after(1)
            .retry_backoff(Duration::from_millis(1))
            .build()
            .unwrap();
        GatewayState::new(config, "127.0.0.1:0".parse().unwrap())
    }

    #[test]
    fn config_builder_validates() {
        let jobs = NonZeroUsize::new(2).unwrap();
        let config = GatewayConfig::builder(vec!["a:1".into(), "b:2".into()], jobs)
            .probe_interval(Duration::from_millis(100))
            .eject_after(2)
            .max_attempts(NonZeroUsize::new(5).unwrap())
            .build()
            .unwrap();
        assert_eq!(config.eject_after, 2);
        // Attempts clamp to the fleet size.
        assert_eq!(config.effective_attempts(), 2);

        assert_eq!(
            GatewayConfig::builder(vec![], jobs).build().unwrap_err(),
            GatewayConfigError::EmptyFleet
        );
        assert_eq!(
            GatewayConfig::builder(vec!["a:1".into()], jobs)
                .eject_after(0)
                .build()
                .unwrap_err(),
            GatewayConfigError::ZeroEjectAfter
        );
        assert_eq!(
            GatewayConfig::builder(vec!["a:1".into()], jobs)
                .max_request_bytes(0)
                .build()
                .unwrap_err(),
            GatewayConfigError::ZeroRequestCap
        );
    }

    #[test]
    fn rendezvous_ranking_is_stable_affine_and_spread() {
        let state = test_state(vec!["h:1".into(), "h:2".into(), "h:3".into()]);
        let request = Request::Analyze {
            source: TINY.to_string(),
            config: Default::default(),
        };
        let fp = routing_fingerprint(&request).expect("TINY parses");
        // Stable: the same fingerprint ranks identically every time.
        assert_eq!(state.ranked(Some(fp)), state.ranked(Some(fp)));
        // Structural: a rename-free reformat routes identically, and the
        // scan combination differs from the single-program fingerprint.
        let spaced = Request::Analyze {
            source: TINY.replace("  load", "  \t load"),
            config: Default::default(),
        };
        assert_eq!(routing_fingerprint(&spaced), Some(fp));
        let scan = Request::Scan {
            sources: vec![TINY.to_string()],
            panel: PanelSpec {
                kind: PanelKind::LeakCheck,
                cache_lines: 8,
            },
            json: true,
        };
        assert_ne!(routing_fingerprint(&scan), Some(fp));
        // Spread: over many distinct fingerprints every backend is some
        // program's primary (rendezvous, not a constant choice).
        let mut primaries = std::collections::BTreeSet::new();
        for seed in 0..64u64 {
            primaries.insert(state.ranked(Some(Fingerprint(seed.wrapping_mul(0x9e37))))[0]);
        }
        assert_eq!(primaries.len(), 3, "all backends serve as a primary");
        // Fingerprint-free requests rotate.
        let first = state.ranked(None)[0];
        let second = state.ranked(None)[0];
        assert_ne!(first, second, "round-robin rotates");
        // Unparseable sources have no fingerprint.
        let bad = Request::Analyze {
            source: "not a program".to_string(),
            config: Default::default(),
        };
        assert_eq!(routing_fingerprint(&bad), None);
    }

    #[test]
    fn ejection_prefers_healthy_and_readmits() {
        let state = test_state(vec!["h:1".into(), "h:2".into()]);
        let fp = Fingerprint(42);
        let ranked = state.ranked(Some(fp));
        let primary = ranked[0];
        // Eject the primary: the attempt order now leads with the other
        // backend, the primary trailing as the last resort.
        state.backends[primary].record_failure(1, &state.counters);
        assert!(!state.backends[primary].healthy.load(Ordering::SeqCst));
        assert_eq!(state.counters.ejected.get(), 1);
        assert_eq!(state.backends[primary].health.get(), 0.0);
        let order = state.attempt_order(&ranked);
        assert_eq!(order.last(), Some(&primary));
        assert_eq!(order.len(), 2);
        // A successful probe readmits (the half-open path).
        state.backends[primary].record_success(&state.counters);
        assert!(state.backends[primary].healthy.load(Ordering::SeqCst));
        assert_eq!(state.counters.readmitted.get(), 1);
        assert_eq!(state.backends[primary].health.get(), 1.0);
        assert_eq!(state.attempt_order(&ranked), ranked);
    }

    /// Starts an in-thread backend `serve` on an ephemeral port.
    fn spawn_backend() -> (
        String,
        std::thread::JoinHandle<io::Result<crate::service::ServiceReport>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let config = ServiceConfig::new(NonZeroUsize::MIN);
        (addr, std::thread::spawn(move || serve(listener, &config)))
    }

    #[test]
    fn gateway_loopback_routes_fails_over_and_aggregates() {
        let (addr_a, backend_a) = spawn_backend();
        let (addr_b, backend_b) = spawn_backend();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let gw_addr = listener.local_addr().unwrap().to_string();
        let config = GatewayConfig::builder(
            vec![addr_a.clone(), addr_b.clone()],
            NonZeroUsize::new(2).unwrap(),
        )
        // A long interval keeps the prober from racing the assertions
        // below; ejection still happens inline on the failed forward.
        .probe_interval(Duration::from_secs(60))
        .eject_after(1)
        .retry_backoff(Duration::from_millis(1))
        .build()
        .unwrap();
        let gw = std::thread::spawn(move || gateway(listener, &config));

        // Scan output is timing-free: byte-identity needs no strip.
        let scan = |source: &str| Request::Scan {
            sources: vec![source.to_string()],
            panel: PanelSpec {
                kind: PanelKind::LeakCheck,
                cache_lines: 8,
            },
            json: true,
        };
        let mut client = ServiceClient::connect(&gw_addr).unwrap();
        let first = client.call(&scan(TINY)).unwrap();
        assert!(first.ok, "{:?}", first.error);
        assert_eq!(first.exit, 1, "tiny leaks at 8 lines");
        // Affinity: the repeat lands on the same backend — exactly one
        // backend of the fleet holds the warm program.
        let repeat = client.call(&scan(TINY)).unwrap();
        assert_eq!(repeat.output, first.output);
        let programs_on = |addr: &str| {
            let mut direct = ServiceClient::connect(addr).unwrap();
            let status = direct.call(&Request::Status).unwrap();
            assert!(status.ok);
            status.output.contains("\"programs\": 1")
        };
        let on_a = programs_on(&addr_a);
        let on_b = programs_on(&addr_b);
        assert!(
            on_a != on_b,
            "affinity must pin the program to exactly one backend (a: {on_a}, b: {on_b})"
        );
        let (warm_addr, cold_addr) = if on_a {
            (addr_a.clone(), addr_b.clone())
        } else {
            (addr_b.clone(), addr_a.clone())
        };

        // A second program keeps both backends busy enough to prove the
        // fleet aggregation sees them both.
        let other = client.call(&scan(OTHER)).unwrap();
        assert!(other.ok, "{:?}", other.error);

        // Kill the backend holding `tiny`; the resubmission must be
        // transparently rerouted and stay byte-identical.
        let mut warm = ServiceClient::connect(&warm_addr).unwrap();
        assert!(warm.call(&Request::Shutdown).unwrap().ok);
        let (dead_join, live_join) = if on_a {
            (backend_a, backend_b)
        } else {
            (backend_b, backend_a)
        };
        dead_join.join().unwrap().unwrap();
        let failover = client.call(&scan(TINY)).unwrap();
        assert!(failover.ok, "{:?}", failover.error);
        assert_eq!(
            failover.output, first.output,
            "a rerouted response must be byte-identical"
        );

        // The fleet status shows the reroute, the ejection, and the
        // surviving backend's own counters.
        let status = client.call(&Request::Status).unwrap();
        assert!(status.ok);
        let doc = status.output;
        assert!(doc.contains("\"role\": \"gateway\""), "{doc}");
        assert!(doc.contains("\"backends\": 2"), "{doc}");
        assert!(doc.contains("\"healthy\": 1"), "{doc}");
        assert!(doc.contains("\"rerouted\": 1"), "{doc}");
        assert!(doc.contains("\"ejected\": 1"), "{doc}");
        assert!(
            doc.contains("\"status\": null"),
            "the dead backend reads null: {doc}"
        );
        assert!(
            doc.contains("\"inserted\""),
            "the live backend's session counters embed: {doc}"
        );
        assert!(doc.contains(&cold_addr), "{doc}");

        // The gateway `metrics` exposition carries its own series plus the
        // live backend's, relabeled; the dead backend reads as gauge 0.
        let metrics = client.call(&Request::Metrics).unwrap();
        assert!(metrics.ok);
        let exposition = metrics.output;
        assert!(
            exposition.contains("# TYPE spec_gateway_requests_total counter"),
            "{exposition}"
        );
        assert!(
            exposition.contains(&format!(
                "spec_gateway_backend_healthy{{backend=\"{cold_addr}\"}} 1.0"
            )),
            "{exposition}"
        );
        assert!(
            exposition.contains(&format!(
                "spec_gateway_backend_healthy{{backend=\"{warm_addr}\"}} 0.0"
            )),
            "{exposition}"
        );
        assert!(
            exposition.contains(&format!(
                "spec_requests_total{{backend=\"{cold_addr}\",kind=\"scan\",outcome=\"ok\"}}"
            )),
            "the live backend's own series fold in under its label: {exposition}"
        );

        // Requests with no fingerprint still answer (round-robin spread,
        // and the backend renders the parse error deterministically).
        let bad = client
            .call(&Request::Analyze {
                source: "not a program".to_string(),
                config: Default::default(),
            })
            .unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.exit, 2);

        let bye = client.call(&Request::Shutdown).unwrap();
        assert!(bye.ok);
        let report = gw.join().unwrap().unwrap();
        assert!(report.requests >= 6);

        let mut live = ServiceClient::connect(&cold_addr).unwrap();
        assert!(live.call(&Request::Shutdown).unwrap().ok);
        live_join.join().unwrap().unwrap();
    }
}
