//! Incremental diff-aware sessions: re-analyze only what changed.
//!
//! [`crate::session`] amortizes artifacts across *configurations* of one
//! program; this module amortizes them across *edits* of a workload.  The
//! paper's evaluation — and any tool living inside a developer's
//! modify-and-recheck loop — analyses the same programs over and over as
//! the code evolves, and before this module every edit threw the whole
//! session away.
//!
//! Three layers, all built on the structural fingerprints of
//! [`spec_ir::fingerprint`]:
//!
//! * [`SessionCache`] — the in-memory core.  It holds one
//!   [`PreparedProgram`] per program name; [`SessionCache::update`]
//!   fingerprints the newly parsed program and either **rebinds** the
//!   previous session wholesale (fingerprint unchanged: every memoized
//!   unroll variant, address map, VCFG and fixpoint round survives) or
//!   re-prepares it, reporting *where* the program changed as a
//!   [`ProgramDiff`] and rebinding the address maps whenever the edit left
//!   the region table untouched (the memory layout is a pure function of
//!   the regions).  In a multi-program session, editing one program leaves
//!   every other program's artifacts bound — the [`SessionStats`] counters
//!   prove it.  A long-lived holder bounds the session with
//!   [`SessionCache::max_session_bytes`]: resident entries are byte-
//!   accounted through [`spec_ir::heap::HeapSize`] and whole programs are
//!   evicted least-recently-used first, which trades re-preparation for
//!   memory but never changes a result.
//! * [`ScanSession`] + [`scan_bundle_incremental`] — cross-process
//!   persistence for `specan scan --session-dir`.  Fingerprints and the
//!   previous (deterministic, timing-free) [`BatchReport`] are stored on
//!   disk; the next scan re-analyses only the programs whose fingerprints
//!   changed and splices the stored verdicts of the untouched ones back
//!   into bundle order.
//! * [`AnalyzeSession`] — output replay for `specan analyze --incremental`,
//!   keyed on the canonical rendering of the program (which, unlike the
//!   structural fingerprint, is sensitive to names — `analyze` output
//!   embeds region and block names) plus the configuration signature.
//!
//! # The bit-identical guarantee
//!
//! Every reuse path returns results that serialize to **exactly the bytes**
//! a fresh analysis would produce, once the execution-describing fields
//! (wall clocks and cache counters, see [`Report::without_timing`]) are
//! stripped: rebinding reuses values that are pure functions of the
//! (structurally unchanged) program, and recomputation shares the one
//! deterministic solver with the fresh path.  The `incremental_equivalence`
//! property suite and the CI `incremental-gate` job hold this line.
//!
//! [`Report::without_timing`]: crate::session::Report::without_timing
//!
//! # Example
//!
//! ```rust
//! use spec_core::incremental::SessionCache;
//! use spec_core::session::comparison_configs;
//! use spec_cache::CacheConfig;
//! use spec_ir::builder::ProgramBuilder;
//! use spec_ir::IndexExpr;
//!
//! let build = |offset| {
//!     let mut b = ProgramBuilder::new("tiny");
//!     let t = b.region("t", 128, false);
//!     let entry = b.entry_block("entry");
//!     b.load(entry, t, IndexExpr::Const(offset));
//!     b.ret(entry);
//!     b.finish().unwrap()
//! };
//!
//! let mut session = SessionCache::new();
//! let configs = comparison_configs(CacheConfig::fully_associative(4, 64));
//! let first = session.update(&build(0));
//! first.prepared.run_suite(&configs);
//! // Re-parsing an unchanged program rebinds the whole session...
//! assert!(session.update(&build(0)).reused);
//! // ...while an edit re-prepares it and localises the change.
//! let edited = session.update(&build(64));
//! assert!(!edited.reused);
//! assert_eq!(edited.diff.unwrap().changed_blocks.len(), 1);
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spec_ir::fingerprint::{program_fingerprint, regions_fingerprint, Fingerprint, ProgramDiff};
use spec_ir::heap::HeapSize;
use spec_ir::text::parse_program;
use spec_ir::Program;

use crate::artifact::PreparedStore;
use crate::batch::{
    panel_checksum, BatchError, BatchReport, BundleStamp, PanelSpec, ProgramVerdict,
};
use crate::cache_session::{CacheOutcome, CacheSession};
use crate::json::{self, JsonValue};
use crate::session::{Analyzer, CacheStats, PreparedProgram};

/// Sentinel for "never measured/persisted at any stamp".
const STAMP_NEVER: u64 = u64::MAX;

/// One program's slot in a [`SessionCache`].
struct SessionEntry {
    /// Structural fingerprint of the prepared program.
    fingerprint: Fingerprint,
    /// Fingerprint of the region table alone (decides address-map reuse).
    regions: Fingerprint,
    /// Monotonic use tick: bumped by every lookup, reuse and install, so a
    /// byte budget evicts the least recently *used* program first.
    tick: u64,
    prepared: Arc<PreparedProgram>,
    /// Memoized [`SessionEntry::resident_bytes`] result, valid while the
    /// prepared session's growth stamp equals `size_stamp`.  Atomics (not a
    /// plain field) because measurement happens behind `&self` on the
    /// status/stats read path.
    size_bytes: AtomicU64,
    /// The [`PreparedProgram::growth_stamp`] at which `size_bytes` was
    /// measured ([`STAMP_NEVER`] = not yet measured).
    size_stamp: AtomicU64,
    /// The growth stamp at which this entry was last written to the
    /// artifact store; `None` means never persisted by this process.
    /// Dirty tracking for [`SessionCache::persist_dirty`].
    persisted: Option<u64>,
}

impl SessionEntry {
    fn new(
        fingerprint: Fingerprint,
        regions: Fingerprint,
        tick: u64,
        prepared: Arc<PreparedProgram>,
        persisted: Option<u64>,
    ) -> Self {
        Self {
            fingerprint,
            regions,
            tick,
            prepared,
            size_bytes: AtomicU64::new(0),
            size_stamp: AtomicU64::new(STAMP_NEVER),
            persisted,
        }
    }

    /// The deterministic [`HeapSize`] estimate of everything this slot
    /// keeps alive: the slot itself, its key string, and the prepared
    /// session with every memoized artifact.
    ///
    /// The walk over the memo tables is the expensive part, and a resident
    /// entry only grows when a run populates an artifact cache — which is
    /// exactly when its [`PreparedProgram::growth_stamp`] moves.  So the
    /// measurement is memoized per stamp: entries whose caches did not grow
    /// since the last enforcement point answer from the memo, entries that
    /// did are re-walked.  The measurement function itself is unchanged, so
    /// the `session: N bytes` accounting is identical to an unmemoized
    /// re-measure.
    fn resident_bytes(&self, name: &str) -> u64 {
        let stamp = self.prepared.growth_stamp();
        if self.size_stamp.load(Ordering::Acquire) == stamp {
            return self.size_bytes.load(Ordering::Relaxed);
        }
        let bytes = (std::mem::size_of::<Self>() + name.len() + self.prepared.heap_size()) as u64;
        // Benign race: the measurement is a pure function of the stamp, so
        // concurrent writers store identical values.  Release/Acquire on
        // the stamp orders it after its bytes.
        self.size_bytes.store(bytes, Ordering::Relaxed);
        self.size_stamp.store(stamp, Ordering::Release);
        bytes
    }
}

/// Which tier served a [`SessionCache::lookup_tiered`] hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionTier {
    /// The in-memory entry table (a warm reuse).
    Memory,
    /// The on-disk artifact store (deserialized, now resident in memory).
    Store,
}

/// Lifetime counters of a [`SessionCache`] — the evidence that an edit to
/// one program did not disturb the others.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Updates that rebound an existing session wholesale (fingerprint
    /// unchanged — renames and formatting included).
    pub reused: u64,
    /// Updates that re-prepared a program because its structure changed.
    pub invalidated: u64,
    /// Updates that introduced a program the session had not seen.
    pub inserted: u64,
    /// Address-map tables rebound across an invalidation because the edit
    /// left the region table structurally unchanged.
    pub amaps_adopted: u64,
    /// Whole [`PreparedProgram`]s evicted by the byte budget
    /// ([`SessionCache::max_session_bytes`]), least recently used first.
    /// Replacements of an entry under the same name are *not* evictions —
    /// so `inserted - session_evictions` (minus explicit removals) is the
    /// number of resident entries, the invariant the eviction-equivalence
    /// suite reconciles.
    pub session_evictions: u64,
    /// Resident bytes at snapshot time: the summed [`HeapSize`] estimate
    /// of every held entry.  After an enforcement point this never exceeds
    /// the configured budget.
    pub session_bytes: u64,
    /// Cache misses answered by deserializing a prepared session from the
    /// on-disk artifact store instead of a cold preparation.
    pub store_hits: u64,
    /// Store lookups that found no usable artifact (missing file, rejected
    /// file, or a fingerprint collision under different names) and fell
    /// through to a cold preparation.  Zero when no store is configured.
    pub store_misses: u64,
    /// Total payload bytes deserialized across every store hit.
    pub store_loaded_bytes: u64,
    /// Acquires served from a worker's thread-local L0 tier without taking
    /// the session lock (see [`crate::cache_session::CacheSession`]).  Zero
    /// for sessions driven directly, without a `CacheSession` front.
    pub l0_hits: u64,
    /// Acquires served by the shared in-memory L1 tier (a warm rebind under
    /// the lock) through a `CacheSession`.  Zero for directly driven
    /// sessions, whose warm rebinds count as [`SessionStats::reused`] only.
    pub l1_hits: u64,
    /// The session's invalidation generation at snapshot time: bumped on
    /// every entry replacement (edit-driven re-prepare or rename install),
    /// budget eviction and removal, so lock-free L0 tiers can detect that
    /// their pinned handles may be stale without cross-thread coordination.
    pub generation: u64,
}

/// What [`SessionCache::update`] did for one program.
pub struct SessionUpdate {
    /// The session to run configurations against — rebound or freshly
    /// prepared.
    pub prepared: Arc<PreparedProgram>,
    /// `true` iff the previous session survived the update wholesale.
    pub reused: bool,
    /// Where the program changed relative to the previous snapshot.
    /// `None` for programs the session had not seen before; for reused
    /// updates the diff exists and [`ProgramDiff::is_identical`] holds.
    pub diff: Option<ProgramDiff>,
}

/// A multi-program analysis session that survives edits: prepared artifacts
/// are invalidated per program, by structural fingerprint, instead of being
/// discarded with every re-parse.  See the module docs.
pub struct SessionCache {
    analyzer: Analyzer,
    entries: HashMap<String, SessionEntry>,
    stats: SessionStats,
    /// Byte budget over the summed [`HeapSize`] estimates of every entry;
    /// `None` is unbounded (the pre-budget behaviour).
    max_bytes: Option<u64>,
    /// Monotonic source of the entries' use ticks.
    tick: u64,
    /// Invalidation generation, shared (via `Arc`) with any lock-free L0
    /// tier fronting this cache.  Bumped on every entry replacement,
    /// eviction and removal — the events after which an L0-pinned handle
    /// may no longer match what this cache would serve.  Fresh-name inserts
    /// do *not* bump: they cannot make any existing handle stale.
    generation: Arc<AtomicU64>,
    /// Coarse tick of the last [`SessionCache::enforce_budget`] pass that
    /// left the session within budget: `(entry count, summed growth
    /// stamps)`.  Growth stamps are monotone and resident sizes are pure
    /// functions of them, so an unchanged tick over an unchanged entry set
    /// proves the sizes did not move — the enforcement pass (sort plus
    /// re-measure) is skipped.  Cleared by every entry-set mutation.
    budget_mark: Option<(usize, u64)>,
    /// Optional on-disk tier below the in-memory entries: misses try a
    /// fingerprint-keyed artifact load before falling back to a cold
    /// preparation, installs write through, and evictions persist dirty
    /// entries first.
    store: Option<PreparedStore>,
}

impl SessionCache {
    /// An empty session with default [`Analyzer`] settings.
    pub fn new() -> Self {
        Self::with_analyzer(Analyzer::new())
    }

    /// An empty session whose programs are prepared by `analyzer` (thread
    /// caps, round-cache bounds).
    pub fn with_analyzer(analyzer: Analyzer) -> Self {
        Self {
            analyzer,
            entries: HashMap::new(),
            stats: SessionStats::default(),
            max_bytes: None,
            tick: 0,
            generation: Arc::new(AtomicU64::new(0)),
            budget_mark: None,
            store: None,
        }
    }

    /// The analyzer this cache prepares programs with.
    pub(crate) fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// A shared handle on the invalidation generation, for lock-free L0
    /// tiers: reading it never takes the session lock, and a changed value
    /// means some entry was replaced, evicted or removed since the reader
    /// last synchronized.
    pub(crate) fn generation_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.generation)
    }

    /// The current invalidation generation.
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Records an event after which a previously handed-out `Arc` handle
    /// may disagree with what this cache would serve for the same name.
    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Forgets the coarse budget tick: the entry set is about to change, so
    /// the next [`SessionCache::enforce_budget`] must run a full pass.
    fn touch_entries(&mut self) {
        self.budget_mark = None;
    }

    /// Attaches an on-disk artifact store as a second tier below memory.
    /// Misses consult the store before a cold preparation
    /// ([`SessionCache::lookup_tiered`], [`SessionCache::update`]),
    /// installs write through, and budget evictions persist dirty entries
    /// before dropping them.  The store never changes results: a load is
    /// accepted only when the decoded program compares equal to the
    /// requested one, and every rejected or missing artifact falls back to
    /// the cold path.
    pub fn artifact_store(mut self, store: PreparedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// `true` iff an on-disk artifact tier is configured.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&PreparedStore> {
        self.store.as_ref()
    }

    /// Bounds the session to at most `bytes` resident bytes (the
    /// deterministic [`HeapSize`] estimate — see `spec_ir::heap` for what
    /// it counts), evicting whole [`PreparedProgram`]s in least recently
    /// used order whenever an enforcement point finds the session over
    /// budget.  Enforcement points are [`SessionCache::update`],
    /// [`SessionCache::install`], and explicit
    /// [`SessionCache::enforce_budget`] calls (which long-running holders
    /// make after every request, because running configurations grows the
    /// memoized artifacts of a resident entry).
    ///
    /// Eviction never changes results: an evicted program is simply
    /// re-prepared on its next sighting, and the one deterministic solver
    /// reproduces every artifact bit-identically.  A budget smaller than a
    /// single entry degenerates to re-preparing on every request — slow,
    /// never wrong.
    pub fn max_session_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.max_bytes
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// The summed byte estimate of every resident entry, re-measured now.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(name, entry)| entry.resident_bytes(name))
            .sum()
    }

    /// Re-measures every entry and evicts the least recently used whole
    /// programs until the session fits its byte budget (a no-op without
    /// one).  Returns the number of entries evicted by this call.
    ///
    /// Measurement happens here — not at install time — because a resident
    /// entry keeps growing as requests populate its memoized unrolls,
    /// VCFGs and fixpoint rounds; budget holders therefore call this after
    /// every request, and the resident-bytes invariant holds at every
    /// request boundary.
    ///
    /// The full pass (sort every entry, re-measure the grown ones) is
    /// skipped when a coarse tick proves nothing could have changed: the
    /// entry set is untouched since the last in-budget pass and no entry's
    /// growth stamp moved, so every resident size — a pure function of the
    /// stamp — is exactly what the last pass already verified fits.
    pub(crate) fn enforce_budget(&mut self) -> u64 {
        let Some(budget) = self.max_bytes else {
            return 0;
        };
        let coarse_tick = |entries: &HashMap<String, SessionEntry>| {
            let stamps: u64 = entries
                .values()
                .map(|entry| entry.prepared.growth_stamp())
                .sum();
            (entries.len(), stamps)
        };
        if self.budget_mark == Some(coarse_tick(&self.entries)) {
            return 0;
        }
        let mut sizes: Vec<(u64, u64, String)> = self
            .entries
            .iter()
            .map(|(name, entry)| (entry.tick, entry.resident_bytes(name), name.clone()))
            .collect();
        // Oldest tick first; the most recently used entry is the last
        // eviction candidate (and is evicted too when it alone overflows
        // the budget — the bound is strict).
        sizes.sort();
        let mut resident: u64 = sizes.iter().map(|(_, bytes, _)| bytes).sum();
        let mut evicted = 0;
        for (_, bytes, name) in &sizes {
            if resident <= budget {
                break;
            }
            // An evicted entry's memoized artifacts are about to leave
            // memory; flush them to the store tier first (when one is
            // configured and the entry grew since its last write) so the
            // next sighting loads instead of re-preparing.  A failed write
            // is not an error — the cold path reproduces everything.
            if let (Some(store), Some(entry)) = (self.store.as_ref(), self.entries.get(name)) {
                if entry.persisted != Some(entry.prepared.growth_stamp()) {
                    let _ = store.save(&entry.prepared);
                }
            }
            self.entries.remove(name);
            resident -= bytes;
            evicted += 1;
        }
        if evicted > 0 {
            // Evicted handles may still be pinned by an L0 tier; bumping
            // lets those workers drop them (a memory bound, not a
            // correctness one — an evicted-but-identical handle still
            // answers byte-identically).
            self.bump_generation();
        }
        self.stats.session_evictions += evicted;
        self.budget_mark = Some(coarse_tick(&self.entries));
        evicted
    }

    /// Brings the session up to date with (a freshly parsed version of)
    /// `program` and returns the prepared session to run against.
    ///
    /// Programs are identified by name.  If the program is identical to
    /// the previous snapshot (fingerprint filter plus full comparison —
    /// the fingerprint alone is name-free and would rebind across a pure
    /// rename, serving stale names), the existing [`PreparedProgram`] —
    /// with every memoized artifact — is rebound; otherwise the program is
    /// re-prepared, and when the region table is structurally unchanged
    /// the previous session's address maps are adopted wholesale and its
    /// fixpoint summaries are offered as per-block seeds (unchanged blocks
    /// transplant their converged states; edited blocks and their
    /// transitive dependents re-solve — see `spec_core::summary`).
    pub fn update(&mut self, program: &Program) -> SessionUpdate {
        self.update_inner(program, true)
    }

    /// First half of the two-phase resolve for lock-averse callers: the
    /// warm session when the structural fingerprint matches the snapshot
    /// (counted as a reuse), `None` otherwise.  On a miss the caller runs
    /// the expensive [`Analyzer::prepare`] **outside** its lock and offers
    /// the result back through [`SessionCache::install`] — the analysis
    /// service's worker pool must not serialize every request behind one
    /// cold preparation.
    ///
    /// Crate-internal since the `CacheSession` redesign: external callers
    /// sequence the two-phase resolve through
    /// [`crate::cache_session::CacheSession::acquire`] instead.
    pub(crate) fn lookup_warm(&mut self, program: &Program) -> Option<Arc<PreparedProgram>> {
        let tick = self.next_tick();
        match self.entries.get_mut(program.name()) {
            // Matched by the name-free structural fingerprint: a pure
            // rename (same structure, different region or block names)
            // still answers warm here.  Callers that need name-exact
            // resolution compare the returned session's program themselves
            // — `CacheSession::acquire` classifies a mismatch as a
            // `renamed` miss, and [`SessionCache::update`] rebinds the
            // entry to the renamed program (adopting its artifacts) — so
            // the structural tier keeps serving rename-insensitive outputs
            // without leaking stale names into name-exact ones.
            Some(entry) if entry.fingerprint == program_fingerprint(program) => {
                self.stats.reused += 1;
                entry.tick = tick;
                Some(entry.prepared.clone())
            }
            _ => None,
        }
    }

    /// Two-tier resolve: the in-memory warm session first (exactly
    /// [`SessionCache::lookup_warm`]), then — when an artifact store is
    /// configured — a fingerprint-keyed disk load, deserialized, verified
    /// against the requested program and installed as a resident entry.
    /// Returns which tier answered; `None` means the caller must prepare
    /// cold and [`SessionCache::install`] the result.
    ///
    /// The store is keyed by the name-free structural fingerprint while a
    /// prepared session embeds names, so a load is accepted only when the
    /// decoded program compares equal to `program` — a rename falls
    /// through to the cold path instead of serving stale names.
    ///
    /// Crate-internal since the `CacheSession` redesign (see
    /// [`SessionCache::lookup_warm`]).
    pub(crate) fn lookup_tiered(
        &mut self,
        program: &Program,
    ) -> Option<(Arc<PreparedProgram>, SessionTier)> {
        if let Some(prepared) = self.lookup_warm(program) {
            return Some((prepared, SessionTier::Memory));
        }
        self.store.as_ref()?;
        let (prepared, stamp) = self.load_from_store(program)?;
        let prepared = self.install_with(prepared, Some(stamp));
        Some((prepared, SessionTier::Store))
    }

    /// Attempts a store load for `program`, counting hits/misses and
    /// loaded bytes.  Returns the deserialized session plus its growth
    /// stamp (its "already persisted at" mark — the on-disk bytes are what
    /// we just read).  Does not install.
    fn load_from_store(&mut self, program: &Program) -> Option<(Arc<PreparedProgram>, u64)> {
        let store = self.store.as_ref()?;
        let fingerprint = program_fingerprint(program);
        match store.load(&self.analyzer, fingerprint) {
            Some((prepared, bytes)) if prepared.program() == program => {
                self.stats.store_hits += 1;
                self.stats.store_loaded_bytes += bytes;
                let stamp = prepared.growth_stamp();
                Some((Arc::new(prepared), stamp))
            }
            _ => {
                self.stats.store_misses += 1;
                None
            }
        }
    }

    /// Writes `prepared` to the store tier now, returning the growth stamp
    /// the write captured (`None` when no store is configured or the write
    /// failed — the entry then stays dirty for a later attempt).
    fn persist_now(&self, prepared: &PreparedProgram) -> Option<u64> {
        let store = self.store.as_ref()?;
        let stamp = prepared.growth_stamp();
        store.save(prepared).ok()?;
        Some(stamp)
    }

    /// Writes every resident entry whose memoized artifacts grew since its
    /// last store write back to the artifact store.  Long-running holders
    /// call this at request boundaries (next to
    /// [`SessionCache::enforce_budget`]) so a restart finds warm artifacts
    /// on disk.  Returns the number of entries written; a no-op without a
    /// configured store.  External holders reach it through
    /// `CacheSession::checkpoint`.
    pub(crate) fn persist_dirty(&mut self) -> u64 {
        let SessionCache { store, entries, .. } = self;
        let Some(store) = store.as_ref() else {
            return 0;
        };
        let mut wrote = 0;
        for entry in entries.values_mut() {
            let stamp = entry.prepared.growth_stamp();
            if entry.persisted == Some(stamp) {
                continue;
            }
            if store.save(&entry.prepared).is_ok() {
                entry.persisted = Some(stamp);
                wrote += 1;
            }
        }
        wrote
    }

    /// Second half of the two-phase resolve: installs an externally
    /// prepared session, replacing whatever the name currently maps to
    /// (adopting the predecessor's address maps when the region table is
    /// structurally unchanged, exactly like [`SessionCache::update`] — a
    /// rename-only replacement qualifies trivially).  Every replacement
    /// counts as an invalidation, renames included, so the counters show a
    /// re-preparation happened even when the structural fingerprint did
    /// not move.  Last-writer-wins by design: racing cold preparations of
    /// one program produce interchangeable sessions, and the
    /// name-sensitive service path relies on replacement to retire a
    /// rebound entry whose *names* went stale.
    ///
    /// With an artifact store configured the installed session is written
    /// through to disk, so a later restart loads it instead of preparing.
    ///
    /// Crate-internal since the `CacheSession` redesign: external callers
    /// commit cold preparations through `PrepareGuard::commit` (see
    /// [`SessionCache::lookup_warm`]).
    pub(crate) fn install(&mut self, prepared: Arc<PreparedProgram>) -> Arc<PreparedProgram> {
        // The donor lookup must precede the write-through: persisting
        // repoints the store's name index at the incoming session itself.
        if !self.entries.contains_key(prepared.program().name()) {
            self.adopt_store_donor(&prepared);
        }
        let persisted = self.persist_now(&prepared);
        self.install_with(prepared, persisted)
    }

    /// Cross-restart compositional reuse: a fresh-name install may still
    /// have a *predecessor* on the store tier — the artifact last persisted
    /// under this program's name, found through the store's name index
    /// (fingerprints alone are name-free, so after an edit nothing else
    /// connects the new program to its donor).  A region-table-preserving
    /// predecessor donates address maps and fixpoint summaries exactly like
    /// an in-memory one; the per-block structural gates at seeding time
    /// keep a stale or colliding index harmless.
    fn adopt_store_donor(&mut self, prepared: &Arc<PreparedProgram>) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let Some(donor) = store.donor(
            &self.analyzer,
            prepared.program().name(),
            prepared.fingerprint(),
        ) else {
            return;
        };
        if regions_fingerprint(donor.program().regions())
            == regions_fingerprint(prepared.program().regions())
        {
            self.stats.amaps_adopted += prepared.adopt_address_maps(&donor);
            prepared.adopt_summaries(&donor);
        }
    }

    fn install_with(
        &mut self,
        prepared: Arc<PreparedProgram>,
        persisted: Option<u64>,
    ) -> Arc<PreparedProgram> {
        let fingerprint = prepared.fingerprint();
        let regions = regions_fingerprint(prepared.program().regions());
        let name = prepared.program().name().to_string();
        let tick = self.next_tick();
        self.touch_entries();
        match self.entries.get_mut(&name) {
            Some(entry) => {
                self.stats.invalidated += 1;
                if entry.regions == regions {
                    self.stats.amaps_adopted += prepared.adopt_address_maps(&entry.prepared);
                    // Same gate for the fixpoint summaries: the donor's
                    // converged states embed its memory layout, so only a
                    // region-table-preserving replacement may seed from
                    // them.  Block-level invalidation happens later, when
                    // the matching unroll variant is built.
                    prepared.adopt_summaries(&entry.prepared);
                }
                *entry = SessionEntry::new(fingerprint, regions, tick, prepared.clone(), persisted);
                // The replaced handle may still be pinned by an L0 tier —
                // and, names being part of a prepared session, may now
                // serve stale names for this key.  Fresh-name inserts skip
                // the bump: no existing handle can go stale.
                self.bump_generation();
            }
            None => {
                self.stats.inserted += 1;
                self.entries.insert(
                    name,
                    SessionEntry::new(fingerprint, regions, tick, prepared.clone(), persisted),
                );
            }
        }
        self.enforce_budget();
        prepared
    }

    fn update_inner(&mut self, program: &Program, want_diff: bool) -> SessionUpdate {
        let fingerprint = program_fingerprint(program);
        let regions = regions_fingerprint(program.regions());
        let name = program.name().to_string();
        let tick = self.next_tick();
        if let Some(entry) = self.entries.get_mut(&name) {
            if entry.fingerprint == fingerprint {
                entry.tick = tick;
                let diff = want_diff.then(|| ProgramDiff::between(entry.prepared.program(), program));
                // The fingerprint is name-free, so an equal print does not
                // mean an equal program: serving the cached handle across a
                // pure rename would leak the pre-edit region and block
                // names into classification output.  Rebind a fresh session
                // to the renamed program instead and transplant the
                // artifacts — address maps verbatim (the region table is
                // structurally identical) and every block summary as a
                // fixpoint seed — so the next run re-derives *names*, not
                // fixpoints.
                let renamed = entry.prepared.program() != program;
                let adopted = if renamed {
                    let rebound = Arc::new(entry.prepared.rebound(program));
                    let adopted = rebound.adopt_address_maps(&entry.prepared);
                    rebound.adopt_summaries(&entry.prepared);
                    entry.prepared = rebound;
                    adopted
                } else {
                    0
                };
                let prepared = entry.prepared.clone();
                self.stats.reused += 1;
                self.stats.amaps_adopted += adopted;
                if renamed {
                    // The entry was replaced: unseat stale L0 seeds, like
                    // every other rebind (see `install_with`).
                    self.bump_generation();
                }
                return SessionUpdate {
                    prepared,
                    reused: true,
                    diff,
                };
            }
        }
        // Structural miss: diff against the predecessor (if any) first,
        // then resolve the new session — from the store tier when it has a
        // matching artifact, by cold preparation otherwise (written
        // through to the store so the next miss loads).
        let diff = match self.entries.get(&name) {
            Some(entry) => {
                want_diff.then(|| ProgramDiff::between(entry.prepared.program(), program))
            }
            None => None,
        };
        let (prepared, persisted) = match self.load_from_store(program) {
            Some((prepared, stamp)) => (prepared, Some(stamp)),
            None => {
                let prepared = Arc::new(self.analyzer.prepare(program));
                // No previous snapshot in memory: the store tier may still
                // hold this name's predecessor as a summary donor (and the
                // lookup must precede the write-through below, which
                // repoints the name index at the fresh session).
                if !self.entries.contains_key(&name) {
                    self.adopt_store_donor(&prepared);
                }
                let persisted = self.persist_now(&prepared);
                (prepared, persisted)
            }
        };
        self.touch_entries();
        match self.entries.get_mut(&name) {
            Some(entry) => {
                self.stats.invalidated += 1;
                if entry.regions == regions {
                    self.stats.amaps_adopted += prepared.adopt_address_maps(&entry.prepared);
                    // The compositional-reuse handoff (see the same call in
                    // `install_with`): the re-prepared session seeds the
                    // unchanged blocks' fixpoint states from the replaced
                    // snapshot, localised per block by the same structural
                    // identity `ProgramDiff` reports — only edited blocks
                    // and their transitive dependents re-solve.
                    prepared.adopt_summaries(&entry.prepared);
                }
                *entry = SessionEntry::new(fingerprint, regions, tick, prepared.clone(), persisted);
                // Edit-driven re-prepare: see the same bump in
                // `install_with`.
                self.bump_generation();
            }
            None => {
                self.stats.inserted += 1;
                self.entries.insert(
                    name,
                    SessionEntry::new(fingerprint, regions, tick, prepared.clone(), persisted),
                );
            }
        }
        self.enforce_budget();
        SessionUpdate {
            prepared,
            reused: false,
            diff,
        }
    }

    /// The prepared session of a program, if it is cached.
    pub fn get(&self, name: &str) -> Option<&Arc<PreparedProgram>> {
        self.entries.get(name).map(|entry| &entry.prepared)
    }

    /// Number of programs currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no program is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The session's lifetime reuse/invalidation counters, with
    /// [`SessionStats::session_bytes`] measured at call time.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            session_bytes: self.resident_bytes(),
            generation: self.generation(),
            ..self.stats
        }
    }

    /// Aggregated artifact-cache counters across every held program — the
    /// per-program [`PreparedProgram::cache_stats`] summed up.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for entry in self.entries.values() {
            let s = entry.prepared.cache_stats();
            total.core_hits += s.core_hits;
            total.core_misses += s.core_misses;
            total.amap_hits += s.amap_hits;
            total.amap_misses += s.amap_misses;
            total.amap_adopted += s.amap_adopted;
            total.vcfg_hits += s.vcfg_hits;
            total.vcfg_misses += s.vcfg_misses;
            total.round_hits += s.round_hits;
            total.round_misses += s.round_misses;
            total.round_evictions += s.round_evictions;
            total.summary_hits += s.summary_hits;
            total.summary_misses += s.summary_misses;
            total.summaries_invalidated += s.summaries_invalidated;
        }
        total.session_evictions = self.stats.session_evictions;
        total.session_bytes = self.resident_bytes();
        total.store_hits = self.stats.store_hits;
        total.store_misses = self.stats.store_misses;
        total.store_loaded_bytes = self.stats.store_loaded_bytes;
        // `l0_hits`/`l1_hits` stay zero here: those tiers live in front of
        // this cache (inside `CacheSession`), which overlays its own
        // counters on this snapshot.
        total.generation = self.generation();
        total
    }
}

impl Default for SessionCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Version stamp of the on-disk session formats.  Bumped whenever the
/// fingerprint encoding or the file layout changes; a mismatch makes the
/// loader fall back to a cold start (which is always sound — the session is
/// a pure accelerator).
///
/// v2: [`BatchReport`] grew the bundle stamp and per-program fingerprints.
const SESSION_FORMAT_VERSION: u64 = 2;

const SCAN_SESSION_FILE: &str = "scan-session.json";

/// The persisted state of an incremental bundle scan: the previous merged
/// report plus one structural fingerprint per program, stored as **one**
/// JSON document under a caller-chosen session directory — one document so
/// the temp-file-plus-rename replacement is atomic as a whole, and a crash
/// can never pair fingerprints from one scan with verdicts from another.
pub struct ScanSession {
    dir: PathBuf,
}

impl ScanSession {
    /// Opens (without reading) the session stored under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory this session persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the previous scan's verdicts and fingerprints, keyed by
    /// program name.  Any defect — a missing file, malformed JSON, a
    /// version or panel mismatch — yields `None` (a cold start), never an
    /// error: the session is an accelerator, and the fallback is simply a
    /// full re-analysis with identical results.
    fn load(&self, panel: PanelSpec) -> Option<HashMap<String, (Fingerprint, ProgramVerdict)>> {
        let text = std::fs::read_to_string(self.dir.join(SCAN_SESSION_FILE)).ok()?;
        let value = JsonValue::parse(&text).ok()?;
        if value.get("version").and_then(JsonValue::as_u64) != Some(SESSION_FORMAT_VERSION) {
            return None;
        }
        // The report travels as an embedded JSON string so the whole
        // session is one atomically-replaced document while reusing
        // `BatchReport`'s own (de)serialization.
        let report =
            BatchReport::from_json(value.get("report").and_then(JsonValue::as_str)?).ok()?;
        if report.panel != panel {
            return None;
        }
        let mut fingerprints = HashMap::new();
        for entry in value.get("fingerprints").and_then(JsonValue::as_array)? {
            let program = entry.get("program").and_then(JsonValue::as_str)?;
            let fingerprint =
                Fingerprint::from_hex(entry.get("fingerprint").and_then(JsonValue::as_str)?)?;
            fingerprints.insert(program.to_string(), fingerprint);
        }
        let mut entries = HashMap::new();
        for verdict in report.programs {
            if let Some(fingerprint) = fingerprints.get(&verdict.report.program) {
                // A verdict whose own fingerprint disagrees with the keyed
                // one is a corrupted pairing; dropping it just re-analyses.
                if verdict.fingerprint != *fingerprint {
                    continue;
                }
                entries.insert(verdict.report.program.clone(), (*fingerprint, verdict));
            }
        }
        Some(entries)
    }

    /// Persists `report` and the given per-program fingerprints as one
    /// document, replacing the previous snapshot atomically (temp file +
    /// rename): a crashed scan leaves the old session intact, and no crash
    /// point can mix fingerprints and verdicts from different scans.
    fn store(
        &self,
        report: &BatchReport,
        fingerprints: &[(String, Fingerprint)],
    ) -> Result<(), BatchError> {
        let io_err = |path: &Path| {
            let path = path.to_path_buf();
            move |error| BatchError::Io { path, error }
        };
        std::fs::create_dir_all(&self.dir).map_err(io_err(&self.dir))?;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {SESSION_FORMAT_VERSION},\n"));
        out.push_str("  \"fingerprints\": [\n");
        for (i, (program, fingerprint)) in fingerprints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"program\": {}, \"fingerprint\": {}}}{}\n",
                json::string(program),
                json::string(&fingerprint.to_hex()),
                if i + 1 == fingerprints.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"report\": {}\n}}",
            json::string(&report.to_json())
        ));
        let target = self.dir.join(SCAN_SESSION_FILE);
        let temp = self
            .dir
            .join(format!("{SCAN_SESSION_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&temp, out).map_err(io_err(&temp))?;
        std::fs::rename(&temp, &target).map_err(io_err(&target))
    }
}

/// What an incremental scan did, alongside its (deterministic) report.
pub struct ScanOutcome {
    /// The merged bundle report — byte-identical to what a fresh
    /// [`run_bundle`] over the same files produces.
    pub report: BatchReport,
    /// Programs whose verdicts were spliced in from the stored session.
    pub reused: usize,
    /// Programs that were (re-)analysed this scan.
    pub analyzed: usize,
    /// The error that prevented the refreshed session from being written,
    /// if any.  Non-fatal by design: the report above is complete and
    /// correct either way, only the *next* scan loses its warm start.
    pub store_error: Option<BatchError>,
}

/// Runs a bundle scan against a persisted [`ScanSession`]: programs whose
/// structural fingerprints match the stored snapshot reuse their stored
/// verdicts wholesale; only the changed (or new) programs are analysed —
/// fanned `jobs` ways over one shared [`CacheSession`] front, whose
/// acquire/commit protocol runs every cold preparation outside the session
/// lock — and the refreshed session is written back.
///
/// The returned report is **bit-identical** to a fresh
/// [`crate::batch::run_bundle`] over the same files: stored verdicts are
/// timing-free pure functions of (program structure, panel), fresh ones run
/// the exact per-program pipeline of a fresh shard, and renames — which the
/// fingerprint ignores — cannot appear in a [`BatchReport`], whose only
/// name, the program name, is the session key itself.
///
/// Files saved *while the scan runs* cannot poison the session: the
/// programs parsed by the fingerprint pass are the programs analysed — the
/// file is never read twice — so a persisted fingerprint always keys the
/// verdict of exactly that content.
///
/// # Errors
///
/// [`BatchError::Io`]/[`BatchError::Parse`] for unreadable or invalid
/// files, [`BatchError::DuplicateProgram`] for a repeated program name and
/// [`BatchError::InvalidPanel`] for a degenerate panel.  Session defects
/// are never errors: a missing or corrupt session degrades to a cold scan,
/// and a session that cannot be written back (read-only cache volume, full
/// disk) is reported through [`ScanOutcome::store_error`] while the
/// completed report — and with it the CI leak verdict — is still returned.
pub fn scan_bundle_incremental(
    files: &[PathBuf],
    panel: PanelSpec,
    jobs: usize,
    session: &ScanSession,
) -> Result<ScanOutcome, BatchError> {
    if files.is_empty() {
        return Err(BatchError::NoPrograms);
    }
    // Parse and fingerprint the bundle once.  The parsed programs feed the
    // analysis below directly, so a file saved mid-scan can never pair this
    // pass's fingerprint with a verdict of newer content.
    let mut bundle: Vec<(String, Program, Fingerprint)> = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(path).map_err(|error| BatchError::Io {
            path: path.clone(),
            error,
        })?;
        let program = parse_program(&source).map_err(|err| BatchError::Parse {
            path: path.clone(),
            message: err.to_string(),
        })?;
        let name = program.name().to_string();
        if bundle.iter().any(|(n, _, _)| *n == name) {
            return Err(BatchError::DuplicateProgram { name });
        }
        let fingerprint = program_fingerprint(&program);
        bundle.push((name, program, fingerprint));
    }

    let stored = session.load(panel).unwrap_or_default();
    let misses: Vec<usize> = (0..bundle.len())
        .filter(|&i| {
            let (name, _, fp) = &bundle[i];
            stored.get(name).map(|(old, _)| old) != Some(fp)
        })
        .collect();

    // Analyse the misses through one shared cache front, mirroring a fresh
    // shard's per-program pipeline exactly (same analyzer construction,
    // same suite, same timing strip).  Workers pull whole chunks; the only
    // shared state is the front itself, and its cold prepares run lock-free.
    let mut fresh: Vec<Option<ProgramVerdict>> = (0..misses.len()).map(|_| None).collect();
    if !misses.is_empty() {
        let configs = panel.configs()?;
        let front = CacheSession::new(SessionCache::with_analyzer(
            Analyzer::new().max_suite_threads(std::num::NonZeroUsize::MIN),
        ));
        let verdict_for = |program: &Program| {
            let prepared = match front.acquire_structural(program) {
                CacheOutcome::L0Hit(prepared)
                | CacheOutcome::WarmHit(prepared)
                | CacheOutcome::StoreHit(prepared) => prepared,
                CacheOutcome::NeedsPrepare(guard) => guard.prepare(program),
            };
            let report = prepared.run_suite(&configs).report().without_timing();
            ProgramVerdict::from_report(report, prepared.fingerprint())
        };
        let per_worker = misses.len().div_ceil(jobs.clamp(1, misses.len()));
        std::thread::scope(|scope| {
            for (slots, indices) in fresh.chunks_mut(per_worker).zip(misses.chunks(per_worker)) {
                let (bundle, verdict_for) = (&bundle, &verdict_for);
                scope.spawn(move || {
                    for (slot, &i) in slots.iter_mut().zip(indices) {
                        *slot = Some(verdict_for(&bundle[i].1));
                    }
                });
            }
        });
    }

    // Splice stored and fresh verdicts back into bundle order.  Every
    // persisted pairing is sound by construction: a fresh verdict came from
    // the very program its fingerprint hashes, and a reused one re-matched
    // the stored fingerprint this scan.
    let mut programs = Vec::with_capacity(bundle.len());
    let mut persist: Vec<(String, Fingerprint)> = Vec::with_capacity(bundle.len());
    let mut reused = 0;
    let mut fresh = misses.iter().copied().zip(fresh).peekable();
    for (i, (name, _, fp)) in bundle.iter().enumerate() {
        match fresh.peek() {
            Some(&(miss, _)) if miss == i => {
                let verdict = fresh
                    .next()
                    .and_then(|(_, v)| v)
                    .expect("every miss chunk filled its slots");
                persist.push((name.clone(), *fp));
                programs.push(verdict);
            }
            _ => {
                // Not a miss, so the stored fingerprint matched this scan's
                // own read — the lookup cannot fail.
                let (_, verdict) = stored
                    .get(name)
                    .filter(|(old, _)| old == fp)
                    .expect("a bundle entry is either analysed or a session hit");
                reused += 1;
                persist.push((name.clone(), *fp));
                programs.push(verdict.clone());
            }
        }
    }
    // Stamp against the full bundle, exactly as a fresh `run_bundle` would:
    // the checksum folds the fingerprint pass this scan already ran.
    let stamp = BundleStamp {
        checksum: panel_checksum(panel, bundle.iter().map(|(_, _, fp)| *fp)),
        total: bundle.len(),
        start: 0,
    };
    let report = BatchReport {
        panel,
        stamp: Some(stamp),
        programs,
    };
    let store_error = session.store(&report, &persist).err();
    Ok(ScanOutcome {
        report,
        reused,
        analyzed: bundle.len() - reused,
        store_error,
    })
}

/// Replay store for `specan analyze --incremental`: rendered outputs keyed
/// by the canonical program text plus a configuration signature.
///
/// Unlike the structural fingerprints driving [`ScanSession`], these keys
/// are **name-sensitive** — `analyze` output embeds region and block names,
/// so a rename must invalidate the stored rendering.  They remain
/// insensitive to comments and whitespace, because the key hashes the
/// canonical `Display` rendering of the parsed program rather than the
/// source bytes.
pub struct AnalyzeSession {
    dir: PathBuf,
    /// Optional byte budget over the stored renderings (`--max-session-bytes`
    /// on `specan analyze --incremental`); pruning drops least recently
    /// *used* entries first, exactly like the in-memory cache.
    max_bytes: Option<u64>,
}

/// How many renderings [`AnalyzeSession`] keeps before pruning the oldest.
/// Every distinct (program text, flag signature) pair stores one file, so
/// an hours-long edit loop would otherwise grow the directory with every
/// keystroke-level edit; the bound keeps it at "recent history" size.
const ANALYZE_STORE_CAP: usize = 512;

impl AnalyzeSession {
    /// Opens (without reading) the replay store under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Additionally bounds the store to at most `bytes` of stored output
    /// (on top of the [`ANALYZE_STORE_CAP`] entry count): pruning removes
    /// the least recently used renderings until the rest fit.  Like every
    /// session bound, this only costs replays, never correctness.
    pub fn max_session_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// The directory this session persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The replay key of `program` analysed under `signature` (a caller-
    /// built stable rendering of every configuration knob that shapes the
    /// output, including the output format itself).
    pub fn key(program: &Program, signature: &str) -> Fingerprint {
        let mut bytes = program.to_string().into_bytes();
        bytes.push(0);
        bytes.extend_from_slice(signature.as_bytes());
        bytes.extend_from_slice(&SESSION_FORMAT_VERSION.to_le_bytes());
        Fingerprint::of_bytes(&bytes)
    }

    fn path_of(&self, key: Fingerprint) -> PathBuf {
        self.dir.join(format!("analyze-{}.out", key.to_hex()))
    }

    /// The stored rendering for `key`, if any.  A hit refreshes the file's
    /// modification time (best-effort) so [`AnalyzeSession::store`]'s
    /// pruning evicts by recency of *use*, not of creation — a hot replay
    /// must outlive a churn of never-replayed entries.
    pub fn lookup(&self, key: Fingerprint) -> Option<String> {
        let path = self.path_of(key);
        let output = std::fs::read_to_string(&path).ok()?;
        if let Ok(file) = std::fs::File::options().append(true).open(&path) {
            let now = std::time::SystemTime::now();
            let _ = file.set_times(std::fs::FileTimes::new().set_modified(now));
        }
        Some(output)
    }

    /// Stores `output` under `key` (atomically: temp file + rename) and
    /// prunes the oldest renderings beyond [`ANALYZE_STORE_CAP`], so the
    /// store tracks recent edit history instead of growing without bound.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers may treat them as non-fatal —
    /// a store that fails only costs the next replay.
    pub fn store(&self, key: Fingerprint, output: &str) -> std::io::Result<()> {
        // The temp name carries a process-wide counter on top of the pid:
        // two suite threads storing the same key (a bundle with duplicate
        // program text) must never share a temp file, or one thread's
        // rename could publish the other's half-written content.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let target = self.path_of(key);
        let temp = self.dir.join(format!(
            "analyze-{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::write(&temp, output)?;
        std::fs::rename(&temp, &target)?;
        self.prune();
        Ok(())
    }

    /// Removes the least recently used stored renderings (by modification
    /// time — refreshed on every replay) beyond the entry cap and, when a
    /// byte budget is set, beyond it too.  Best-effort: pruning failures
    /// are invisible — a stale entry costs disk, never correctness.
    fn prune(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut outputs: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
            .flatten()
            .filter_map(|entry| {
                let path = entry.path();
                let name = path.file_name()?.to_str()?;
                if !name.starts_with("analyze-") || !name.ends_with(".out") {
                    return None;
                }
                let meta = entry.metadata().ok()?;
                Some((meta.modified().ok()?, meta.len(), path))
            })
            .collect();
        outputs.sort();
        let mut resident: u64 = outputs.iter().map(|(_, bytes, _)| bytes).sum();
        let mut drop = 0;
        while drop < outputs.len()
            && (outputs.len() - drop > ANALYZE_STORE_CAP
                || self.max_bytes.is_some_and(|budget| resident > budget))
        {
            resident -= outputs[drop].1;
            drop += 1;
        }
        for (_, _, path) in &outputs[..drop] {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_bundle, ExecMode, PanelKind};
    use crate::session::comparison_configs;
    use spec_cache::CacheConfig;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::IndexExpr;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn program(name: &str, offset: u64) -> Program {
        let mut b = ProgramBuilder::new(name);
        let t = b.region("t", 256, false);
        let k = b.secret_region("k", 8);
        let entry = b.entry_block("entry");
        b.load(entry, t, IndexExpr::Const(offset));
        b.load(entry, k, IndexExpr::Const(0));
        b.ret(entry);
        b.finish().unwrap()
    }

    #[test]
    fn unchanged_programs_rebind_and_edits_invalidate() {
        let mut session = SessionCache::new();
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));

        let a0 = session.update(&program("a", 0));
        assert!(!a0.reused);
        assert!(a0.diff.is_none(), "first sighting has no previous snapshot");
        a0.prepared.run_suite(&configs);
        let b0 = session.update(&program("b", 0));
        b0.prepared.run_suite(&configs);
        assert_eq!(session.len(), 2);

        // Re-parse of `a`, unchanged: the same session object comes back,
        // with all its memoized rounds.
        let a1 = session.update(&program("a", 0));
        assert!(a1.reused);
        assert!(Arc::ptr_eq(&a1.prepared, &a0.prepared));
        assert!(a1.diff.unwrap().is_identical());

        // Edit `a`: invalidated, diff localised; `b` is untouched.
        let a2 = session.update(&program("a", 64));
        assert!(!a2.reused);
        assert!(!Arc::ptr_eq(&a2.prepared, &a0.prepared));
        let diff = a2.diff.unwrap();
        assert_eq!(diff.changed_blocks.len(), 1);
        assert!(!diff.regions_changed);
        assert!(session.update(&program("b", 0)).reused);

        let stats = session.stats();
        assert_eq!(stats.inserted, 2);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.invalidated, 1);
    }

    #[test]
    fn region_preserving_edits_adopt_address_maps() {
        let mut session = SessionCache::new();
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));
        session
            .update(&program("a", 0))
            .prepared
            .run_suite(&configs);
        let edited = session.update(&program("a", 128));
        assert!(!edited.reused);
        assert_eq!(session.stats().amaps_adopted, 1);
        // The adopted map serves the re-run without a rebuild.
        edited.prepared.run_suite(&configs);
        let stats = edited.prepared.cache_stats();
        assert_eq!(stats.amap_adopted, 1);
        assert_eq!(stats.amap_misses, 0, "no address map was rebuilt");

        // A region-table edit must not adopt.
        let mut grown = ProgramBuilder::new("a");
        let t = grown.region("t", 512, false);
        let entry = grown.entry_block("entry");
        grown.load(entry, t, IndexExpr::Const(0));
        grown.ret(entry);
        let update = session.update(&grown.finish().unwrap());
        assert!(update.diff.unwrap().regions_changed);
        assert_eq!(session.stats().amaps_adopted, 1, "unchanged");
    }

    #[test]
    fn two_phase_resolve_adopts_maps_and_counts_rename_installs() {
        let mut session = SessionCache::new();
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));
        let p = program("a", 0);
        assert!(session.lookup_warm(&p).is_none(), "cold lookup misses");

        let installed = session.install(Arc::new(Analyzer::new().prepare(&p)));
        installed.run_suite(&configs); // builds the address map to adopt
        assert!(session.lookup_warm(&p).is_some(), "installed entry is warm");

        // A rename-only variant: same structural fingerprint, new names.
        let mut renamed = ProgramBuilder::new("a");
        let t = renamed.region("t_renamed", 256, false);
        let k = renamed.secret_region("k_renamed", 8);
        let entry = renamed.entry_block("entry");
        renamed.load(entry, t, IndexExpr::Const(0));
        renamed.load(entry, k, IndexExpr::Const(0));
        renamed.ret(entry);
        let renamed = renamed.finish().unwrap();
        assert_eq!(program_fingerprint(&renamed), program_fingerprint(&p));

        let fresh = Arc::new(Analyzer::new().prepare(&renamed));
        let swapped = session.install(fresh.clone());
        assert!(Arc::ptr_eq(&swapped, &fresh), "install is last-writer-wins");
        let stats = session.stats();
        assert_eq!(stats.inserted, 1);
        assert_eq!(
            stats.invalidated, 1,
            "a same-fingerprint replacement still counts as an invalidation"
        );
        assert_eq!(stats.reused, 1, "one warm lookup");
        assert_eq!(
            stats.amaps_adopted, 1,
            "the rename left the region table structurally unchanged"
        );
        assert_eq!(swapped.cache_stats().amap_adopted, 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_programs() {
        // Probe one entry's (un-run) footprint; `a`, `b` and `c` are
        // structurally identical with equal-length names, so they account
        // identically.
        let mut probe = SessionCache::new();
        probe.update(&program("a", 0));
        let one = probe.resident_bytes();
        assert!(one > 0);
        assert_eq!(probe.stats().session_bytes, one);

        let mut session = SessionCache::new().max_session_bytes(one * 2 + one / 2);
        session.update(&program("a", 0));
        session.update(&program("b", 0));
        // Touching `a` demotes `b` to least recently used...
        assert!(session.update(&program("a", 0)).reused);
        // ...so the third insert evicts `b`, not `a`.
        session.update(&program("c", 0));
        assert!(session.get("a").is_some(), "recently used survives");
        assert!(session.get("b").is_none(), "the LRU entry is the victim");
        assert!(session.get("c").is_some(), "the newcomer is resident");
        let stats = session.stats();
        assert_eq!(stats.session_evictions, 1);
        assert_eq!(
            stats.inserted - stats.session_evictions,
            session.len() as u64,
            "installs minus evictions is the resident population"
        );
        assert!(stats.session_bytes <= one * 2 + one / 2, "the bound holds");

        // An evicted program's next sighting is a plain re-insert — never
        // a stale rebind.
        let back = session.update(&program("b", 0));
        assert!(!back.reused);
        assert!(
            back.diff.is_none(),
            "the session kept nothing to diff against"
        );
    }

    #[test]
    fn store_tier_restores_sessions_across_cache_instances() {
        let scratch = Scratch::new();
        let store_dir = scratch.0.join("artifacts");
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));
        let p = program("a", 0);

        // First life: cold prepare (the store has nothing), run, persist.
        let mut first = SessionCache::new().artifact_store(PreparedStore::open(&store_dir));
        assert!(first.lookup_tiered(&p).is_none(), "empty store misses");
        let installed = first.install(Arc::new(Analyzer::new().prepare(&p)));
        let baseline = installed.run_suite(&configs).report().without_timing();
        assert_eq!(first.stats().store_misses, 1);
        assert_eq!(first.stats().store_hits, 0);
        assert!(first.persist_dirty() >= 1, "grown entry is flushed");
        assert_eq!(first.persist_dirty(), 0, "second flush finds nothing dirty");

        // Second life: a fresh cache over the same directory answers from
        // disk — no preparation, warm fixpoint rounds, identical report.
        let mut second = SessionCache::new().artifact_store(PreparedStore::open(&store_dir));
        let (restored, tier) = second.lookup_tiered(&p).expect("store tier hit");
        assert_eq!(tier, SessionTier::Store);
        let stats = second.stats();
        assert_eq!((stats.store_hits, stats.store_misses), (1, 0));
        assert!(stats.store_loaded_bytes > 0);
        let report = restored.run_suite(&configs).report().without_timing();
        assert_eq!(report.to_json(), baseline.to_json());
        assert_eq!(
            restored.cache_stats().round_misses,
            0,
            "every fixpoint round replayed from the restored memo tables"
        );
        // The disk load is now a resident memory entry.
        assert_eq!(
            second.lookup_tiered(&p).unwrap().1,
            SessionTier::Memory,
            "second resolve is a warm rebind"
        );
        assert_eq!(
            second.cache_stats().store_hits,
            1,
            "cache_stats carries store counters"
        );

        // A rename-only variant shares the fingerprint but not the names:
        // the store must not serve it.
        let mut renamed = ProgramBuilder::new("a");
        let t = renamed.region("t_renamed", 256, false);
        let k = renamed.secret_region("k_renamed", 8);
        let entry = renamed.entry_block("entry");
        renamed.load(entry, t, IndexExpr::Const(0));
        renamed.load(entry, k, IndexExpr::Const(0));
        renamed.ret(entry);
        let renamed = renamed.finish().unwrap();
        assert_eq!(program_fingerprint(&renamed), program_fingerprint(&p));
        let mut third = SessionCache::new().artifact_store(PreparedStore::open(&store_dir));
        assert!(
            third.lookup_tiered(&renamed).is_none(),
            "a rename falls through to the cold path"
        );
        assert_eq!(third.stats().store_misses, 1);
    }

    #[test]
    fn budget_eviction_flushes_dirty_entries_to_the_store() {
        let scratch = Scratch::new();
        let store_dir = scratch.0.join("artifacts");
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));

        // Probe one run entry's footprint so the budget holds exactly one.
        let mut probe = SessionCache::new();
        probe.update(&program("a", 0)).prepared.run_suite(&configs);
        let one = probe.resident_bytes();

        let mut session = SessionCache::new()
            .max_session_bytes(one + one / 2)
            .artifact_store(PreparedStore::open(&store_dir));
        session
            .update(&program("a", 0))
            .prepared
            .run_suite(&configs);
        // `a` has grown since its install-time write; growing `b` to the
        // same footprint pushes the session over budget, so the next
        // enforcement point evicts `a` (the LRU entry) — which must flush
        // its grown artifacts first.
        session
            .update(&program("b", 0))
            .prepared
            .run_suite(&configs);
        session.enforce_budget();
        assert!(session.get("a").is_none(), "`a` was evicted");
        assert_eq!(session.stats().session_evictions, 1);

        // Its next sighting loads the *grown* session from disk: the
        // memoized rounds replay instead of being re-solved.
        let (restored, tier) = session.lookup_tiered(&program("a", 0)).expect("store hit");
        assert_eq!(tier, SessionTier::Store);
        restored.run_suite(&configs);
        assert_eq!(
            restored.cache_stats().round_misses,
            0,
            "the eviction-time flush captured the memoized rounds"
        );
    }

    #[test]
    fn memoized_byte_accounting_tracks_growth() {
        let mut session = SessionCache::new();
        let configs = comparison_configs(CacheConfig::fully_associative(4, 64));
        let update = session.update(&program("a", 0));
        let before = session.resident_bytes();
        assert_eq!(
            session.resident_bytes(),
            before,
            "memoized answer is stable"
        );
        update.prepared.run_suite(&configs);
        let after = session.resident_bytes();
        assert!(
            after > before,
            "a grown round cache invalidates the per-entry size memo"
        );
        assert_eq!(session.stats().session_bytes, after);
    }

    static SCRATCH_ID: AtomicUsize = AtomicUsize::new(0);

    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "spec-incremental-test-{}-{}",
                std::process::id(),
                SCRATCH_ID.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }

        fn write(&self, name: &str, contents: &str) -> PathBuf {
            let path = self.0.join(name);
            std::fs::write(&path, contents).unwrap();
            path
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    const CLEAN: &str = "program {name}\nregion t 64\nblock main entry:\n  load t[{off}]\n  ret\n";

    fn spec_source(name: &str, off: u64) -> String {
        CLEAN
            .replace("{name}", name)
            .replace("{off}", &off.to_string())
    }

    fn leak_panel() -> PanelSpec {
        PanelSpec {
            kind: PanelKind::LeakCheck,
            cache_lines: 8,
        }
    }

    #[test]
    fn incremental_scan_reuses_unchanged_programs_and_matches_fresh() {
        let scratch = Scratch::new();
        let a = scratch.write("a.spec", &spec_source("alpha", 0));
        let b = scratch.write("b.spec", &spec_source("beta", 0));
        let files = vec![a.clone(), b.clone()];
        let session = ScanSession::new(scratch.0.join("session"));

        let cold = scan_bundle_incremental(&files, leak_panel(), 1, &session).unwrap();
        assert_eq!((cold.reused, cold.analyzed), (0, 2));

        // No edits: everything replays, and the report is byte-identical to
        // a fresh bundle run.
        let warm = scan_bundle_incremental(&files, leak_panel(), 1, &session).unwrap();
        assert_eq!((warm.reused, warm.analyzed), (2, 0));
        let fresh = run_bundle(&files, leak_panel(), 1, &ExecMode::InProcess).unwrap();
        assert_eq!(warm.report, fresh);
        assert_eq!(warm.report.to_json(), fresh.to_json());

        // Edit one file in place: only it re-analyses; bundle order holds.
        scratch.write("a.spec", &spec_source("alpha", 32));
        let edited = scan_bundle_incremental(&files, leak_panel(), 1, &session).unwrap();
        assert_eq!((edited.reused, edited.analyzed), (1, 1));
        let fresh = run_bundle(&files, leak_panel(), 1, &ExecMode::InProcess).unwrap();
        assert_eq!(edited.report.to_json(), fresh.to_json());
        let names: Vec<&str> = edited
            .report
            .programs
            .iter()
            .map(|p| p.report.program.as_str())
            .collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn panel_changes_and_corrupt_sessions_cold_start() {
        let scratch = Scratch::new();
        let a = scratch.write("a.spec", &spec_source("alpha", 0));
        let files = vec![a];
        let session = ScanSession::new(scratch.0.join("session"));
        scan_bundle_incremental(&files, leak_panel(), 1, &session).unwrap();

        // A different panel must not reuse leak-check verdicts.
        let other = PanelSpec {
            kind: PanelKind::Comparison,
            cache_lines: 8,
        };
        let outcome = scan_bundle_incremental(&files, other, 1, &session).unwrap();
        assert_eq!((outcome.reused, outcome.analyzed), (0, 1));

        // Corrupt the stored session: the next scan degrades to cold.
        std::fs::write(session.dir().join(SCAN_SESSION_FILE), "not json").unwrap();
        let outcome = scan_bundle_incremental(&files, other, 1, &session).unwrap();
        assert_eq!((outcome.reused, outcome.analyzed), (0, 1));
        // ...and the rewritten session is healthy again.
        let outcome = scan_bundle_incremental(&files, other, 1, &session).unwrap();
        assert_eq!((outcome.reused, outcome.analyzed), (1, 0));
    }

    #[test]
    fn unwritable_session_still_returns_the_report() {
        let scratch = Scratch::new();
        let a = scratch.write("a.spec", &spec_source("alpha", 0));
        // A *file* where the session directory should be: create_dir_all
        // fails, so the write-back cannot succeed — but the scan must.
        let blocked = scratch.write("blocked", "not a directory");
        let session = ScanSession::new(&blocked);
        let outcome =
            scan_bundle_incremental(std::slice::from_ref(&a), leak_panel(), 1, &session).unwrap();
        assert!(outcome.store_error.is_some(), "the store failure surfaces");
        assert_eq!((outcome.reused, outcome.analyzed), (0, 1));
        let fresh = run_bundle(&[a], leak_panel(), 1, &ExecMode::InProcess).unwrap();
        assert_eq!(outcome.report, fresh, "the verdict survives the failure");
    }

    #[test]
    fn analyze_store_prunes_beyond_the_cap() {
        let scratch = Scratch::new();
        let session = AnalyzeSession::new(scratch.0.join("analyze"));
        for i in 0..ANALYZE_STORE_CAP + 8 {
            session.store(Fingerprint(i as u64), "output").unwrap();
        }
        let stored = std::fs::read_dir(session.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".out"))
            .count();
        assert_eq!(stored, ANALYZE_STORE_CAP, "the cap holds");
    }

    /// Pins every stored rendering's modification time to a distinct past
    /// instant (older for lower indices), so pruning order is a pure
    /// function of the test's subsequent lookups.
    fn age_stored_outputs(session: &AnalyzeSession, keys: &[Fingerprint]) {
        for (i, key) in keys.iter().enumerate() {
            let path = session.dir().join(format!("analyze-{}.out", key.to_hex()));
            let stamp = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64);
            let file = std::fs::File::options().append(true).open(&path).unwrap();
            file.set_times(std::fs::FileTimes::new().set_modified(stamp))
                .unwrap();
        }
    }

    fn stored_keys(session: &AnalyzeSession) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(session.dir())
            .unwrap()
            .flatten()
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".out"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn analyze_store_prunes_by_recency_of_use_not_creation() {
        let scratch = Scratch::new();
        let session = AnalyzeSession::new(scratch.0.join("analyze"));
        let keys: Vec<Fingerprint> = (0..ANALYZE_STORE_CAP as u64).map(Fingerprint).collect();
        for key in &keys {
            session.store(*key, "output").unwrap();
        }
        age_stored_outputs(&session, &keys);

        // Replaying the *oldest-created* entry refreshes its recency...
        assert_eq!(session.lookup(keys[0]).as_deref(), Some("output"));
        // ...so the next over-cap store evicts entry 1 (now the LRU),
        // never the hot entry 0.
        session
            .store(Fingerprint(ANALYZE_STORE_CAP as u64 + 7), "new")
            .unwrap();
        let names = stored_keys(&session);
        assert_eq!(names.len(), ANALYZE_STORE_CAP, "the cap holds");
        assert!(
            names.contains(&format!("analyze-{}.out", keys[0].to_hex())),
            "the replayed entry survives the churn"
        );
        assert!(
            !names.contains(&format!("analyze-{}.out", keys[1].to_hex())),
            "the least recently used entry is the victim"
        );
    }

    #[test]
    fn analyze_store_byte_budget_prunes_least_recently_used_first() {
        let scratch = Scratch::new();
        // Four 100-byte renderings stored unbounded, then re-opened under
        // a 250-byte budget: the next store keeps only the two most
        // recently used.
        let unbounded = AnalyzeSession::new(scratch.0.join("analyze"));
        let keys: Vec<Fingerprint> = (0..4u64).map(Fingerprint).collect();
        let output = "x".repeat(100);
        for key in &keys {
            unbounded.store(*key, &output).unwrap();
        }
        age_stored_outputs(&unbounded, &keys);
        let session = AnalyzeSession::new(scratch.0.join("analyze")).max_session_bytes(250);
        // A refresh pulls entry 0 ahead of 1 and 2 before the next store
        // triggers pruning.
        assert!(session.lookup(keys[0]).is_some());
        session.store(Fingerprint(9), &output).unwrap();
        let names = stored_keys(&session);
        assert_eq!(names.len(), 2, "250 bytes hold two 100-byte entries");
        assert!(names.contains(&format!("analyze-{}.out", keys[0].to_hex())));
        assert!(names.contains(&format!("analyze-{}.out", Fingerprint(9).to_hex())));
    }

    #[test]
    fn corrupt_stored_entries_cold_start_instead_of_replaying() {
        let scratch = Scratch::new();
        let session = AnalyzeSession::new(scratch.0.join("analyze"));
        let key = Fingerprint(42);
        session.store(key, "good output").unwrap();
        // Corrupt the stored rendering in place (invalid UTF-8): the next
        // lookup must miss — a cold re-analysis — not crash or replay
        // garbage, and a fresh store heals the entry.
        let path = session.dir().join(format!("analyze-{}.out", key.to_hex()));
        std::fs::write(&path, [0xff, 0xfe, 0x00, 0x9f]).unwrap();
        assert_eq!(session.lookup(key), None, "corruption degrades to a miss");
        session.store(key, "fresh output").unwrap();
        assert_eq!(session.lookup(key).as_deref(), Some("fresh output"));
    }

    #[test]
    fn identical_programs_under_different_signatures_never_collide() {
        let scratch = Scratch::new();
        let session = AnalyzeSession::new(scratch.0.join("analyze"));
        let p = program("a", 0);
        // One program text, two flag signatures: distinct keys, distinct
        // replays — a stored JSON rendering must never answer a text
        // request (the rename-stale-flags twin of the rename-stale-names
        // class).
        let json_key = AnalyzeSession::key(&p, "json:8");
        let text_key = AnalyzeSession::key(&p, "text:8");
        assert_ne!(json_key, text_key);
        session.store(json_key, "json rendering").unwrap();
        assert_eq!(
            session.lookup(text_key),
            None,
            "a different signature must miss"
        );
        session.store(text_key, "text rendering").unwrap();
        assert_eq!(session.lookup(json_key).as_deref(), Some("json rendering"));
        assert_eq!(session.lookup(text_key).as_deref(), Some("text rendering"));

        // And a *reparsed* copy of the same program (identical canonical
        // text) under the same signature intentionally shares the key —
        // that is the replay hit the store exists for.
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(AnalyzeSession::key(&reparsed, "json:8"), json_key);
    }

    #[test]
    fn analyze_session_replays_by_canonical_text_and_signature() {
        let scratch = Scratch::new();
        let session = AnalyzeSession::new(scratch.0.join("analyze"));
        let p = program("a", 0);
        let key = AnalyzeSession::key(&p, "json:8");
        assert_eq!(session.lookup(key), None);
        session.store(key, "rendered output").unwrap();
        assert_eq!(session.lookup(key).as_deref(), Some("rendered output"));

        // The key is insensitive to a re-parse round-trip...
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(AnalyzeSession::key(&reparsed, "json:8"), key);
        // ...sensitive to the configuration signature...
        assert_ne!(AnalyzeSession::key(&p, "text:8"), key);
        // ...and sensitive to renames (analyze output embeds names).
        let mut renamed = ProgramBuilder::new("a");
        let t = renamed.region("t_v2", 256, false);
        let k = renamed.secret_region("k", 8);
        let entry = renamed.entry_block("entry");
        renamed.load(entry, t, IndexExpr::Const(0));
        renamed.load(entry, k, IndexExpr::Const(0));
        renamed.ret(entry);
        assert_ne!(
            AnalyzeSession::key(&renamed.finish().unwrap(), "json:8"),
            key
        );
    }
}
