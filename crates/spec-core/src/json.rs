//! Minimal JSON emission helpers.
//!
//! The workspace builds offline with no external crates, so report
//! serialization ([`crate::session::Report::to_json`] and the `specan
//! --json` outputs) hand-writes its JSON through these helpers instead of
//! pulling in serde.  Only the pieces those emitters need are provided:
//! string escaping and finite float formatting.

/// Renders `s` as a quoted JSON string with the mandatory escapes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (non-finite values become `null`).
pub fn float(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\t"), "\"a\\nb\\t\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_are_finite_json_numbers() {
        assert_eq!(float(0.5), "0.500000");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }
}
