//! Minimal JSON emission and parsing helpers.
//!
//! The workspace builds offline with no external crates, so report
//! serialization ([`crate::session::Report::to_json`] and the `specan
//! --json` outputs) hand-writes its JSON through these helpers instead of
//! pulling in serde.  The batch layer ([`crate::batch`]) additionally needs
//! to *read* reports back — a parent process merges the JSON emitted by
//! `specan worker` subprocesses — so a small recursive-descent parser,
//! [`JsonValue::parse`], lives here too.  Numbers are kept as their raw
//! source tokens so integer round-trips are lossless.
//!
//! Since the service layer ([`crate::service`]) feeds this parser straight
//! from a TCP socket, it is hardened against adversarial input: documents
//! are capped in size and nesting depth ([`ParseLimits`], tightenable per
//! call with [`JsonValue::parse_with_limits`]), strings reject unescaped
//! control characters and malformed `\u` escapes, and numbers are validated
//! against the JSON grammar rather than whatever `f64::from_str` tolerates.

/// Renders `s` as a quoted JSON string with the mandatory escapes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (non-finite values become `null`).
pub fn float(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON document.
///
/// Numbers keep their raw source text ([`JsonValue::Number`]) so `u64`
/// counters survive a round-trip without going through `f64`.  Object
/// members preserve source order; duplicate keys are rejected at parse
/// time (the report formats never produce them, so a duplicate signals a
/// corrupted or foreign document).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (e.g. `"42"`, `"0.25"`, `"-1e3"`).
    Number(String),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Bounds enforced while parsing a document — the defence against hostile
/// or corrupted input now that documents arrive over sockets, not just from
/// our own emitters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Documents larger than this many bytes are rejected before a single
    /// byte is parsed (an attacker must not get O(input) work for free).
    pub max_bytes: usize,
    /// Containers nested deeper than this are rejected: recursion depth
    /// must stay bounded so 100k repeated `[` yields a clean [`JsonError`]
    /// instead of a stack overflow.
    pub max_depth: usize,
}

impl Default for ParseLimits {
    /// 64 MiB / 128 levels: far beyond any report this workspace emits
    /// (the formats nest four levels deep), well below anything dangerous.
    fn default() -> Self {
        Self {
            max_bytes: 64 << 20,
            max_depth: 128,
        }
    }
}

impl JsonValue {
    /// Parses one JSON document under the default [`ParseLimits`],
    /// requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        Self::parse_with_limits(input, &ParseLimits::default())
    }

    /// Parses one JSON document under caller-chosen [`ParseLimits`] (the
    /// service layer tightens the size cap to its per-request budget).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte; an
    /// over-sized document fails at offset 0 without being scanned.
    pub fn parse_with_limits(input: &str, limits: &ParseLimits) -> Result<JsonValue, JsonError> {
        if input.len() > limits.max_bytes {
            return Err(JsonError {
                offset: 0,
                message: format!(
                    "document of {} bytes exceeds the {}-byte cap",
                    input.len(),
                    limits.max_bytes
                ),
            });
        }
        let mut parser = JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
            max_depth: limits.max_depth,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data after JSON document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl JsonParser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth > self.max_depth {
            return Err(self.err(format!("nesting exceeds {} levels", self.max_depth)));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string_token()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string_token()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string_token(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            // Our own emitter only \u-escapes control bytes,
                            // but foreign tooling (e.g. `json.dumps` with
                            // ensure_ascii) escapes astral chars as
                            // surrogate pairs — recombine those; map a lone
                            // surrogate to the replacement char.
                            let c = match code {
                                0xD800..=0xDBFF if self.bytes[self.pos..].starts_with(b"\\u") => {
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if (0xDC00..=0xDFFF).contains(&low) {
                                        let astral =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(astral).unwrap_or('\u{fffd}')
                                    } else {
                                        out.push('\u{fffd}');
                                        char::from_u32(low).unwrap_or('\u{fffd}')
                                    }
                                }
                                _ => char::from_u32(code).unwrap_or('\u{fffd}'),
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                // The grammar requires control characters to travel escaped;
                // a raw one here is a truncated or tampered document (our
                // own emitter always escapes them).
                Some(c) if c < 0x20 => {
                    return Err(self.err(format!("unescaped control character 0x{c:02x} in string")))
                }
                Some(_) => {
                    // Copy the whole contiguous unescaped span in one step.
                    // The span ends at `"`, `\` or a control byte — all
                    // ASCII, which never occur inside a multi-byte sequence
                    // — so slicing the original &str input there stays on
                    // char boundaries.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\' | 0x00..=0x1f)) {
                        self.pos += 1;
                    }
                    let span = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(span);
                }
            }
        }
    }

    /// Consumes the four hex digits of a `\u` escape (the `\u` itself is
    /// already consumed) and returns the code unit.  Exactly four ASCII hex
    /// digits are accepted — `from_str_radix` alone would also take a
    /// leading sign (`\u+12f`), which the grammar forbids.
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated or malformed \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).expect("four hex digits fit a u32");
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII")
            .to_string();
        if !valid_json_number(&raw) {
            return Err(self.err(format!("malformed number `{raw}`")));
        }
        Ok(JsonValue::Number(raw))
    }
}

/// Validates a number token against the JSON grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.  `f64::from_str` is
/// far laxer (it accepts `01`, `1.`, `.5`), and raw tokens are preserved
/// for lossless round-trips, so the grammar has to be enforced here.
fn valid_json_number(raw: &str) -> bool {
    let bytes = raw.as_bytes();
    let mut i = usize::from(bytes.first() == Some(&b'-'));
    // Integer part: `0` alone, or a non-zero digit followed by digits.
    match bytes.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    // Optional fraction: `.` followed by at least one digit.
    if bytes.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    // Optional exponent: `e`/`E`, optional sign, at least one digit.
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(bytes.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\t"), "\"a\\nb\\t\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_are_finite_json_numbers() {
        assert_eq!(float(0.5), "0.500000");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }

    #[test]
    fn parses_nested_documents() {
        let value = JsonValue::parse(
            r#"{"name": "x", "n": 42, "nested": {"ok": true, "xs": [1, 2.5, null]}}"#,
        )
        .unwrap();
        assert_eq!(value.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("n").unwrap().as_u64(), Some(42));
        let nested = value.get("nested").unwrap();
        assert_eq!(nested.get("ok").unwrap().as_bool(), Some(true));
        let xs = nested.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2], JsonValue::Null);
    }

    #[test]
    fn round_trips_escaped_strings() {
        let source = "a \"quoted\"\nlabel\twith \\ stuff \u{1}";
        let parsed = JsonValue::parse(&string(source)).unwrap();
        assert_eq!(parsed.as_str(), Some(source));
    }

    #[test]
    fn surrogate_pairs_from_foreign_emitters_recombine() {
        // `json.dumps("😀")` with ensure_ascii emits a surrogate pair.
        let parsed = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        // The raw (non-escaped) astral char parses identically.
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // A lone high surrogate degrades to the replacement char instead of
        // corrupting the following text.
        let lone = JsonValue::parse(r#""\ud83dx""#).unwrap();
        assert_eq!(lone.as_str(), Some("\u{fffd}x"));
        // A high surrogate followed by a non-low \u escape keeps both.
        let split = JsonValue::parse(r#""\ud83d\u0041""#).unwrap();
        assert_eq!(split.as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn big_integers_survive_without_f64_loss() {
        let raw = format!("{}", u64::MAX - 1);
        let parsed = JsonValue::parse(&raw).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX - 1));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\": 1,}").is_err());
        assert!(JsonValue::parse("[1 2]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("{\"a\": 1, \"a\": 2}").is_err());
        assert!(JsonValue::parse("1..2").is_err());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(100_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Mixed containers hit the same guard.
        let mixed = "{\"a\": ".repeat(100_000);
        assert!(JsonValue::parse(&mixed).is_err());
        // Legitimate nesting well past the report formats still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn size_cap_rejects_oversized_documents_without_scanning() {
        let tight = ParseLimits {
            max_bytes: 8,
            max_depth: 128,
        };
        assert!(JsonValue::parse_with_limits("[1, 2]", &tight).is_ok());
        let err = JsonValue::parse_with_limits("[1, 2, 3]", &tight).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.message.contains("cap"), "{err}");
        // The default cap is generous enough for real reports.
        assert!(JsonValue::parse("[1, 2, 3]").is_ok());
    }

    #[test]
    fn depth_limit_is_tightenable_per_call() {
        let shallow = ParseLimits {
            max_bytes: 1 << 20,
            max_depth: 2,
        };
        assert!(JsonValue::parse_with_limits("[[1]]", &shallow).is_ok());
        assert!(JsonValue::parse_with_limits("[[[1]]]", &shallow).is_err());
    }

    #[test]
    fn unescaped_control_characters_are_rejected() {
        assert!(JsonValue::parse("\"a\nb\"").is_err());
        assert!(JsonValue::parse("\"a\tb\"").is_err());
        assert!(JsonValue::parse("\"a\u{1}b\"").is_err());
        // The escaped forms keep working (and round-trip via `string`).
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap().as_str(),
            Some("a\nb")
        );
        let escaped = string("a\n\u{1}b");
        assert_eq!(
            JsonValue::parse(&escaped).unwrap().as_str(),
            Some("a\n\u{1}b")
        );
    }

    #[test]
    fn signed_hex_escapes_are_rejected() {
        // `u32::from_str_radix` alone tolerates a leading sign; the JSON
        // grammar requires exactly four hex digits.
        assert!(JsonValue::parse(r#""\u+12f""#).is_err());
        assert!(JsonValue::parse(r#""\u-12f""#).is_err());
        assert!(JsonValue::parse(r#""\u12""#).is_err());
        assert!(JsonValue::parse(r#""\u12g4""#).is_err());
        // Uppercase hex digits stay legal (the escaped form, so this
        // actually exercises hex_escape, not the plain-span copy path).
        assert_eq!(
            JsonValue::parse("\"A\\uFFFD\"").unwrap().as_str(),
            Some("A\u{fffd}")
        );
    }

    #[test]
    fn numbers_follow_the_json_grammar_not_f64_from_str() {
        // All of these parse as f64 but are not JSON numbers.
        for bad in ["01", "1.", "-01", "1.e3", "1e", "1e+", "-"] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        for good in ["0", "-0", "10", "0.5", "-1.25e-3", "2E+8", "1e9"] {
            assert!(JsonValue::parse(good).is_ok(), "`{good}` must parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let value = JsonValue::parse(" \n{ \"a\" :\t[ ] ,\r\n\"b\" : { } }\n").unwrap();
        assert_eq!(value.get("a").unwrap().as_array(), Some(&[][..]));
        assert!(value.get("b").is_some());
    }
}
