//! # spec-core
//!
//! The paper's primary contribution: a must-hit cache analysis that is
//! **sound under speculative execution**.
//!
//! The crate provides two analyses behind a single entry point,
//! [`CacheAnalysis`]:
//!
//! * the **non-speculative baseline** (`CacheAnalysis::non_speculative`),
//!   the classic Ferdinand/Wilhelm-style must analysis the paper compares
//!   against (Algorithm 1), and
//! * the **speculative analysis** (`CacheAnalysis::speculative`), which
//!   augments the control flow with virtual speculative executions
//!   (Algorithm 2/3), merges them with the configured
//!   [`spec_vcfg::MergeStrategy`], bounds speculation windows dynamically
//!   (Section 6.2) and optionally refines joins with shadow variables
//!   (Appendix B).
//!
//! The result of a run, [`AnalysisResult`], classifies every memory access
//! as a guaranteed hit or a possible miss, both for committed executions
//! (`#Miss`) and for squashed speculative executions (`#SpMiss`), which is
//! what the execution-time and side-channel applications in `spec-analysis`
//! consume.
//!
//! ## Example
//!
//! ```rust
//! use spec_core::{AnalysisOptions, CacheAnalysis};
//! use spec_cache::CacheConfig;
//! use spec_ir::builder::ProgramBuilder;
//! use spec_ir::{BranchSemantics, IndexExpr, MemRef};
//!
//! // A miniature version of the paper's Figure 2.
//! let mut b = ProgramBuilder::new("figure2-mini");
//! let ph = b.region("ph", 2 * 64, false);
//! let l1 = b.region("l1", 64, false);
//! let l2 = b.region("l2", 64, false);
//! let p = b.region("p", 8, false);
//! let entry = b.entry_block("entry");
//! let then_bb = b.block("then");
//! let else_bb = b.block("else");
//! let done = b.block("done");
//! b.load_sweep(entry, ph, 0, 64, 2);           // preload ph
//! b.load(entry, p, IndexExpr::Const(0));
//! b.data_branch(entry, vec![MemRef::at(p, 0)],
//!               BranchSemantics::InputBit { bit: 0 }, then_bb, else_bb);
//! b.load(then_bb, l1, IndexExpr::Const(0));
//! b.jump(then_bb, done);
//! b.load(else_bb, l2, IndexExpr::Const(0));
//! b.jump(else_bb, done);
//! b.load(done, ph, IndexExpr::Const(0));       // hit?  depends on speculation
//! b.ret(done);
//! let program = b.finish().unwrap();
//!
//! // With a 4-line cache, the non-speculative analysis proves the final
//! // access hits, but speculation can evict it.  Preparing the program once
//! // shares the unrolled program, address map and VCFG between the runs.
//! let cache = CacheConfig::fully_associative(4, 64);
//! let prepared = spec_core::Analyzer::new().prepare(&program);
//! let suite = prepared.run_suite(&[
//!     ("baseline", AnalysisOptions::builder().baseline().cache(cache).build().unwrap()),
//!     ("speculative", AnalysisOptions::builder().cache(cache).build().unwrap()),
//! ]);
//! assert!(
//!     suite.get("baseline").unwrap().result.miss_count()
//!         < suite.get("speculative").unwrap().result.miss_count()
//! );
//! ```
//!
//! One-shot analyses keep working through [`CacheAnalysis`], which is a thin
//! wrapper over a single-use session; comparative code should use
//! [`session::Analyzer::prepare`] and run many configurations against one
//! [`session::PreparedProgram`] (concurrently, via
//! [`session::PreparedProgram::run_suite`]).

pub mod analysis;
pub mod artifact;
pub mod batch;
pub mod cache_session;
pub mod classify;
mod engine;
pub mod gateway;
pub mod incremental;
pub mod json;
pub mod options;
pub mod service;
pub mod session;
pub mod state;
mod summary;

pub use analysis::CacheAnalysis;
pub use artifact::{options_signature, PreparedStore};
pub use batch::{BatchError, BatchReport, BundleStamp, ExecMode, PanelKind, PanelSpec, ShardSpec};
pub use cache_session::{AcquireStats, CacheOutcome, CacheSession, PrepareGuard};
pub use classify::{AccessInfo, AnalysisResult};
pub use incremental::{
    ScanOutcome, ScanSession, SessionCache, SessionStats, SessionTier, SessionUpdate,
};
pub use options::{AnalysisOptions, AnalysisOptionsBuilder, OptionsError};
pub use session::{
    Analyzer, CacheStats, MergeError, PreparedProgram, Report, ReportRow, Suite, SuiteRun,
};
pub use state::SpecState;
