//! Analysis configuration: [`AnalysisOptions`] and its validating builder.

use std::error::Error;
use std::fmt;

use spec_cache::CacheConfig;
use spec_ir::transform::UnrollOptions;
use spec_vcfg::{MergeStrategy, SpeculationConfig};

/// Configuration of a must-hit cache analysis run.
///
/// Construct one with a preset ([`AnalysisOptions::speculative`],
/// [`AnalysisOptions::non_speculative`]) or with the validating
/// [`AnalysisOptions::builder`]:
///
/// ```rust
/// use spec_core::AnalysisOptions;
/// use spec_cache::CacheConfig;
/// use spec_vcfg::MergeStrategy;
///
/// let options = AnalysisOptions::builder()
///     .cache(CacheConfig::fully_associative(64, 64))
///     .merge_strategy(MergeStrategy::MergeAtRollback)
///     .shadow(false)
///     .build()
///     .unwrap();
/// assert!(options.speculative);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnalysisOptions {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Speculative-execution model.  Ignored when `speculative` is `false`.
    pub speculation: SpeculationConfig,
    /// Whether speculative executions are modelled at all.  `false` gives
    /// the state-of-the-art non-speculative baseline the paper compares
    /// against in Tables 5 and 7.
    pub speculative: bool,
    /// Whether the shadow-variable (may) refinement of Appendix B is used.
    pub track_shadow: bool,
    /// Whether counted loops are fully unrolled before the analysis
    /// (Section 6.3).
    pub unroll_loops: bool,
    /// Unrolling budget.
    pub unroll: UnrollOptions,
    /// Number of precise joins at a loop head before widening kicks in.
    pub widening_delay: u32,
}

impl AnalysisOptions {
    /// The paper's speculative analysis configuration.
    pub fn speculative() -> Self {
        Self {
            cache: CacheConfig::paper_default(),
            speculation: SpeculationConfig::paper_default(),
            speculative: true,
            track_shadow: true,
            unroll_loops: true,
            unroll: UnrollOptions::default(),
            widening_delay: 3,
        }
    }

    /// The non-speculative baseline (prior work the paper compares against).
    pub fn non_speculative() -> Self {
        Self {
            speculative: false,
            ..Self::speculative()
        }
    }

    /// A validating builder, starting from the speculative preset.
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder {
            options: Self::speculative(),
        }
    }

    /// A builder seeded with this configuration, for deriving variants.
    pub fn to_builder(self) -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder { options: self }
    }

    /// Checks the configuration for inconsistencies.
    ///
    /// # Errors
    ///
    /// Returns the first [`OptionsError`] violated by this configuration.
    pub fn validate(&self) -> Result<(), OptionsError> {
        if self.cache.line_size == 0 {
            return Err(OptionsError::ZeroCacheLineSize);
        }
        if self.cache.num_sets == 0 || self.cache.associativity == 0 {
            return Err(OptionsError::EmptyCache);
        }
        if self.speculation.depth_on_hit > self.speculation.depth_on_miss {
            return Err(OptionsError::InvertedSpeculationDepths {
                depth_on_hit: self.speculation.depth_on_hit,
                depth_on_miss: self.speculation.depth_on_miss,
            });
        }
        if self.unroll_loops
            && (self.unroll.max_trip_count == 0 || self.unroll.max_program_insts == 0)
        {
            return Err(OptionsError::EmptyUnrollBudget);
        }
        Ok(())
    }

    /// The speculation configuration actually in force: with `speculative`
    /// off, the windows collapse to zero, which reproduces exactly the
    /// baseline Algorithm 1 (sites exist but no speculative flow is seeded).
    pub(crate) fn effective_speculation(&self) -> SpeculationConfig {
        if self.speculative {
            self.speculation
        } else {
            self.speculation.with_depths(0, 0)
        }
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self::speculative()
    }
}

/// An inconsistency in an [`AnalysisOptions`] under construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptionsError {
    /// The cache line size is zero.
    ZeroCacheLineSize,
    /// The cache has zero sets or zero ways.
    EmptyCache,
    /// `b_h` exceeds `b_m`: the window for a resolved-fast branch cannot be
    /// larger than the window for a slow one (Section 6.2).
    InvertedSpeculationDepths {
        /// The configured `b_h`.
        depth_on_hit: u32,
        /// The configured `b_m`.
        depth_on_miss: u32,
    },
    /// Unrolling is enabled but its budget admits no unrolling at all.
    EmptyUnrollBudget,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroCacheLineSize => write!(f, "cache line size must be non-zero"),
            Self::EmptyCache => write!(f, "cache must have at least one set and one way"),
            Self::InvertedSpeculationDepths {
                depth_on_hit,
                depth_on_miss,
            } => write!(
                f,
                "speculation window on hit (b_h = {depth_on_hit}) exceeds the window on miss \
                 (b_m = {depth_on_miss})"
            ),
            Self::EmptyUnrollBudget => {
                write!(f, "loop unrolling is enabled but its budget is empty")
            }
        }
    }
}

impl Error for OptionsError {}

/// Validating builder for [`AnalysisOptions`].
///
/// Unset knobs keep the values of the paper's speculative configuration;
/// [`AnalysisOptionsBuilder::build`] rejects inconsistent combinations.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptionsBuilder {
    options: AnalysisOptions,
}

impl AnalysisOptionsBuilder {
    /// Sets the cache geometry.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.options.cache = cache;
        self
    }

    /// Enables or disables modelling of speculative executions.
    pub fn speculative(mut self, speculative: bool) -> Self {
        self.options.speculative = speculative;
        self
    }

    /// Selects the non-speculative baseline (shorthand for
    /// `speculative(false)`).
    pub fn baseline(self) -> Self {
        self.speculative(false)
    }

    /// Replaces the whole speculation configuration.
    pub fn speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.options.speculation = speculation;
        self
    }

    /// Sets the merge strategy for speculative states (Figure 6).
    pub fn merge_strategy(mut self, strategy: MergeStrategy) -> Self {
        self.options.speculation.merge_strategy = strategy;
        self
    }

    /// Sets the speculation windows `b_h` / `b_m` (Section 6.2).
    pub fn speculation_depths(mut self, depth_on_hit: u32, depth_on_miss: u32) -> Self {
        self.options.speculation.depth_on_hit = depth_on_hit;
        self.options.speculation.depth_on_miss = depth_on_miss;
        self
    }

    /// Enables or disables the dynamic depth-bounding refinement.
    pub fn dynamic_depth_bounding(mut self, enabled: bool) -> Self {
        self.options.speculation.dynamic_depth_bounding = enabled;
        self
    }

    /// Enables or disables the shadow-variable refinement (Appendix B).
    pub fn shadow(mut self, track_shadow: bool) -> Self {
        self.options.track_shadow = track_shadow;
        self
    }

    /// Enables or disables loop unrolling (Section 6.3).
    pub fn unroll_loops(mut self, unroll_loops: bool) -> Self {
        self.options.unroll_loops = unroll_loops;
        self
    }

    /// Sets the unrolling budget.
    pub fn unroll_options(mut self, unroll: UnrollOptions) -> Self {
        self.options.unroll = unroll;
        self
    }

    /// Sets the number of precise joins before widening at loop heads.
    pub fn widening_delay(mut self, widening_delay: u32) -> Self {
        self.options.widening_delay = widening_delay;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`OptionsError`] for inconsistent combinations, e.g. an
    /// empty cache or `b_h > b_m`.
    pub fn build(self) -> Result<AnalysisOptions, OptionsError> {
        self.options.validate()?;
        Ok(self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_and_baseline_differ_only_in_speculation() {
        let spec = AnalysisOptions::speculative();
        let base = AnalysisOptions::non_speculative();
        assert!(spec.speculative);
        assert!(!base.speculative);
        assert_eq!(spec.cache, base.cache);
        assert_eq!(spec.speculation, base.speculation);
        assert_eq!(AnalysisOptions::default(), spec);
    }

    #[test]
    fn builder_sets_every_knob() {
        let o = AnalysisOptions::builder()
            .cache(CacheConfig::fully_associative(4, 64))
            .merge_strategy(MergeStrategy::MergeAtRollback)
            .shadow(false)
            .unroll_loops(false)
            .widening_delay(7)
            .speculation_depths(5, 50)
            .dynamic_depth_bounding(false)
            .build()
            .unwrap();
        assert_eq!(o.cache.total_lines(), 4);
        assert_eq!(o.speculation.merge_strategy, MergeStrategy::MergeAtRollback);
        assert!(!o.track_shadow);
        assert!(!o.unroll_loops);
        assert_eq!(o.widening_delay, 7);
        assert_eq!(o.speculation.depth_on_hit, 5);
        assert_eq!(o.speculation.depth_on_miss, 50);
        assert!(!o.speculation.dynamic_depth_bounding);
    }

    #[test]
    fn builder_rejects_inverted_depths() {
        let err = AnalysisOptions::builder()
            .speculation_depths(100, 10)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            OptionsError::InvertedSpeculationDepths { .. }
        ));
        assert!(err.to_string().contains("b_h = 100"));
    }

    #[test]
    fn builder_rejects_degenerate_caches() {
        let empty = AnalysisOptions::builder()
            .cache(CacheConfig::fully_associative(0, 64))
            .build()
            .unwrap_err();
        assert_eq!(empty, OptionsError::EmptyCache);
        let zero_line = AnalysisOptions::builder()
            .cache(CacheConfig::fully_associative(4, 0))
            .build()
            .unwrap_err();
        assert_eq!(zero_line, OptionsError::ZeroCacheLineSize);
    }

    #[test]
    fn builder_rejects_empty_unroll_budget() {
        use spec_ir::transform::UnrollOptions;
        let err = AnalysisOptions::builder()
            .unroll_options(UnrollOptions {
                max_program_insts: 0,
                max_trip_count: 0,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, OptionsError::EmptyUnrollBudget);
        // ... but an empty budget is fine when unrolling is off entirely.
        AnalysisOptions::builder()
            .unroll_loops(false)
            .unroll_options(UnrollOptions {
                max_program_insts: 0,
                max_trip_count: 0,
            })
            .build()
            .unwrap();
    }

    #[test]
    fn effective_speculation_collapses_windows_for_the_baseline() {
        let base = AnalysisOptions::non_speculative();
        let eff = base.effective_speculation();
        assert_eq!(eff.depth_on_hit, 0);
        assert_eq!(eff.depth_on_miss, 0);
        let spec = AnalysisOptions::speculative();
        assert_eq!(spec.effective_speculation(), spec.speculation);
    }
}
