//! Analysis configuration.

use spec_cache::CacheConfig;
use spec_ir::transform::UnrollOptions;
use spec_vcfg::{MergeStrategy, SpeculationConfig};

/// Configuration of a must-hit cache analysis run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Speculative-execution model.  Ignored when `speculative` is `false`.
    pub speculation: SpeculationConfig,
    /// Whether speculative executions are modelled at all.  `false` gives
    /// the state-of-the-art non-speculative baseline the paper compares
    /// against in Tables 5 and 7.
    pub speculative: bool,
    /// Whether the shadow-variable (may) refinement of Appendix B is used.
    pub track_shadow: bool,
    /// Whether counted loops are fully unrolled before the analysis
    /// (Section 6.3).
    pub unroll_loops: bool,
    /// Unrolling budget.
    pub unroll: UnrollOptions,
    /// Number of precise joins at a loop head before widening kicks in.
    pub widening_delay: u32,
}

impl AnalysisOptions {
    /// The paper's speculative analysis configuration.
    pub fn speculative() -> Self {
        Self {
            cache: CacheConfig::paper_default(),
            speculation: SpeculationConfig::paper_default(),
            speculative: true,
            track_shadow: true,
            unroll_loops: true,
            unroll: UnrollOptions::default(),
            widening_delay: 3,
        }
    }

    /// The non-speculative baseline (prior work the paper compares against).
    pub fn non_speculative() -> Self {
        Self {
            speculative: false,
            ..Self::speculative()
        }
    }

    /// Replaces the cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the speculation configuration.
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Replaces the merge strategy.
    pub fn with_merge_strategy(mut self, strategy: MergeStrategy) -> Self {
        self.speculation.merge_strategy = strategy;
        self
    }

    /// Enables or disables the shadow-variable refinement.
    pub fn with_shadow(mut self, track_shadow: bool) -> Self {
        self.track_shadow = track_shadow;
        self
    }

    /// Enables or disables loop unrolling.
    pub fn with_unrolling(mut self, unroll_loops: bool) -> Self {
        self.unroll_loops = unroll_loops;
        self
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self::speculative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_and_baseline_differ_only_in_speculation() {
        let spec = AnalysisOptions::speculative();
        let base = AnalysisOptions::non_speculative();
        assert!(spec.speculative);
        assert!(!base.speculative);
        assert_eq!(spec.cache, base.cache);
        assert_eq!(spec.speculation, base.speculation);
        assert_eq!(AnalysisOptions::default(), spec);
    }

    #[test]
    fn builder_setters() {
        let o = AnalysisOptions::speculative()
            .with_cache(CacheConfig::fully_associative(4, 64))
            .with_merge_strategy(MergeStrategy::MergeAtRollback)
            .with_shadow(false)
            .with_unrolling(false);
        assert_eq!(o.cache.total_lines(), 4);
        assert_eq!(o.speculation.merge_strategy, MergeStrategy::MergeAtRollback);
        assert!(!o.track_shadow);
        assert!(!o.unroll_loops);
    }
}
