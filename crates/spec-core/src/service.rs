//! A long-running analysis service with warm incremental sessions.
//!
//! The analysis is cheap to *query* but expensive to *prepare* (unrolling,
//! VCFG construction, fixpoint rounds), and the session layers built the
//! machinery — [`PreparedProgram`], [`SessionCache`], fingerprint-keyed
//! invalidation — that a persistent process can amortize across thousands
//! of requests, the way IDE-style inspection services do.  This module is
//! that process: `specan serve` speaks the protocol below over TCP, and
//! `specan submit` (or any client — the protocol is a few lines of JSON)
//! scripts against it.
//!
//! # Protocol
//!
//! Newline-delimited JSON over TCP, std-only, zero new dependencies: each
//! request is one line, each response is one line, and a connection may
//! pipeline as many requests as it likes.  Responses carry the request's
//! `id` and may arrive out of order (requests are scheduled onto a fixed
//! worker pool); clients reorder by `id`.
//!
//! ```text
//! → {"v": 1, "id": 0, "cmd": "analyze", "program": "<.spec source>",
//!    "cache_lines": 8, "json": true, "baseline": false, "shadow": true,
//!    "merge_at_rollback": false, "unroll": true}
//! → {"v": 1, "id": 1, "cmd": "compare", "program": "<.spec source>",
//!    "cache_lines": 8, "json": true}
//! → {"v": 1, "id": 2, "cmd": "scan", "panel": {"kind": "leak-check",
//!    "cache_lines": 8}, "json": true, "programs": ["<src>", "<src>"]}
//! → {"v": 1, "id": 3, "cmd": "status"}
//! → {"v": 1, "id": 4, "cmd": "metrics"}
//! → {"v": 1, "id": 5, "cmd": "shutdown"}
//! ← {"id": 0, "ok": true, "exit": 0, "output": "<rendered output>"}
//! ← {"id": 9, "ok": false, "exit": 2, "error": "<message>"}
//! ```
//!
//! `output` is **exactly** what the equivalent one-shot CLI invocation
//! prints to stdout, and `exit` is the code it would exit with — the
//! render functions in this module ([`analyze_output`],
//! [`compare_output`], [`scan_output`]) are shared by the CLI and the
//! server, so the equivalence is by construction, not by parallel
//! maintenance.  Once the execution-describing fields are stripped (wall
//! clocks and session-cache counters; scan reports carry neither), a warm
//! server response is **byte-identical** to a fresh CLI run — the
//! `service_equivalence` property suite and the CI `service-gate` job hold
//! that line.
//!
//! # Scheduling and warmth
//!
//! Requests from every connection are queued onto one fixed pool of
//! `jobs` workers (scoped threads).  Each worker resolves programs through
//! one shared [`CacheSession`] front over the [`SessionCache`]: a
//! re-submitted program — identified by name, invalidated by structural
//! fingerprint — reuses its warm [`PreparedProgram`] exactly as
//! `--incremental` reuses on-disk sessions, and a worker's steady-state
//! hits come from its own thread-local L0 tier without taking the session
//! lock at all (logged as `(l0)`; cross-worker warm hits stay `(warm)`).
//! Every memoized unroll variant, address map, VCFG and fixpoint round
//! survives across requests, and an edit re-prepares only the program it
//! touched.  `status` and `shutdown` are answered inline by the connection
//! reader (they must stay responsive while the pool is busy).
//!
//! With [`ServiceConfig::max_session_bytes`] set (`specan serve
//! --max-session-bytes`), the budget is enforced after every request —
//! whole sessions are evicted least recently used first until the resident
//! bytes fit, and a cheap coarse growth tick skips the re-measure whenever
//! no resident artifact changed — so a server fed a stream of distinct
//! programs stays memory-bounded.  An evicted program is re-prepared on its next
//! submission; the `eviction_equivalence` suite and the CI `eviction-gate`
//! prove responses are byte-identical (post timing-strip) either way.
//!
//! Hostile input cannot wedge the server: request lines are capped
//! ([`ServiceConfig::max_request_bytes`]) while being read, and documents
//! go through the hardened [`crate::json`] parser (size, depth, escape
//! validation).
//!
//! # Telemetry
//!
//! Every server carries a [`spec_telemetry::Registry`]: per-kind request
//! counters and latency histograms, queue-wait and per-phase
//! (acquire/prepare/run/persist) histograms, cache-tier acquire latencies
//! and store I/O timings.  The `metrics` request renders it in Prometheus
//! text-exposition format (`specan metrics <addr>` is the scrape client),
//! and [`ServiceConfig::trace_log`] streams one NDJSON event per request
//! through a bounded channel to a dedicated writer thread.  Telemetry is a
//! side channel by construction: response bytes are untouched, and the
//! equivalence suites keep passing with it enabled.

use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs as _};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use spec_cache::CacheConfig;
use spec_ir::fingerprint::Fingerprint;
use spec_ir::text::parse_program;
use spec_ir::Program;
use spec_telemetry::{Gauge, Histogram, Registry, TraceLog, TraceSender};
use spec_vcfg::MergeStrategy;

use crate::artifact::{PreparedStore, StoreTelemetry};
use crate::batch::{panel_checksum, BatchReport, BundleStamp, PanelSpec, ProgramVerdict};
use crate::cache_session::{relock, CacheOutcome, CacheSession, TierTelemetry};
use crate::classify::AnalysisResult;
use crate::incremental::SessionCache;
use crate::json::{self, JsonValue, ParseLimits};
use crate::options::AnalysisOptions;
use crate::session::{comparison_configs, Analyzer, PreparedProgram, Report};

/// Version tag of the request/response protocol; requests carrying a
/// different `v` are rejected up front.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default `host:port` of `specan serve` / `specan submit`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4870";

/// The configuration knobs of one `analyze` request — the service-layer
/// mirror of the CLI's `analyze` flags, shared so the two render the same
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalyzeConfig {
    /// Cache size in 64-byte lines (fully associative, the paper's model).
    pub cache_lines: usize,
    /// Render machine-readable JSON instead of the human text report.
    pub json: bool,
    /// Run the non-speculative baseline instead of the full analysis.
    pub baseline: bool,
    /// Keep shadow-variable join refinement on.
    pub shadow: bool,
    /// Merge speculative paths at rollback instead of at decode.
    pub merge_at_rollback: bool,
    /// Unroll counted loops before the analysis.
    pub unroll: bool,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self {
            cache_lines: 512,
            json: false,
            baseline: false,
            shadow: true,
            merge_at_rollback: false,
            unroll: true,
        }
    }
}

impl AnalyzeConfig {
    /// Builds the validated [`AnalysisOptions`] these knobs describe.
    ///
    /// # Errors
    ///
    /// Returns the builder's message for inconsistent configurations
    /// (e.g. a zero-line cache).
    pub fn options(&self) -> Result<AnalysisOptions, String> {
        let mut builder = AnalysisOptions::builder()
            .cache(CacheConfig::fully_associative(self.cache_lines, 64))
            .speculative(!self.baseline)
            .shadow(self.shadow)
            .unroll_loops(self.unroll);
        if self.merge_at_rollback {
            builder = builder.merge_strategy(MergeStrategy::MergeAtRollback);
        }
        builder
            .build()
            .map_err(|err| format!("invalid configuration: {err}"))
    }

    /// The row label of the configuration (`baseline` / `speculative`).
    pub fn label(&self) -> &'static str {
        if self.baseline {
            "baseline"
        } else {
            "speculative"
        }
    }
}

/// The banner line of human-readable single-program output.
pub fn banner(program: &Program, cache_lines: usize) -> String {
    format!(
        "analysing `{}` ({} blocks, {} instructions, {} branches) on a {}-line cache\n",
        program.name(),
        program.blocks().len(),
        program.instruction_count(),
        program.branch_count(),
        cache_lines
    )
}

/// Re-indents a nested JSON blob by two spaces (cosmetic only).
fn indent_json(json: &str) -> String {
    json.replace('\n', "\n  ")
}

/// Per-access JSON array for `analyze --json`.
fn accesses_json(result: &AnalysisResult) -> String {
    let mut out = String::from("[\n");
    let accesses = result.accesses();
    for (i, access) in accesses.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"block\": {}, ",
            json::string(&result.program.block(access.block).label())
        ));
        out.push_str(&format!(
            "\"region\": {}, ",
            json::string(&access.region_name)
        ));
        out.push_str(&format!("\"inst_index\": {}, ", access.inst_index));
        out.push_str(&format!("\"observable_hit\": {}, ", access.observable_hit));
        out.push_str(&format!(
            "\"speculative_miss\": {}, ",
            access.is_speculative_miss()
        ));
        out.push_str(&format!(
            "\"secret_dependent\": {}",
            access.secret_dependent
        ));
        out.push_str(if i + 1 == accesses.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]");
    out
}

/// Runs one `analyze` configuration against a prepared session and renders
/// the output the CLI prints — text or JSON per [`AnalyzeConfig::json`].
/// One render path serves `specan analyze` and the server, which is what
/// makes warm service responses byte-identical (post timing-strip) to
/// one-shot runs.
///
/// # Errors
///
/// Returns the message of an invalid configuration.
pub fn analyze_output(
    prepared: &PreparedProgram,
    config: &AnalyzeConfig,
) -> Result<String, String> {
    let options = config.options()?;
    let program = prepared.program();
    let result = prepared.run(&options);
    // The leak verdict, derived the same way `spec_analysis::detect_leaks`
    // derives it: a secret-indexed access leaks unless it is a must-hit
    // that also never misses during squashed speculation.
    let secret_accesses = result.secret_accesses().count();
    let findings = result
        .secret_accesses()
        .filter(|access| !access.observable_hit || access.is_speculative_miss())
        .count();
    let leak_detected = findings > 0;
    if config.json {
        let report = Report::from_runs(program.name(), [(config.label(), &result)]);
        // Wrap the summary row together with the per-access detail.
        return Ok(format!(
            "{{\n  \"summary\": {},\n  \"leak_detected\": {},\n  \"accesses\": {}\n}}",
            indent_json(&report.to_json()),
            leak_detected,
            accesses_json(&result)
        ));
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", banner(program, config.cache_lines));
    let _ = writeln!(
        out,
        "== {} analysis of `{}` ==",
        config.label(),
        program.name()
    );
    let _ = writeln!(
        out,
        "  accesses: {}   guaranteed hits: {}   possible misses: {}   squashed misses: {}",
        result.access_count(),
        result.must_hit_count(),
        result.miss_count(),
        result.speculative_miss_count()
    );
    let _ = writeln!(
        out,
        "  speculated branches: {}   fixpoint iterations: {}   analysis time: {:.3}s",
        result.speculated_branches,
        result.iterations(),
        result.elapsed.as_secs_f64()
    );
    for access in result.accesses() {
        if access.observable_hit && !access.is_speculative_miss() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:>10}  {:<20} {}{}",
            result.program.block(access.block).label(),
            format!("{}[#{}]", access.region_name, access.inst_index),
            if access.observable_hit {
                "hit, but may miss speculatively"
            } else {
                "may miss"
            },
            if access.secret_dependent {
                "  [secret-indexed]"
            } else {
                ""
            }
        );
    }
    if secret_accesses == 0 {
        let _ = writeln!(
            out,
            "  no secret-indexed accesses: side-channel check not applicable"
        );
    } else if leak_detected {
        let _ = writeln!(
            out,
            "  LEAK: {findings} of {secret_accesses} secret-indexed accesses may show secret-dependent timing"
        );
    } else {
        let _ = writeln!(out, "  no cache side-channel leak detected");
    }
    Ok(out.trim_end().to_string())
}

/// Runs the standard comparison panel against a prepared session and
/// renders single-program `compare` output — shared by the CLI and the
/// server.
///
/// # Errors
///
/// Returns the message of a degenerate cache geometry.
pub fn compare_output(
    prepared: &PreparedProgram,
    cache_lines: usize,
    render_json: bool,
) -> Result<String, String> {
    let cache = CacheConfig::fully_associative(cache_lines, 64);
    // Reject degenerate geometries with a usage error before the panel's
    // presets (which assume a valid cache) are built.
    AnalysisOptions::builder()
        .cache(cache)
        .build()
        .map_err(|err| format!("invalid configuration: {err}"))?;
    let suite = prepared.run_suite(&comparison_configs(cache));
    let report = suite.report();
    Ok(if render_json {
        report.to_json()
    } else {
        format!(
            "{}\n{}",
            banner(prepared.program(), cache_lines),
            report.to_string().trim_end()
        )
    })
}

/// Renders a scan report exactly as `specan scan` prints it.
pub fn scan_output(report: &BatchReport, render_json: bool) -> String {
    if render_json {
        report.to_json()
    } else {
        report.to_string().trim_end().to_string()
    }
}

/// One request of the service protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One `specan analyze` unit: a program source and its knobs.
    Analyze {
        /// The `.spec` source text.
        source: String,
        /// The configuration knobs.
        config: AnalyzeConfig,
    },
    /// One single-program `specan compare` run.
    Compare {
        /// The `.spec` source text.
        source: String,
        /// Cache size in 64-byte lines.
        cache_lines: usize,
        /// Render JSON instead of the table.
        json: bool,
    },
    /// A bundle scan over inline sources, in bundle order.
    Scan {
        /// The `.spec` sources, in bundle order.
        sources: Vec<String>,
        /// The panel to run every program under.
        panel: PanelSpec,
        /// Render JSON instead of the table.
        json: bool,
    },
    /// Service introspection: counters and session warmth.
    Status,
    /// Telemetry scrape: the server's metrics registry rendered in
    /// Prometheus text-exposition format.
    Metrics,
    /// Stop accepting connections and drain the worker pool.
    Shutdown,
}

impl Request {
    /// Serializes the request as one protocol line (no trailing newline).
    pub fn to_json(&self, id: u64) -> String {
        let head = format!("{{\"v\": {PROTOCOL_VERSION}, \"id\": {id}");
        match self {
            Request::Analyze { source, config } => format!(
                "{head}, \"cmd\": \"analyze\", \"cache_lines\": {}, \"json\": {}, \
                 \"baseline\": {}, \"shadow\": {}, \"merge_at_rollback\": {}, \
                 \"unroll\": {}, \"program\": {}}}",
                config.cache_lines,
                config.json,
                config.baseline,
                config.shadow,
                config.merge_at_rollback,
                config.unroll,
                json::string(source)
            ),
            Request::Compare {
                source,
                cache_lines,
                json: render_json,
            } => format!(
                "{head}, \"cmd\": \"compare\", \"cache_lines\": {cache_lines}, \
                 \"json\": {render_json}, \"program\": {}}}",
                json::string(source)
            ),
            Request::Scan {
                sources,
                panel,
                json: render_json,
            } => {
                let mut out = format!(
                    "{head}, \"cmd\": \"scan\", \"panel\": {}, \"json\": {render_json}, \
                     \"programs\": [",
                    panel.to_json()
                );
                for (i, source) in sources.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json::string(source));
                }
                out.push_str("]}");
                out
            }
            Request::Status => format!("{head}, \"cmd\": \"status\"}}"),
            Request::Metrics => format!("{head}, \"cmd\": \"metrics\"}}"),
            Request::Shutdown => format!("{head}, \"cmd\": \"shutdown\"}}"),
        }
    }

    /// Parses one protocol line into `(id, request)`.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an error response: invalid JSON, an
    /// unsupported protocol version, or a malformed request shape.
    pub fn from_json(line: &str, limits: &ParseLimits) -> Result<(Option<u64>, Request), String> {
        let value = JsonValue::parse_with_limits(line, limits).map_err(|err| err.to_string())?;
        let id = value.get("id").and_then(JsonValue::as_u64);
        if let Some(version) = value.get("v").and_then(JsonValue::as_u64) {
            if version != PROTOCOL_VERSION {
                return Err(format!(
                    "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION})"
                ));
            }
        }
        let cmd = value
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or("missing `cmd`")?;
        let flag = |key: &str, default: bool| {
            value
                .get(key)
                .and_then(JsonValue::as_bool)
                .unwrap_or(default)
        };
        let cache_lines = || {
            value
                .get("cache_lines")
                .map(|v| {
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or("malformed `cache_lines`")
                })
                .unwrap_or(Ok(512))
        };
        let source = || {
            value
                .get("program")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or("missing `program` source")
        };
        let request = match cmd {
            "analyze" => Request::Analyze {
                source: source()?,
                config: AnalyzeConfig {
                    cache_lines: cache_lines()?,
                    json: flag("json", false),
                    baseline: flag("baseline", false),
                    shadow: flag("shadow", true),
                    merge_at_rollback: flag("merge_at_rollback", false),
                    unroll: flag("unroll", true),
                },
            },
            "compare" => Request::Compare {
                source: source()?,
                cache_lines: cache_lines()?,
                json: flag("json", false),
            },
            "scan" => {
                let panel = PanelSpec::from_json(value.get("panel").ok_or("missing `panel`")?)
                    .map_err(|err| err.to_string())?;
                let sources = value
                    .get("programs")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `programs` array")?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or("malformed program source")
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Request::Scan {
                    sources,
                    panel,
                    json: flag("json", false),
                }
            }
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown command `{other}`")),
        };
        Ok((id, request))
    }
}

/// One response of the service protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request's `id`, echoed back (absent when the request had none
    /// or was too malformed to carry one).
    pub id: Option<u64>,
    /// Whether the request executed.
    pub ok: bool,
    /// The exit code the equivalent one-shot CLI run would end with
    /// (`0` clean, `1` leak for `scan`, `2` error).
    pub exit: u8,
    /// On success: exactly the bytes the CLI prints to stdout.
    pub output: String,
    /// On failure: the error message.
    pub error: Option<String>,
}

impl Response {
    pub(crate) fn success(id: Option<u64>, exit: u8, output: String) -> Self {
        Self {
            id,
            ok: true,
            exit,
            output,
            error: None,
        }
    }

    pub(crate) fn failure(id: Option<u64>, message: String) -> Self {
        Self {
            id,
            ok: false,
            exit: 2,
            output: String::new(),
            error: Some(message),
        }
    }

    /// Serializes the response as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        if let Some(id) = self.id {
            out.push_str(&format!("\"id\": {id}, "));
        }
        out.push_str(&format!("\"ok\": {}, \"exit\": {}", self.ok, self.exit));
        if let Some(error) = &self.error {
            out.push_str(&format!(", \"error\": {}", json::string(error)));
        } else {
            out.push_str(&format!(", \"output\": {}", json::string(&self.output)));
        }
        out.push('}');
        out
    }

    /// Parses one protocol line back into a response.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not a valid response document.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let value = JsonValue::parse(line).map_err(|err| err.to_string())?;
        let ok = value
            .get("ok")
            .and_then(JsonValue::as_bool)
            .ok_or("missing `ok`")?;
        let exit = value
            .get("exit")
            .and_then(JsonValue::as_u64)
            .and_then(|code| u8::try_from(code).ok())
            .ok_or("missing `exit`")?;
        Ok(Response {
            id: value.get("id").and_then(JsonValue::as_u64),
            ok,
            exit,
            output: value
                .get("output")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            error: value
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Fixed worker-pool size (the request-level parallelism).
    pub jobs: NonZeroUsize,
    /// Per-request line cap; longer lines close the connection with an
    /// error response instead of buffering without bound.
    pub max_request_bytes: usize,
    /// LRU bound on every prepared variant's fixpoint-round cache — a
    /// long-lived server must not grow without limit.  Eviction never
    /// changes results.
    pub round_cache_capacity: NonZeroUsize,
    /// Byte budget over the whole session cache (`--max-session-bytes`):
    /// resident [`PreparedProgram`]s are byte-accounted after every request
    /// and evicted least recently used first until the cache fits.  `None`
    /// (the default) keeps one warm session per program name forever —
    /// fine for a trusted workload, unbounded for a public endpoint fed a
    /// stream of distinct programs.  Eviction never changes responses.
    pub max_session_bytes: Option<u64>,
    /// Artifact-store directory (`--artifact-dir`): when set, prepared
    /// sessions persist across restarts — installs write through, dirty
    /// entries flush at request boundaries, and a cache miss tries a disk
    /// load before a cold preparation.  `None` (the default) keeps the
    /// service purely in-memory.  The store never changes responses.
    pub artifact_dir: Option<PathBuf>,
    /// Byte budget over the on-disk store (`--max-store-bytes`), enforced
    /// by recency-based GC after every write.  `None` is unbounded.
    pub max_store_bytes: Option<u64>,
    /// Trace-log path (`--trace-log`): when set, every completed request
    /// appends one NDJSON event (id, kind, fingerprint, tier, per-phase
    /// durations, worker) through a bounded channel to a dedicated writer
    /// thread.  A full channel drops events instead of blocking workers;
    /// the drop count is itself a metric.  `None` (the default) traces
    /// nothing.
    pub trace_log: Option<PathBuf>,
}

impl ServiceConfig {
    /// A config with `jobs` workers and default caps (8 MiB requests,
    /// 256-round caches, no session byte budget, no artifact store).
    pub fn new(jobs: NonZeroUsize) -> Self {
        Self {
            jobs,
            max_request_bytes: 8 << 20,
            round_cache_capacity: NonZeroUsize::new(256).expect("nonzero"),
            max_session_bytes: None,
            artifact_dir: None,
            max_store_bytes: None,
            trace_log: None,
        }
    }

    /// A validating builder seeded with [`ServiceConfig::new`]'s defaults,
    /// mirroring [`AnalysisOptions::builder`]: setters accumulate, and
    /// [`ServiceConfigBuilder::build`] rejects incoherent combinations
    /// instead of letting them reach a running server.
    pub fn builder(jobs: NonZeroUsize) -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: Self::new(jobs),
        }
    }
}

/// Why a [`ServiceConfigBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceConfigError {
    /// The request line cap is zero, which would reject every request.
    ZeroRequestCap,
    /// A store byte budget was set without an artifact directory: there is
    /// no store to bound.
    StoreBudgetWithoutStore,
}

impl std::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroRequestCap => {
                write!(f, "max request bytes must be non-zero")
            }
            Self::StoreBudgetWithoutStore => {
                write!(f, "--max-store-bytes requires --artifact-dir")
            }
        }
    }
}

impl std::error::Error for ServiceConfigError {}

/// Builder for [`ServiceConfig`] — see [`ServiceConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Per-request line cap in bytes (default 8 MiB).
    pub fn max_request_bytes(mut self, bytes: usize) -> Self {
        self.config.max_request_bytes = bytes;
        self
    }

    /// LRU bound on each prepared variant's fixpoint-round cache.
    pub fn round_cache_capacity(mut self, capacity: NonZeroUsize) -> Self {
        self.config.round_cache_capacity = capacity;
        self
    }

    /// Byte budget over the whole session cache (`--max-session-bytes`).
    pub fn max_session_bytes(mut self, bytes: u64) -> Self {
        self.config.max_session_bytes = Some(bytes);
        self
    }

    /// Artifact-store directory (`--artifact-dir`).
    pub fn artifact_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.artifact_dir = Some(dir.into());
        self
    }

    /// Byte budget over the on-disk store (`--max-store-bytes`).  Only
    /// meaningful together with [`ServiceConfigBuilder::artifact_dir`].
    pub fn max_store_bytes(mut self, bytes: u64) -> Self {
        self.config.max_store_bytes = Some(bytes);
        self
    }

    /// NDJSON trace-log path (`--trace-log`).
    pub fn trace_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.trace_log = Some(path.into());
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ServiceConfigError`] for a zero request cap or a store budget
    /// without a store.
    pub fn build(self) -> Result<ServiceConfig, ServiceConfigError> {
        if self.config.max_request_bytes == 0 {
            return Err(ServiceConfigError::ZeroRequestCap);
        }
        if self.config.max_store_bytes.is_some() && self.config.artifact_dir.is_none() {
            return Err(ServiceConfigError::StoreBudgetWithoutStore);
        }
        Ok(self.config)
    }
}

/// Lifetime counters of one [`serve`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Requests parsed (including `status`/`shutdown`).
    pub requests: u64,
    /// Requests that failed (parse or execution).
    pub errors: u64,
}

/// The protocol commands a request ledger tracks, plus `invalid` for
/// lines that never parsed into a command at all.
pub(crate) const REQUEST_KINDS: [&str; 7] = [
    "analyze", "compare", "scan", "status", "metrics", "shutdown", "invalid",
];

/// The accounting kind of a parsed request — one of [`REQUEST_KINDS`].
pub(crate) fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::Analyze { .. } => "analyze",
        Request::Compare { .. } => "compare",
        Request::Scan { .. } => "scan",
        Request::Status => "status",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// Emits one complete stderr line with a single `write_all` so per-request
/// accounting lines from concurrent workers never interleave mid-line (an
/// `eprintln!` with a formatted body may take the stderr lock per fragment
/// on some platforms; one pre-rendered buffer never does).
pub(crate) fn log_line(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = io::stderr().write_all(buf.as_bytes());
}

/// The request-ledger half of a server's telemetry: one ok/error counter
/// pair per protocol command and one end-to-end latency histogram per
/// *queued* command, pre-registered so the hot path records without ever
/// touching the registry lock.  Counting happens once, at completion —
/// which makes `requests == ok + errors` hold in every snapshot by
/// construction (the consistency the old free-running `AtomicU64` pair
/// could not promise a scraper).
pub(crate) struct RequestTelemetry {
    kinds: Vec<KindCell>,
}

struct KindCell {
    kind: &'static str,
    ok: spec_telemetry::Counter,
    error: spec_telemetry::Counter,
    /// Only the queued commands (`analyze`/`compare`/`scan`) get a latency
    /// series; inline commands answer from the reader thread in
    /// microseconds and would only pad the exposition.
    latency: Option<Histogram>,
}

impl RequestTelemetry {
    pub(crate) fn new(registry: &Registry, total_name: &str, seconds_name: &str) -> Self {
        let kinds = REQUEST_KINDS
            .iter()
            .map(|&kind| KindCell {
                kind,
                ok: registry.counter(
                    total_name,
                    "Requests completed, by protocol command and outcome.",
                    &[("kind", kind), ("outcome", "ok")],
                ),
                error: registry.counter(
                    total_name,
                    "Requests completed, by protocol command and outcome.",
                    &[("kind", kind), ("outcome", "error")],
                ),
                latency: matches!(kind, "analyze" | "compare" | "scan").then(|| {
                    registry.histogram(
                        seconds_name,
                        "End-to-end request latency (queue wait included), by command.",
                        &[("kind", kind)],
                    )
                }),
            })
            .collect();
        Self { kinds }
    }

    /// Records one finished request: outcome counter always, latency only
    /// for kinds that carry a histogram and calls that supply a duration.
    pub(crate) fn complete(&self, kind: &str, ok: bool, elapsed: Option<Duration>) {
        let cell = self
            .kinds
            .iter()
            .find(|cell| cell.kind == kind)
            .expect("kind is one of REQUEST_KINDS");
        if ok {
            cell.ok.inc();
        } else {
            cell.error.inc();
        }
        if let (Some(histogram), Some(elapsed)) = (&cell.latency, elapsed) {
            histogram.record(elapsed);
        }
    }
}

/// Everything `serve` measures, pre-registered on one [`Registry`] so the
/// record path is lock-free and a `metrics` scrape is one coherent
/// snapshot.
struct ServeTelemetry {
    registry: Registry,
    requests: RequestTelemetry,
    queue_wait: Histogram,
    phase_acquire: Histogram,
    phase_prepare: Histogram,
    phase_run: Histogram,
    phase_persist: Histogram,
    programs: Gauge,
    resident_bytes: Gauge,
    /// Block summaries transplanted from a donor fixpoint instead of
    /// re-solved (see `spec_core::summary`).  Sampled at scrape time from
    /// the session cache's aggregate and kept monotone through
    /// `summary_reuse_seen`: entry evictions shrink the aggregate, which a
    /// counter must never reflect as a decrease.
    summary_reuse: spec_telemetry::Counter,
    summary_reuse_seen: AtomicU64,
}

impl ServeTelemetry {
    fn new() -> Self {
        let registry = Registry::new();
        let requests =
            RequestTelemetry::new(&registry, "spec_requests_total", "spec_request_seconds");
        let phase = |name: &'static str| {
            registry.histogram(
                "spec_phase_seconds",
                "Per-phase request latency: acquire, prepare, run, persist.",
                &[("phase", name)],
            )
        };
        Self {
            requests,
            queue_wait: registry.histogram(
                "spec_queue_wait_seconds",
                "Time a queued request waited for a pool worker.",
                &[],
            ),
            phase_acquire: phase("acquire"),
            phase_prepare: phase("prepare"),
            phase_run: phase("run"),
            phase_persist: phase("persist"),
            programs: registry.gauge(
                "spec_sessions_programs",
                "Programs resident in the session cache.",
                &[],
            ),
            resident_bytes: registry.gauge(
                "spec_session_resident_bytes",
                "Estimated bytes of resident prepared sessions.",
                &[],
            ),
            summary_reuse: registry.counter(
                "spec_summary_reuse_total",
                "Block summaries transplanted from a donor fixpoint instead of re-solved.",
                &[],
            ),
            summary_reuse_seen: AtomicU64::new(0),
            registry,
        }
    }
}

/// Per-request trace context, filled in along the execution path and
/// rendered as one NDJSON line when a `--trace-log` is configured.
#[derive(Default)]
struct RequestTrace {
    fingerprint: Option<Fingerprint>,
    tier: Option<&'static str>,
    acquire: Duration,
    prepare: Duration,
    run: Duration,
    persist: Duration,
}

impl RequestTrace {
    fn render(
        &self,
        id: Option<u64>,
        kind: &str,
        worker: usize,
        ok: bool,
        total: Duration,
    ) -> String {
        format!(
            "{{\"id\": {}, \"kind\": \"{kind}\", \"ok\": {ok}, \"worker\": {worker}, \
             \"fingerprint\": {}, \"tier\": {}, \"acquire_secs\": {}, \"prepare_secs\": {}, \
             \"run_secs\": {}, \"persist_secs\": {}, \"total_secs\": {}}}",
            id.map_or_else(|| "null".to_string(), |id| id.to_string()),
            self.fingerprint
                .map_or_else(|| "null".to_string(), |fp| format!("\"{}\"", fp.to_hex())),
            self.tier
                .map_or_else(|| "null".to_string(), |tier| format!("\"{tier}\"")),
            self.acquire.as_secs_f64(),
            self.prepare.as_secs_f64(),
            self.run.as_secs_f64(),
            self.persist.as_secs_f64(),
            total.as_secs_f64(),
        )
    }
}

struct ServerState {
    /// The tiered session front every worker resolves programs through:
    /// L0 hits stay on the worker's own thread, cold prepares run outside
    /// the shared lock by construction of the acquire/commit protocol.
    sessions: CacheSession,
    shutdown: AtomicBool,
    telemetry: ServeTelemetry,
    trace: Option<TraceSender>,
    jobs: usize,
    limits: ParseLimits,
    addr: SocketAddr,
}

struct Job {
    id: Option<u64>,
    request: Request,
    out: Arc<Mutex<TcpStream>>,
    /// When the reader queued the job — queue wait and end-to-end latency
    /// both measure from here.
    enqueued: Instant,
}

/// Runs the analysis service on `listener` until a `shutdown` request
/// arrives, then drains the worker pool and returns the lifetime counters.
///
/// Every connection gets a reader thread; work requests are queued onto
/// `config.jobs` pool workers sharing one warm [`SessionCache`].  One
/// `serve: <cmd> ...` line per request goes to stderr — the server's
/// accounting log, and the CI gate's evidence of warm reuse.
///
/// # Errors
///
/// Propagates listener-level I/O errors; per-connection failures only
/// close that connection.
pub fn serve(listener: TcpListener, config: &ServiceConfig) -> io::Result<ServiceReport> {
    let addr = listener.local_addr()?;
    let analyzer = Analyzer::new()
        .max_suite_threads(NonZeroUsize::MIN)
        .round_cache_capacity(config.round_cache_capacity);
    let mut cache = SessionCache::with_analyzer(analyzer);
    if let Some(bytes) = config.max_session_bytes {
        cache = cache.max_session_bytes(bytes);
    }
    let telemetry = ServeTelemetry::new();
    if let Some(dir) = &config.artifact_dir {
        let mut store =
            PreparedStore::open(dir).telemetry(StoreTelemetry::registered(&telemetry.registry));
        if let Some(bytes) = config.max_store_bytes {
            store = store.max_store_bytes(bytes);
        }
        cache = cache.artifact_store(store);
    }
    // Declared before `state` so its drop (which drains and joins the
    // writer thread) runs *after* the state's `TraceSender` clone is gone.
    let trace_log = config
        .trace_log
        .as_deref()
        .map(TraceLog::create)
        .transpose()?;
    let sessions = CacheSession::new(cache);
    sessions.set_tier_telemetry(TierTelemetry::registered(&telemetry.registry));
    let state = ServerState {
        sessions,
        shutdown: AtomicBool::new(false),
        trace: trace_log.as_ref().map(TraceLog::sender),
        telemetry,
        jobs: config.jobs.get(),
        limits: ParseLimits {
            max_bytes: config.max_request_bytes,
            ..ParseLimits::default()
        },
        addr,
    };
    let (tx, rx) = mpsc::channel::<Job>();
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        let rx = &rx;
        let state = &state;
        for worker in 0..state.jobs {
            scope.spawn(move || worker_loop(rx, state, worker));
        }
        loop {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(err) => {
                    // Transient by assumption: ECONNABORTED (peer reset
                    // mid-handshake) and EMFILE (fd pressure) both clear on
                    // their own, and a long-running service must outlive
                    // them.  The pause stops an error storm from spinning;
                    // the loop re-checks the shutdown flag either way.
                    if err.kind() != io::ErrorKind::Interrupted {
                        eprintln!("serve: accept error (retrying): {err}");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    continue;
                }
            };
            if state.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection of the shutdown path.
                break;
            }
            let tx = tx.clone();
            scope.spawn(move || connection_loop(stream, tx, state));
        }
        // Dropping the accept loop's sender lets the pool drain and exit
        // once the connection readers (each holding a clone) finish.
        drop(tx);
    });
    let snapshot = state.telemetry.registry.snapshot();
    Ok(ServiceReport {
        requests: snapshot.counter_sum("spec_requests_total"),
        errors: snapshot.counter_sum_where("spec_requests_total", |labels| {
            labels.iter().any(|(k, v)| k == "outcome" && v == "error")
        }),
    })
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, state: &ServerState, worker: usize) {
    loop {
        let job = {
            let rx = relock(rx);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // every sender is gone: drained
            }
        };
        state.telemetry.queue_wait.record(job.enqueued.elapsed());
        let kind = request_kind(&job.request);
        let mut trace = RequestTrace::default();
        // The backstop of the per-program containment in [`execute`]: a
        // panic anywhere in a request's execution must cost that request an
        // error response, never the whole server — unwinding out of a
        // scoped pool worker would tear down `serve` itself.  Shared state
        // stays coherent because every lock is taken through [`relock`].
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&job.request, state, &mut trace)
        }))
        .unwrap_or_else(|payload| {
            Err(format!(
                "internal: request panicked: {}",
                panic_message(payload.as_ref())
            ))
        });
        let response = match executed {
            Ok((exit, output)) => Response::success(job.id, exit, output),
            Err(message) => {
                // A failed request may still have grown resident artifacts
                // (e.g. a render error after the analysis ran); re-enforce
                // so the byte bound holds at *every* request boundary, not
                // just successful ones.
                session_accounting(state, &mut trace);
                Response::failure(job.id, message)
            }
        };
        // Counted before the response bytes leave: a client that scrapes
        // `metrics` right after reading its response must see this request
        // in the ledger.
        let elapsed = job.enqueued.elapsed();
        state
            .telemetry
            .requests
            .complete(kind, response.ok, Some(elapsed));
        write_response(&job.out, &response);
        if let Some(sender) = &state.trace {
            sender.emit(trace.render(job.id, kind, worker, response.ok, elapsed));
        }
    }
}

/// Re-enforces the session byte budget after a request and renders the
/// accounting tail of the per-request log line — the empty string on an
/// unbounded server, which then neither measures nor logs anything extra
/// (re-walking every resident artifact per request would be pure overhead
/// with no budget to enforce).  Enforcement happens *after* the analysis
/// because running configurations grows a resident entry's memoized
/// artifacts — measuring at install time alone would let the cache drift
/// over budget between installs.  Together with the error-path enforcement
/// in [`worker_loop`], its placement makes `session_bytes` ≤ budget an
/// invariant at every request boundary, which the soak test and the CI
/// eviction gate watch.
fn session_accounting(state: &ServerState, trace: &mut RequestTrace) -> String {
    let sessions = &state.sessions;
    // An unbounded, store-free server has nothing to flush, enforce or
    // log — and this check reads cached configuration, no lock taken.
    if !sessions.has_store() && sessions.budget().is_none() {
        return String::new();
    }
    // One checkpoint does the whole boundary pass in the right order:
    // flush entries whose memoized artifacts grew during this request (so
    // a crash or restart at any request boundary finds them on disk), then
    // enforce the byte budget — which skips its re-measure entirely when
    // the coarse growth tick proves nothing changed.
    let persist = Instant::now();
    let stats = sessions.checkpoint();
    let persist_elapsed = persist.elapsed();
    state.telemetry.phase_persist.record(persist_elapsed);
    trace.persist += persist_elapsed;
    let mut tail = String::new();
    if sessions.has_store() {
        // The store line is the restart gate's evidence that a warm answer
        // came from a disk load, not a re-preparation.
        tail.push_str(&format!(
            " store: {} hits, {} misses, {} bytes loaded",
            stats.store_hits, stats.store_misses, stats.store_loaded_bytes
        ));
    }
    if sessions.budget().is_some() {
        tail.push_str(&format!(
            " session: {} bytes resident, {} evicted",
            stats.session_bytes, stats.session_evictions
        ));
    }
    tail
}

/// Executes one queued request and returns `(exit code, output)`.
fn execute(
    request: &Request,
    state: &ServerState,
    trace: &mut RequestTrace,
) -> Result<(u8, String), String> {
    match request {
        Request::Analyze { source, config } => {
            // Validate the configuration before the program enters the
            // cache: a bad request must not leave side effects.
            config.options()?;
            let (prepared, how) = resolve_session(source, state, true, trace)?;
            let run = Instant::now();
            let output = analyze_output(&prepared, config);
            let run_elapsed = run.elapsed();
            state.telemetry.phase_run.record(run_elapsed);
            trace.run += run_elapsed;
            let output = output?;
            log_line(&format!(
                "serve: analyze `{}` ({how}){}",
                prepared.program().name(),
                session_accounting(state, trace)
            ));
            Ok((0, output))
        }
        Request::Compare {
            source,
            cache_lines,
            json: render_json,
        } => {
            AnalysisOptions::builder()
                .cache(CacheConfig::fully_associative(*cache_lines, 64))
                .build()
                .map_err(|err| format!("invalid configuration: {err}"))?;
            let (prepared, how) = resolve_session(source, state, false, trace)?;
            let run = Instant::now();
            let output = compare_output(&prepared, *cache_lines, *render_json);
            let run_elapsed = run.elapsed();
            state.telemetry.phase_run.record(run_elapsed);
            trace.run += run_elapsed;
            let output = output?;
            log_line(&format!(
                "serve: compare `{}` ({how}){}",
                prepared.program().name(),
                session_accounting(state, trace)
            ));
            Ok((0, output))
        }
        Request::Scan {
            sources,
            panel,
            json: render_json,
        } => {
            let configs = panel.configs().map_err(|err| err.to_string())?;
            if sources.is_empty() {
                return Err("no programs in scan request".to_string());
            }
            // Resolve (and, cold, prepare) every program in bundle order,
            // then fan the per-program suites out across scoped threads —
            // one pool worker owns the request, but the bundle itself runs
            // `jobs`-wide, matching what `specan scan` does locally.  The
            // transient oversubscription is bounded by `jobs` extra
            // threads per in-flight scan, and determinism is untouched:
            // verdicts are collected in bundle order.
            let mut sessions = Vec::with_capacity(sources.len());
            let mut warm = 0usize;
            for source in sources {
                let (prepared, how) = resolve_session(source, state, false, trace)?;
                if sessions.iter().any(|other: &Arc<PreparedProgram>| {
                    other.program().name() == prepared.program().name()
                }) {
                    return Err(format!(
                        "program `{}` appears more than once in the bundle",
                        prepared.program().name()
                    ));
                }
                warm += usize::from(matches!(how, "warm" | "l0"));
                sessions.push(prepared);
            }
            let threads = state.jobs.min(sessions.len()).max(1);
            let run = Instant::now();
            let verdicts = fan_out_catching(&sessions, threads, |prepared| {
                let report = prepared.run_suite(&configs).report().without_timing();
                ProgramVerdict::from_report(report, prepared.fingerprint())
            });
            let run_elapsed = run.elapsed();
            state.telemetry.phase_run.record(run_elapsed);
            trace.run += run_elapsed;
            let mut programs: Vec<ProgramVerdict> = Vec::with_capacity(sessions.len());
            for (slot, prepared) in verdicts.into_iter().zip(&sessions) {
                let name = prepared.program().name();
                match slot {
                    Some(Ok(verdict)) => programs.push(verdict),
                    // A poisoned slot — the worker's suite run panicked —
                    // fails this request with a verdict-shaped message and
                    // leaves the server (and the rest of the pool) alive.
                    Some(Err(panic)) => {
                        return Err(format!("internal: analysis of `{name}` panicked: {panic}"))
                    }
                    None => {
                        return Err(format!(
                            "internal: analysis of `{name}` produced no verdict"
                        ))
                    }
                }
            }
            log_line(&format!(
                "serve: scan {} program(s) ({} warm){}",
                sessions.len(),
                warm,
                session_accounting(state, trace)
            ));
            let stamp = BundleStamp {
                checksum: panel_checksum(*panel, programs.iter().map(|p| p.fingerprint)),
                total: programs.len(),
                start: 0,
            };
            let report = BatchReport {
                panel: *panel,
                stamp: Some(stamp),
                programs,
            };
            let exit = u8::from(report.any_leak());
            Ok((exit, scan_output(&report, *render_json)))
        }
        // Handled inline by the connection reader; reaching a worker is a
        // scheduling bug.
        Request::Status | Request::Metrics | Request::Shutdown => {
            Err("internal: unqueued request".to_string())
        }
    }
}

/// Renders a `catch_unwind` payload as the panic's message (the common
/// `&str`/`String` payloads verbatim, a placeholder otherwise).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Fans `work` out over `items` across at most `threads` scoped workers,
/// catching per-item panics: a poisoned item lands in its slot as
/// `Some(Err(message))` instead of unwinding the pool — which, inside
/// `serve`'s scoped worker threads, would kill the entire server.  Slots of
/// completed items are `Some(Ok(_))` in input order; `None` only if a
/// worker died outside the guarded region (which the guard makes
/// unreachable, but the type keeps the caller honest).
pub(crate) fn fan_out_catching<T, R, F>(
    items: &[T],
    threads: usize,
    work: F,
) -> Vec<Option<Result<R, String>>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<R, String>>>> =
        Mutex::new(items.iter().map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                // AssertUnwindSafe: a panicking `work` may leave `item`'s
                // interior caches half-updated, but every shared structure
                // it can reach is lock-protected and re-acquired through
                // `relock`, and the item's result is discarded as an error.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(item)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                relock(&slots)[index] = Some(outcome);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses `source` and resolves it through the tiered session front,
/// returning the session to run against plus the accounting tag (`l0`,
/// `warm`, `store`, `prepared`, `renamed`).
///
/// This is one [`CacheSession::acquire`] (name-exact, for `analyze`-shaped
/// output that embeds region and block names) or
/// [`CacheSession::acquire_structural`] (for rename-insensitive outputs):
/// a steady-state hit never takes the session lock at all, and a miss
/// hands back a guard whose expensive [`Analyzer::prepare`] provably runs
/// outside it — one cold request never serializes the whole pool.  Racing
/// preparations of the same program are benign (the sessions are
/// interchangeable; last writer wins).
fn resolve_session(
    source: &str,
    state: &ServerState,
    name_sensitive: bool,
    trace: &mut RequestTrace,
) -> Result<(Arc<PreparedProgram>, &'static str), String> {
    let acquire = Instant::now();
    let program = parse_program(source).map_err(|err| format!("cannot parse program: {err}"))?;
    let outcome = if name_sensitive {
        state.sessions.acquire(&program)
    } else {
        state.sessions.acquire_structural(&program)
    };
    let acquire_elapsed = acquire.elapsed();
    state.telemetry.phase_acquire.record(acquire_elapsed);
    trace.acquire += acquire_elapsed;
    let how = outcome.tag();
    trace.tier = Some(how);
    let prepared = match outcome {
        CacheOutcome::L0Hit(prepared)
        | CacheOutcome::WarmHit(prepared)
        | CacheOutcome::StoreHit(prepared) => prepared,
        CacheOutcome::NeedsPrepare(guard) => {
            let prepare = Instant::now();
            let prepared = guard.prepare(&program);
            let prepare_elapsed = prepare.elapsed();
            state.telemetry.phase_prepare.record(prepare_elapsed);
            trace.prepare += prepare_elapsed;
            prepared
        }
    };
    trace.fingerprint = Some(prepared.fingerprint());
    Ok((prepared, how))
}

fn status_output(state: &ServerState) -> String {
    let programs = state.sessions.len();
    let stats = state.sessions.stats();
    // Both counters come from one registry snapshot, so a scraper can never
    // observe `errors > requests` or a request counted in one field but not
    // the other — the old pair of free-running atomics could tear.
    let snapshot = state.telemetry.registry.snapshot();
    let requests = snapshot.counter_sum("spec_requests_total");
    let errors = snapshot.counter_sum_where("spec_requests_total", |labels| {
        labels.iter().any(|(k, v)| k == "outcome" && v == "error")
    });
    format!(
        "{{\"protocol\": {PROTOCOL_VERSION}, \"jobs\": {}, \"programs\": {}, \
         \"requests\": {}, \"errors\": {}, \"session\": {{\"inserted\": {}, \
         \"reused\": {}, \"invalidated\": {}, \"session_bytes\": {}, \
         \"session_evictions\": {}, \"store_hits\": {}, \"store_misses\": {}, \
         \"store_loaded_bytes\": {}, \"l0_hits\": {}, \"l1_hits\": {}, \
         \"generation\": {}}}}}",
        state.jobs,
        programs,
        requests,
        errors,
        stats.inserted,
        stats.reused,
        stats.invalidated,
        stats.session_bytes,
        stats.session_evictions,
        stats.store_hits,
        stats.store_misses,
        stats.store_loaded_bytes,
        stats.l0_hits,
        stats.l1_hits,
        stats.generation
    )
}

/// Renders the telemetry registry in Prometheus text-exposition format —
/// the body of a `metrics` response.  The session gauges are sampled here
/// (scrape time) rather than maintained on the hot path.
fn metrics_output(state: &ServerState) -> String {
    state.telemetry.programs.set(state.sessions.len() as f64);
    state
        .telemetry
        .resident_bytes
        .set(state.sessions.resident_bytes() as f64);
    // Reconcile the monotone reuse counter against the sampled aggregate:
    // only growth since the last sample is added, so evictions (which
    // shrink the aggregate) never read as a counter decrease — at worst
    // their unsampled tail is under-counted, never negative.
    let hits = state.sessions.cache_stats().summary_hits;
    let seen = state.telemetry.summary_reuse_seen.swap(hits, Ordering::AcqRel);
    state.telemetry.summary_reuse.add(hits.saturating_sub(seen));
    state.telemetry.registry.render()
}

pub(crate) fn write_response(out: &Mutex<TcpStream>, response: &Response) {
    let mut line = response.to_json();
    line.push('\n');
    let mut stream = relock(out);
    // A client that hung up forfeits its response; the server carries on.
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
}

fn connection_loop(stream: TcpStream, tx: mpsc::Sender<Job>, state: &ServerState) {
    // The timeout is a shutdown poll, not a deadline: an idle connection
    // stays open, but a shutdown elsewhere releases this thread within a
    // beat so `serve` can return.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    loop {
        let line = match read_line_capped(&mut reader, state.limits.max_bytes, &state.shutdown) {
            Ok(Some(line)) => line,
            Ok(None) => return, // EOF or shutdown
            Err(err) => {
                // Oversized or undecodable input desynchronizes the line
                // protocol: answer once, then close the connection.
                state.telemetry.requests.complete("invalid", false, None);
                write_response(&out, &Response::failure(None, err.to_string()));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match Request::from_json(&line, &state.limits) {
            Ok((id, Request::Status)) => {
                // Counted before rendering so the status body's own
                // `requests` field includes this very request.
                state.telemetry.requests.complete("status", true, None);
                write_response(&out, &Response::success(id, 0, status_output(state)));
            }
            Ok((id, Request::Metrics)) => {
                state.telemetry.requests.complete("metrics", true, None);
                write_response(&out, &Response::success(id, 0, metrics_output(state)));
            }
            Ok((id, Request::Shutdown)) => {
                log_line("serve: shutdown requested");
                state.telemetry.requests.complete("shutdown", true, None);
                write_response(&out, &Response::success(id, 0, "shutting down".to_string()));
                state.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so `serve` can wind down.
                let _ = TcpStream::connect(state.addr);
                return;
            }
            Ok((id, request)) => {
                let job = Job {
                    id,
                    request,
                    out: Arc::clone(&out),
                    enqueued: Instant::now(),
                };
                if tx.send(job).is_err() {
                    return; // the pool is gone: shutting down
                }
            }
            Err(message) => {
                state.telemetry.requests.complete("invalid", false, None);
                write_response(&out, &Response::failure(None, message));
            }
        }
    }
}

/// Reads one `\n`-terminated line, accumulating across read timeouts (which
/// double as shutdown polls) and enforcing the byte cap as data arrives —
/// a hostile peer cannot buffer unbounded garbage.  `Ok(None)` means EOF
/// (an unterminated trailing fragment is dropped) or shutdown.
pub(crate) fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    cap: usize,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                    continue;
                }
                Err(err) => return Err(err),
            };
            if buf.is_empty() {
                return Ok(None);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&buf[..nl]);
                    (nl + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds the {cap}-byte cap"),
            ));
        }
        if done {
            return String::from_utf8(line).map(Some).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "request is not valid UTF-8")
            });
        }
    }
}

/// Timeouts of one [`ServiceClient`] connection.
///
/// The default (`None`/`None`) blocks indefinitely, which is right for a
/// trusted local server but wrong for anything production-shaped: a hung
/// (or SIGSTOPped) backend would wedge the caller forever.  `specan submit
/// --connect-timeout-ms/--read-timeout-ms` and the gateway's probe and
/// forwarding paths all connect through [`ServiceClient::connect_with`]
/// with explicit deadlines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientOptions {
    /// Deadline on establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Deadline on each read while waiting for a response line (`None` =
    /// block until the server answers or the connection dies).
    pub read_timeout: Option<Duration>,
}

/// A minimal blocking client for the service protocol — the guts of
/// `specan submit`, also used directly by the bench harness.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServiceClient {
    /// Connects to a running `specan serve` at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit connect/read deadlines — the hardened path
    /// of `specan submit` and the gateway (a dead-but-routable or hung
    /// backend must cost a bounded wait, not a wedged caller).
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures; a connect that
    /// exceeds `options.connect_timeout` surfaces as `TimedOut`.
    pub fn connect_with(addr: &str, options: ClientOptions) -> io::Result<Self> {
        let writer = match options.connect_timeout {
            Some(timeout) => {
                // `TcpStream::connect` has no deadline variant that also
                // resolves, so resolve first and race the candidates
                // sequentially, keeping the most recent failure.
                let mut last_err = None;
                let mut stream = None;
                for sockaddr in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sockaddr, timeout) {
                        Ok(connected) => {
                            stream = Some(connected);
                            break;
                        }
                        Err(err) => last_err = Some(err),
                    }
                }
                stream.ok_or_else(|| {
                    last_err.unwrap_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("`{addr}` resolved to no addresses"),
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        writer.set_read_timeout(options.read_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            next_id: 0,
        })
    }

    /// Sends one request line (pipelining is fine) and returns its id.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = request.to_json(id);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Reads the next response line (responses may arrive out of id order).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; a closed connection or malformed
    /// response surfaces as `UnexpectedEof`/`InvalidData`.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(line.trim_end())
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceClient::send`]/[`ServiceClient::recv`] failures.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let id = self.send(request)?;
        let response = self.recv()?;
        debug_assert_eq!(response.id, Some(id), "call() does not pipeline");
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::PanelKind;

    // A cold secret-indexed lookup: leaks under every panel.
    const TINY: &str = "program tiny\nregion t 128\nsecret_region k 128\nblock main entry:\n  load t[0]\n  load k[secret*64]\n  ret\n";

    #[test]
    fn requests_round_trip_through_the_protocol() {
        let limits = ParseLimits::default();
        let requests = [
            Request::Analyze {
                source: TINY.to_string(),
                config: AnalyzeConfig {
                    cache_lines: 8,
                    json: true,
                    baseline: true,
                    shadow: false,
                    merge_at_rollback: true,
                    unroll: false,
                },
            },
            Request::Compare {
                source: "with \"quotes\"\nand newlines".to_string(),
                cache_lines: 16,
                json: false,
            },
            Request::Scan {
                sources: vec![TINY.to_string(), "second".to_string()],
                panel: PanelSpec {
                    kind: PanelKind::LeakCheck,
                    cache_lines: 8,
                },
                json: true,
            },
            Request::Status,
            Request::Metrics,
            Request::Shutdown,
        ];
        for (i, request) in requests.into_iter().enumerate() {
            let line = request.to_json(i as u64);
            assert!(!line.contains('\n'), "one request, one line: {line}");
            let (id, parsed) = Request::from_json(&line, &limits).unwrap();
            assert_eq!(id, Some(i as u64));
            assert_eq!(parsed, request);
        }
    }

    #[test]
    fn request_defaults_and_errors() {
        let limits = ParseLimits::default();
        // Omitted knobs fall back to the CLI defaults.
        let (_, parsed) =
            Request::from_json(r#"{"cmd": "analyze", "program": "p"}"#, &limits).unwrap();
        assert_eq!(
            parsed,
            Request::Analyze {
                source: "p".to_string(),
                config: AnalyzeConfig::default(),
            }
        );
        assert!(Request::from_json("not json", &limits).is_err());
        assert!(Request::from_json(r#"{"cmd": "frobnicate"}"#, &limits).is_err());
        assert!(Request::from_json(r#"{"cmd": "analyze"}"#, &limits).is_err());
        assert!(
            Request::from_json(r#"{"v": 99, "cmd": "status"}"#, &limits).is_err(),
            "foreign protocol versions are rejected"
        );
    }

    #[test]
    fn responses_round_trip_including_multiline_output() {
        let ok = Response::success(Some(7), 1, "line one\nline two\n".to_string());
        let line = ok.to_json();
        assert!(!line.contains('\n'));
        assert_eq!(Response::from_json(&line).unwrap(), ok);
        let err = Response::failure(None, "boom \"quoted\"".to_string());
        assert_eq!(Response::from_json(&err.to_json()).unwrap(), err);
    }

    #[test]
    fn config_builder_validates() {
        let jobs = NonZeroUsize::new(2).unwrap();
        let config = ServiceConfig::builder(jobs)
            .max_request_bytes(1 << 20)
            .max_session_bytes(64 << 20)
            .artifact_dir("/tmp/store")
            .max_store_bytes(256 << 20)
            .build()
            .unwrap();
        assert_eq!(config.jobs, jobs);
        assert_eq!(config.max_request_bytes, 1 << 20);
        assert_eq!(config.max_session_bytes, Some(64 << 20));
        assert_eq!(config.max_store_bytes, Some(256 << 20));

        assert_eq!(
            ServiceConfig::builder(jobs)
                .max_request_bytes(0)
                .build()
                .unwrap_err(),
            ServiceConfigError::ZeroRequestCap
        );
        assert_eq!(
            ServiceConfig::builder(jobs)
                .max_store_bytes(1)
                .build()
                .unwrap_err(),
            ServiceConfigError::StoreBudgetWithoutStore
        );
        // The defaults themselves always validate.
        ServiceConfig::builder(jobs).build().unwrap();
    }

    #[test]
    fn fan_out_contains_a_poisoned_slot() {
        // One poisoned item (its work panics) must land as that slot's
        // error while every other item completes — before the catch, the
        // panic unwound the scoped pool and would have killed `serve`.
        let items: Vec<u32> = (0..8).collect();
        let slots = fan_out_catching(&items, 3, |&n| {
            assert!(n != 5, "slot 5 is poisoned");
            n * 2
        });
        assert_eq!(slots.len(), items.len());
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Some(Ok(doubled)) => {
                    assert_ne!(i, 5);
                    assert_eq!(*doubled, items[i] * 2);
                }
                Some(Err(message)) => {
                    assert_eq!(i, 5, "only the poisoned slot errors");
                    assert!(message.contains("slot 5 is poisoned"), "{message}");
                }
                None => panic!("slot {i} was never filled"),
            }
        }
    }

    #[test]
    fn panic_payloads_render_as_messages() {
        let caught = std::panic::catch_unwind(|| panic!("a formatted {}", "payload")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "a formatted payload");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17_u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }

    #[test]
    fn client_read_timeout_bounds_a_hung_server() {
        // A server that accepts but never answers — the SIGSTOPped-backend
        // shape.  Without a read timeout `recv` blocks forever (the bug);
        // with one it must fail within the deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept());
        let mut client = ServiceClient::connect_with(
            &addr,
            ClientOptions {
                connect_timeout: Some(Duration::from_secs(5)),
                read_timeout: Some(Duration::from_millis(100)),
            },
        )
        .unwrap();
        client.send(&Request::Status).unwrap();
        let started = std::time::Instant::now();
        let err = client.recv().expect_err("a silent server must time out");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the read deadline did not bound the wait"
        );
        drop(hold.join());
    }

    #[test]
    fn serve_loopback_warms_sessions_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServiceConfig::new(NonZeroUsize::new(2).unwrap());
        let server = std::thread::spawn(move || serve(listener, &config));

        let mut client = ServiceClient::connect(&addr.to_string()).unwrap();
        let scan = Request::Scan {
            sources: vec![TINY.to_string()],
            panel: PanelSpec {
                kind: PanelKind::LeakCheck,
                cache_lines: 8,
            },
            json: true,
        };
        let cold = client.call(&scan).unwrap();
        assert!(cold.ok, "{:?}", cold.error);
        assert_eq!(cold.exit, 1, "the tiny program leaks at 8 lines");
        // Scan output is timing-free, so the warm re-run is byte-identical.
        let warm = client.call(&scan).unwrap();
        assert_eq!(warm.output, cold.output);

        let status = client.call(&Request::Status).unwrap();
        assert!(status.ok);
        assert!(
            // Which tier answered depends on which pool worker drew the
            // re-run: the same worker hits its thread-local L0, a sibling
            // rebinds warm from the shared L1.  Either proves reuse.
            status.output.contains("\"reused\": 1") || status.output.contains("\"l0_hits\": 1"),
            "the warm re-run must reuse the session: {}",
            status.output
        );
        assert!(status.output.contains("\"programs\": 1"));

        // The metrics surface speaks Prometheus text exposition and has
        // already ledgered the scans.
        let metrics = client.call(&Request::Metrics).unwrap();
        assert!(metrics.ok);
        assert!(
            metrics
                .output
                .contains("# TYPE spec_requests_total counter"),
            "missing request ledger: {}",
            metrics.output
        );
        assert!(metrics
            .output
            .contains("spec_requests_total{kind=\"scan\",outcome=\"ok\"} 2"));
        assert!(metrics
            .output
            .contains("# TYPE spec_phase_seconds histogram"));

        // Malformed lines answer with an error and keep counting.
        let mut raw = ServiceClient::connect(&addr.to_string()).unwrap();
        raw.writer.write_all(b"{\"cmd\": \"nope\"}\n").unwrap();
        let rejected = raw.recv().unwrap();
        assert!(!rejected.ok);
        assert_eq!(rejected.exit, 2);

        let bye = client.call(&Request::Shutdown).unwrap();
        assert!(bye.ok);
        let report = server.join().unwrap().unwrap();
        assert!(report.requests >= 5);
        assert!(report.errors >= 1);
    }
}
