//! Session-based analysis: prepare a program once, run many configurations.
//!
//! The paper's whole evaluation is comparative — the *same* program analysed
//! under many configurations (baseline vs. speculative, merge strategies,
//! shadow on/off, depth bounds).  Re-running [`crate::CacheAnalysis`] from
//! scratch repeats loop unrolling, [`AddressMap`] construction and VCFG
//! building for every configuration.  This module makes those prepared
//! artifacts first-class and reusable:
//!
//! * [`Analyzer::prepare`] wraps a program into a [`PreparedProgram`];
//! * [`PreparedProgram::run`] analyses one configuration, computing each
//!   artifact at most once — unrolled programs are memoized per unrolling
//!   budget, address maps per cache geometry, and VCFGs per speculation
//!   *structure* (window length and merge strategy — the two knobs that
//!   actually shape the virtual control flow), so e.g. a shadow-variable
//!   ablation reuses the VCFG of the full configuration; individual
//!   fixpoint rounds are memoized too, so the zero-bounds seeding pass of
//!   dynamic depth bounding is solved once per solver setting instead of
//!   once per configuration;
//! * [`PreparedProgram::run_suite`] fans a labelled list of configurations
//!   out across scoped threads and returns a [`Suite`] whose [`Report`]
//!   serializes to JSON for tooling.
//!
//! Results are **bit-identical** to fresh [`crate::CacheAnalysis::run`]
//! calls with the same options: both paths share one solver back end
//! (`solve_prepared`), and the artifacts are pure functions of the program
//! and the options.
//!
//! # Example
//!
//! ```rust
//! use spec_core::session::Analyzer;
//! use spec_core::AnalysisOptions;
//! use spec_cache::CacheConfig;
//! use spec_ir::builder::ProgramBuilder;
//! use spec_ir::IndexExpr;
//!
//! let mut b = ProgramBuilder::new("tiny");
//! let t = b.region("t", 64, false);
//! let entry = b.entry_block("entry");
//! b.load(entry, t, IndexExpr::Const(0));
//! b.load(entry, t, IndexExpr::Const(0));
//! b.ret(entry);
//! let program = b.finish().unwrap();
//!
//! let cache = CacheConfig::fully_associative(4, 64);
//! let prepared = Analyzer::new().prepare(&program);
//! let suite = prepared.run_suite(&[
//!     ("baseline", AnalysisOptions::builder().baseline().cache(cache).build().unwrap()),
//!     ("speculative", AnalysisOptions::builder().cache(cache).build().unwrap()),
//! ]);
//! assert_eq!(suite.runs.len(), 2);
//! let json = suite.report().to_json();
//! assert!(json.contains("\"label\": \"baseline\""));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spec_absint::SolveStats;
use spec_cache::{AddressMap, CacheConfig};
use spec_ir::fingerprint::{program_fingerprint, Fingerprint};
use spec_ir::heap::HeapSize;
use spec_ir::transform::{unroll_counted_loops, UnrollOptions, UnrollReport};
use spec_ir::{BlockId, Cfg, LoopForest, Program};
use spec_vcfg::{MergeStrategy, SpeculationConfig, Vcfg};

use crate::analysis::solve_prepared;
use crate::classify::AnalysisResult;
use crate::json;
use crate::options::AnalysisOptions;
use crate::state::SpecState;
use crate::summary::{summary_keys, CoreSummaries, DonorSnapshot, SummaryCtx, SummaryStore};

/// Entry point of the session API: a factory for [`PreparedProgram`]s.
///
/// The analyzer itself is cheap; all heavy lifting happens lazily (and is
/// memoized) inside the prepared program.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    max_suite_threads: Option<NonZeroUsize>,
    round_cache_capacity: Option<NonZeroUsize>,
}

impl Analyzer {
    /// Creates an analyzer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads [`PreparedProgram::run_suite`]
    /// uses.  Defaults to the machine's available parallelism.
    pub fn max_suite_threads(mut self, threads: NonZeroUsize) -> Self {
        self.max_suite_threads = Some(threads);
        self
    }

    /// Bounds the fixpoint-round cache of every prepared variant to at most
    /// `capacity` entries, evicted in least-recently-used order.
    ///
    /// By default the round cache is unbounded, which is right for
    /// per-comparison sessions but not for long-lived server-style sessions
    /// (e.g. an edit-analyze loop holding a [`crate::incremental::SessionCache`]
    /// open for hours).  Eviction never changes results — an evicted round
    /// is recomputed deterministically on its next use — it only trades
    /// memory for recomputation; the [`CacheStats`] counters expose the
    /// trade.
    pub fn round_cache_capacity(mut self, capacity: NonZeroUsize) -> Self {
        self.round_cache_capacity = Some(capacity);
        self
    }

    /// The configured settings, applied to deserialized sessions as well:
    /// suite-thread and round-cache bounds are per-process policy, not part
    /// of a program's serialized artifact state.
    pub(crate) fn settings(&self) -> (Option<NonZeroUsize>, Option<NonZeroUsize>) {
        (self.max_suite_threads, self.round_cache_capacity)
    }

    /// Wraps `program` into a session that computes unrolled programs,
    /// address maps, CFG/loop information and VCFGs at most once each and
    /// shares them across every subsequent run.
    pub fn prepare(&self, program: &Program) -> PreparedProgram {
        PreparedProgram {
            fingerprint: program_fingerprint(program),
            program: program.clone(),
            max_suite_threads: self.max_suite_threads,
            round_cache_capacity: self.round_cache_capacity,
            cores: Memo::new(),
            amaps: Memo::new(),
            amaps_adopted: AtomicU64::new(0),
            summaries: SummaryStore::new(),
        }
    }
}

/// A synchronized memo table with hit/miss counters: the building block of
/// every per-session artifact cache (unrolled cores, address maps, VCFGs).
/// Values are computed **outside** the lock, exactly like [`RoundCache`]:
/// the lock only guards map operations, so readers that merely inspect the
/// table — above all the byte-accounting [`Memo::heap_bytes`] walk behind
/// `status` and budget enforcement — never block behind a slow artifact
/// build.  Racing computations are benign: every artifact is a pure
/// function of its key, so the copies are interchangeable and the first
/// insert wins (both count as misses — two recomputations happened).
pub(crate) struct Memo<K, V> {
    inner: Mutex<MemoInner<K, V>>,
}

struct MemoInner<K, V> {
    map: HashMap<K, Arc<V>>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    fn new() -> Self {
        Self {
            inner: Mutex::new(MemoInner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Rebuilds a table from deserialized entries with zeroed counters.
    ///
    /// Counters describe *this process's* executions — a restored session
    /// starts counting from zero, exactly like a fresh prepare, so warm and
    /// cold sessions remain byte-identical after the timing strip.
    pub(crate) fn from_entries(entries: Vec<(K, Arc<V>)>) -> Self {
        Self {
            inner: Mutex::new(MemoInner {
                map: entries.into_iter().collect(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        {
            let mut inner = self.inner.lock().expect("memo table poisoned");
            if let Some(hit) = inner.map.get(&key) {
                let hit = hit.clone();
                inner.hits += 1;
                return hit;
            }
            inner.misses += 1;
        }
        let value = Arc::new(make());
        let mut inner = self.inner.lock().expect("memo table poisoned");
        match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => entry.get().clone(),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(value.clone());
                value
            }
        }
    }

    /// Inserts `value` under `key` unless present (no counter effect —
    /// adoption is bookkept by the caller, not as a hit or miss).
    fn seed(&self, key: K, value: Arc<V>) -> bool {
        let mut inner = self.inner.lock().expect("memo table poisoned");
        if inner.map.contains_key(&key) {
            return false;
        }
        inner.map.insert(key, value);
        true
    }

    /// `(hits, misses)` so far.
    fn counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("memo table poisoned");
        (inner.hits, inner.misses)
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("memo table poisoned").map.len()
    }

    /// Snapshot of the cached values (for aggregation, adoption and
    /// serialization).
    pub(crate) fn entries(&self) -> Vec<(K, Arc<V>)>
    where
        K: Clone,
    {
        self.inner
            .lock()
            .expect("memo table poisoned")
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Estimated owned heap bytes of the table: entry slots, key heap, and
    /// every `Arc`-held value in full (see [`spec_ir::heap`]).
    fn heap_bytes(&self) -> usize
    where
        K: HeapSize,
        V: HeapSize,
    {
        self.inner
            .lock()
            .expect("memo table poisoned")
            .map
            .heap_size()
    }
}

/// Key of one unrolled-program variant: whether unrolling runs at all, and
/// under which budget.
pub(crate) type UnrollKey = (bool, UnrollOptions);

/// The parts of a [`SpeculationConfig`] that shape the virtual control flow.
///
/// `Vcfg::build` consumes only the maximum window (`depth_on_miss` bounds
/// the speculative regions) and the merge strategy (resume regions and
/// commit points); `depth_on_hit` and dynamic depth bounding only steer the
/// solver.  Memoizing on this projection lets e.g. a dynamic-bounding
/// ablation share the VCFG of the full configuration.
pub(crate) type VcfgKey = (u32, MergeStrategy);

/// The states and statistics of one fixpoint round.  The states are
/// `Arc`-shared so cached replays hand them to results without copying.
pub(crate) type RoundResult = (Arc<Vec<SpecState>>, SolveStats);

/// Every input that feeds one fixpoint round: cache geometry, shadow
/// tracking, widening delay, the VCFG structure (window length + merge
/// strategy) and the per-color speculation bounds.  The solver is
/// deterministic, so a round is a pure function of this key (within one
/// unrolled program variant).
pub(crate) type RoundKey = (CacheConfig, bool, u32, u32, MergeStrategy, Vec<u32>);

/// Memoized fixpoint rounds, optionally bounded with LRU eviction.
///
/// The biggest repeated cost across a comparison suite is the solver
/// itself: every dynamic-depth-bounding configuration starts from the same
/// zero-bounds seeding pass, and ablations that only flip solver-side knobs
/// revisit identical rounds.  Caching rounds per [`RoundKey`] shares that
/// work — results stay bit-identical because the solver is deterministic.
/// The cache lives as long as its [`PreparedProgram`]; long-lived sessions
/// (the incremental edit-analyze loop) bound it via
/// [`Analyzer::round_cache_capacity`], under which the least recently used
/// round is dropped first.  Eviction is invisible to results — a dropped
/// round is recomputed identically — and visible in the [`CacheStats`]
/// counters.
pub(crate) struct RoundCache {
    inner: Mutex<RoundCacheInner>,
    capacity: Option<NonZeroUsize>,
}

/// Recency is a monotonic use tick per entry: a hit bumps the tick in
/// O(1), and only an actual eviction pays an O(n) scan for the minimum —
/// the right trade for a cache whose hits vastly outnumber its evictions
/// (suite threads holding the lock must never pay per-hit linear scans).
struct RoundCacheInner {
    map: HashMap<RoundKey, (Arc<RoundResult>, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl RoundCacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_to(&mut self, capacity: Option<NonZeroUsize>) {
        let Some(capacity) = capacity else { return };
        while self.map.len() > capacity.get() {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(key, _)| key.clone())
                .expect("over-capacity map is non-empty");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }
}

impl RoundCache {
    fn new(capacity: Option<NonZeroUsize>) -> Self {
        Self {
            inner: Mutex::new(RoundCacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    /// Returns the cached round for `key`, computing it (outside the lock,
    /// so concurrent suite workers never serialize on each other's solves)
    /// when absent.  Racing computations are harmless: the solver is
    /// deterministic, so both produce the same value and the first insert
    /// wins.
    pub(crate) fn get_or_compute(
        &self,
        key: RoundKey,
        compute: impl FnOnce() -> RoundResult,
    ) -> Arc<RoundResult> {
        {
            let mut inner = self.inner.lock().expect("round cache poisoned");
            let tick = inner.next_tick();
            if let Some((hit, used)) = inner.map.get_mut(&key) {
                let hit = hit.clone();
                *used = tick;
                inner.hits += 1;
                return hit;
            }
            inner.misses += 1;
        }
        let value = Arc::new(compute());
        let mut inner = self.inner.lock().expect("round cache poisoned");
        let tick = inner.next_tick();
        let cached = match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                entry.get_mut().1 = tick;
                entry.get().0.clone()
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert((value.clone(), tick));
                value
            }
        };
        inner.evict_to(self.capacity);
        cached
    }

    /// Rebuilds a cache from deserialized entries, preserving their
    /// least-to-most-recently-used order under fresh ticks and zeroed
    /// counters (counters describe this process's executions only).  When
    /// the restoring session's capacity is smaller than the entry count, the
    /// oldest entries are dropped immediately — same policy as a live cache.
    pub(crate) fn from_entries(
        capacity: Option<NonZeroUsize>,
        entries: Vec<(RoundKey, Arc<RoundResult>)>,
    ) -> Self {
        let mut inner = RoundCacheInner {
            map: HashMap::with_capacity(entries.len()),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        for (key, value) in entries {
            let tick = inner.next_tick();
            inner.map.insert(key, (value, tick));
        }
        inner.evict_to(capacity);
        inner.evictions = 0;
        Self {
            inner: Mutex::new(inner),
            capacity,
        }
    }

    /// The cached rounds from least to most recently used, for
    /// serialization: restoring in this order reproduces the recency
    /// ordering (and therefore future eviction behaviour) of the saved
    /// session.
    pub(crate) fn lru_entries(&self) -> Vec<(RoundKey, Arc<RoundResult>)> {
        let inner = self.inner.lock().expect("round cache poisoned");
        let mut entries: Vec<(u64, RoundKey, Arc<RoundResult>)> = inner
            .map
            .iter()
            .map(|(key, (value, tick))| (*tick, key.clone(), value.clone()))
            .collect();
        // Ticks are unique per entry, so they are a total order already.
        entries.sort_by_key(|(tick, _, _)| *tick);
        entries
            .into_iter()
            .map(|(_, key, value)| (key, value))
            .collect()
    }

    /// `(hits, misses, evictions)` so far.
    pub(crate) fn counts(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().expect("round cache poisoned");
        (inner.hits, inner.misses, inner.evictions)
    }

    /// Estimated owned heap bytes of the cached rounds.  Counted by hand
    /// because [`SolveStats`] lives outside the [`HeapSize`] crates: per
    /// entry, the key (inline plus its bounds vector), the map slot, and
    /// the `Arc`-held round with its state vector in full.
    fn heap_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("round cache poisoned");
        inner
            .map
            .iter()
            .map(|(key, (value, _tick))| {
                std::mem::size_of::<RoundKey>()
                    + key.5.heap_size()
                    + std::mem::size_of::<(Arc<RoundResult>, u64)>()
                    + std::mem::size_of::<RoundResult>()
                    + value.0.heap_size()
            })
            .sum()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// The cached keys from least to most recently used (test introspection
    /// for the eviction-order contract).
    #[cfg(test)]
    pub(crate) fn lru_order(&self) -> Vec<RoundKey> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(u64, RoundKey)> = inner
            .map
            .iter()
            .map(|(key, (_, tick))| (*tick, key.clone()))
            .collect();
        entries.sort_by_key(|(tick, _)| *tick);
        entries.into_iter().map(|(_, key)| key).collect()
    }
}

/// Artifacts derived from one unrolled variant of the program.
pub(crate) struct PreparedCore {
    /// The program the analysis actually runs on (after unrolling).
    pub(crate) analyzed: Arc<Program>,
    /// Loop-unrolling statistics.
    pub(crate) unroll: UnrollReport,
    /// Headers of the loops that survived unrolling — the widening points.
    pub(crate) widen_headers: Vec<BlockId>,
    /// Per-block summary keys of `analyzed` (structural block
    /// fingerprints): what the compositional-reuse matcher compares, and
    /// what the artifact tier persists alongside the rounds.
    pub(crate) block_keys: Vec<u64>,
    /// The donor adopted at construction time, when the incremental layer
    /// offered one for this unroll variant: per-block matching plus the
    /// memoized per-VCFG seeding plans.  `None` for cold cores.
    pub(crate) summaries: Option<CoreSummaries>,
    /// Virtual CFGs, memoized per speculation structure.
    pub(crate) vcfgs: Memo<VcfgKey, Vcfg>,
    /// Fixpoint rounds, memoized per solver input.
    pub(crate) rounds: RoundCache,
}

impl PreparedCore {
    fn new(
        program: &Program,
        key: UnrollKey,
        round_capacity: Option<NonZeroUsize>,
        donor: Option<DonorSnapshot>,
        store: &SummaryStore,
    ) -> Self {
        let (analyzed, unroll) = if key.0 {
            unroll_counted_loops(program, key.1)
        } else {
            (program.clone(), UnrollReport::default())
        };
        let cfg = Cfg::new(&analyzed);
        let forest = LoopForest::find(&analyzed, &cfg);
        let widen_headers = forest.loops().iter().map(|l| l.header).collect();
        let block_keys = summary_keys(&analyzed);
        let summaries = donor.map(|d| CoreSummaries::build(&analyzed, &block_keys, d, store));
        Self {
            analyzed: Arc::new(analyzed),
            unroll,
            widen_headers,
            block_keys,
            summaries,
            vcfgs: Memo::new(),
            rounds: RoundCache::new(round_capacity),
        }
    }

    fn vcfg(&self, config: SpeculationConfig) -> Arc<Vcfg> {
        let key: VcfgKey = (config.depth_on_miss, config.merge_strategy);
        self.vcfgs
            .get_or_insert_with(key, || Vcfg::build(&self.analyzed, config))
    }
}

impl HeapSize for PreparedCore {
    fn heap_size(&self) -> usize {
        self.analyzed.heap_size()
            + self.widen_headers.heap_size()
            + self.block_keys.heap_size()
            + self.summaries.as_ref().map_or(0, HeapSize::heap_size)
            + self.vcfgs.heap_bytes()
            + self.rounds.heap_bytes()
    }
}

/// Hit/miss/eviction counters of every artifact cache inside a
/// [`PreparedProgram`], cumulative over the session's lifetime.
///
/// * *cores* — unrolled program variants (one per unrolling budget);
/// * *amaps* — address maps (one per cache geometry), including the count
///   *adopted* wholesale from a previous session snapshot by the
///   incremental layer (possible because the memory layout is a pure
///   function of the region table, which the edit left untouched);
/// * *vcfgs* — virtual CFGs (one per speculation structure);
/// * *rounds* — memoized fixpoint rounds, with the evictions performed by
///   the LRU bound of [`Analyzer::round_cache_capacity`];
/// * *summaries* — per-block fixpoint summaries (see `spec_core::summary`):
///   a hit is a block whose converged states were transplanted from an
///   adopted pre-edit session, a miss a block solved by iteration, and
///   *invalidated* counts the blocks an adoption discarded (edited blocks
///   plus transitive dependents).
///
/// For every row `hits + misses` equals the number of times the artifact
/// was requested; a miss is a recomputation.  The counters describe *how* a
/// result was obtained, never *what* it is — [`Report::without_timing`]
/// strips them alongside the clocks so that cached and fresh runs of equal
/// programs serialize to equal bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Unrolled-variant lookups served from the session.
    pub core_hits: u64,
    /// Unrolled-variant recomputations.
    pub core_misses: u64,
    /// Address-map lookups served from the session.
    pub amap_hits: u64,
    /// Address-map recomputations.
    pub amap_misses: u64,
    /// Address maps rebound wholesale from a pre-edit session snapshot.
    pub amap_adopted: u64,
    /// VCFG lookups served from the session.
    pub vcfg_hits: u64,
    /// VCFG recomputations.
    pub vcfg_misses: u64,
    /// Fixpoint rounds replayed from the cache.
    pub round_hits: u64,
    /// Fixpoint rounds actually solved.
    pub round_misses: u64,
    /// Fixpoint rounds evicted by the LRU bound.
    pub round_evictions: u64,
    /// Per-block summaries transplanted from an adopted donor session
    /// instead of re-solved, accumulated over every actually-solved round.
    /// Zero unless the incremental layer adopted a prior session.
    pub summary_hits: u64,
    /// Per-block summaries solved by fixpoint iteration, accumulated over
    /// every actually-solved round (a cold solve counts all its blocks
    /// here, so `summary_hits + summary_misses` is the total number of
    /// block summaries the session established).
    pub summary_misses: u64,
    /// Block summaries invalidated at donor-adoption time: the edited
    /// blocks plus their transitive dependents over the block CFG.
    pub summaries_invalidated: u64,
    /// Whole [`PreparedProgram`]s evicted by a session byte budget
    /// ([`crate::incremental::SessionCache::max_session_bytes`]).  Zero for
    /// plain (budget-free) sessions.
    pub session_evictions: u64,
    /// Resident bytes of the owning session cache at snapshot time (the
    /// [`spec_ir::heap::HeapSize`] estimate).  Zero for per-program stats.
    pub session_bytes: u64,
    /// Prepared programs loaded from the on-disk artifact store
    /// ([`crate::artifact::PreparedStore`]) instead of cold-prepared.  Zero
    /// for sessions without a store tier.
    pub store_hits: u64,
    /// Artifact-store lookups that fell through to a cold prepare (missing,
    /// stale or rejected artifact).  Zero for sessions without a store tier.
    pub store_misses: u64,
    /// Total payload bytes deserialized from the artifact store.
    pub store_loaded_bytes: u64,
    /// Acquires served by a worker's thread-local L0 tier without taking
    /// the session lock.  Non-zero only when the owning session is fronted
    /// by a [`crate::cache_session::CacheSession`].
    pub l0_hits: u64,
    /// Acquires served warm by the shared in-memory L1 tier through a
    /// `CacheSession` front (the lock-taking sibling of `l0_hits`).
    pub l1_hits: u64,
    /// The owning session's invalidation generation at snapshot time —
    /// bumped on every entry replacement, budget eviction and removal, and
    /// the signal that clears the L0 tiers.  Zero for per-program stats.
    pub generation: u64,
}

impl CacheStats {
    /// Total lookups served from a cache instead of recomputed.
    pub fn total_hits(&self) -> u64 {
        self.core_hits + self.amap_hits + self.vcfg_hits + self.round_hits
    }

    /// Total artifact recomputations.
    pub fn total_misses(&self) -> u64 {
        self.core_misses + self.amap_misses + self.vcfg_misses + self.round_misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cores {}h/{}m, amaps {}h/{}m (+{} adopted), vcfgs {}h/{}m, rounds {}h/{}m ({} evicted)",
            self.core_hits,
            self.core_misses,
            self.amap_hits,
            self.amap_misses,
            self.amap_adopted,
            self.vcfg_hits,
            self.vcfg_misses,
            self.round_hits,
            self.round_misses,
            self.round_evictions
        )?;
        if self.summary_hits > 0 || self.summaries_invalidated > 0 {
            write!(
                f,
                ", summaries {}h/{}m ({} invalidated)",
                self.summary_hits, self.summary_misses, self.summaries_invalidated
            )?;
        }
        if self.session_bytes > 0 || self.session_evictions > 0 {
            write!(
                f,
                ", sessions {} bytes resident ({} evicted)",
                self.session_bytes, self.session_evictions
            )?;
        }
        if self.store_hits > 0 || self.store_misses > 0 {
            write!(
                f,
                ", store {}h/{}m ({} bytes loaded)",
                self.store_hits, self.store_misses, self.store_loaded_bytes
            )?;
        }
        if self.l0_hits > 0 || self.l1_hits > 0 {
            write!(
                f,
                ", tiers {} l0 / {} l1 (generation {})",
                self.l0_hits, self.l1_hits, self.generation
            )?;
        }
        Ok(())
    }
}

/// A program with its analysis artifacts prepared once and shared across
/// configurations (and threads).
///
/// Created by [`Analyzer::prepare`].  All methods take `&self`; the
/// memoization is internally synchronized, so a prepared program can be
/// shared freely across scoped threads.
pub struct PreparedProgram {
    pub(crate) program: Program,
    pub(crate) fingerprint: Fingerprint,
    pub(crate) max_suite_threads: Option<NonZeroUsize>,
    pub(crate) round_cache_capacity: Option<NonZeroUsize>,
    pub(crate) cores: Memo<UnrollKey, PreparedCore>,
    /// Address maps, memoized per cache geometry.  These live on the
    /// program (not the unrolled core) because the memory layout reads only
    /// the region table, which unrolling preserves verbatim — so every
    /// unroll variant shares one map per geometry, and the incremental
    /// layer can rebind them across edits that leave the regions untouched.
    pub(crate) amaps: Memo<CacheConfig, AddressMap>,
    pub(crate) amaps_adopted: AtomicU64,
    /// The compositional-summary tier: donor snapshots pending adoption
    /// (stashed by [`PreparedProgram::adopt_summaries`], consumed when the
    /// matching unroll variant's core is built) and the session's summary
    /// hit/miss/invalidation accounting.
    pub(crate) summaries: SummaryStore,
}

impl PreparedProgram {
    /// The original (pre-unrolling) program this session was prepared from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The structural fingerprint of [`PreparedProgram::program`], computed
    /// at preparation time (see [`spec_ir::fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// A fresh session bound to `program`, carrying this session's
    /// analyzer settings but none of its artifacts — the caller
    /// transplants those via [`PreparedProgram::adopt_address_maps`] and
    /// [`PreparedProgram::adopt_summaries`].  Only sound when `program` is
    /// a pure rename of this session's program (equal name-free
    /// fingerprint): the adopted artifacts embed the analysed structure.
    /// Classification output re-derives names from the *new* program, so
    /// rebinding never leaks pre-rename labels.
    pub(crate) fn rebound(&self, program: &Program) -> PreparedProgram {
        debug_assert_eq!(program_fingerprint(program), self.fingerprint);
        PreparedProgram {
            fingerprint: self.fingerprint,
            program: program.clone(),
            max_suite_threads: self.max_suite_threads,
            round_cache_capacity: self.round_cache_capacity,
            cores: Memo::new(),
            amaps: Memo::new(),
            amaps_adopted: AtomicU64::new(0),
            summaries: SummaryStore::new(),
        }
    }

    fn core(&self, options: &AnalysisOptions) -> Arc<PreparedCore> {
        let key: UnrollKey = (options.unroll_loops, options.unroll);
        self.cores.get_or_insert_with(key, || {
            let donor = self.summaries.take(&key);
            PreparedCore::new(
                &self.program,
                key,
                self.round_cache_capacity,
                donor,
                &self.summaries,
            )
        })
    }

    fn amap(&self, cache: CacheConfig) -> Arc<AddressMap> {
        self.amaps
            .get_or_insert_with(cache, || AddressMap::new(&self.program, &cache))
    }

    /// Copies every address map of `donor` that this session has not built
    /// yet.  Sound whenever the two programs' region tables are
    /// structurally equal (`spec_ir::fingerprint::regions_fingerprint`) —
    /// the check is the caller's job; [`crate::incremental::SessionCache`]
    /// performs it before every adoption.  Returns the number adopted.
    pub(crate) fn adopt_address_maps(&self, donor: &PreparedProgram) -> u64 {
        let mut adopted = 0;
        for (cache, amap) in donor.amaps.entries() {
            if self.amaps.seed(cache, amap) {
                adopted += 1;
            }
        }
        self.amaps_adopted.fetch_add(adopted, Ordering::Relaxed);
        adopted
    }

    /// Snapshots every unroll variant of `donor` as a pending summary
    /// source for this session (see `spec_core::summary`): when this
    /// session builds the matching variant, unchanged blocks seed their
    /// fixpoint states from the snapshot instead of re-solving.
    ///
    /// Like [`PreparedProgram::adopt_address_maps`], the *caller* gates the
    /// call — [`crate::incremental::SessionCache`] only adopts across edits
    /// that preserve the region table (`regions_fingerprint`), because the
    /// donor's converged states embed the donor's memory layout.  Within
    /// that gate, reuse is further validated structurally per block and per
    /// VCFG at seeding time, so adoption never changes results — only how
    /// much of the fixpoint is recomputed.  Returns the number of variants
    /// stashed.
    pub(crate) fn adopt_summaries(&self, donor: &PreparedProgram) -> u64 {
        let mut stashed = 0;
        for (key, core) in donor.cores.entries() {
            self.summaries.stash(key, DonorSnapshot::of(&core));
            stashed += 1;
        }
        stashed
    }

    /// The cumulative [`CacheStats`] of this session.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        (stats.core_hits, stats.core_misses) = self.cores.counts();
        (stats.amap_hits, stats.amap_misses) = self.amaps.counts();
        stats.amap_adopted = self.amaps_adopted.load(Ordering::Relaxed);
        (
            stats.summary_hits,
            stats.summary_misses,
            stats.summaries_invalidated,
        ) = self.summaries.counts();
        for (_, core) in self.cores.entries() {
            let (vh, vm) = core.vcfgs.counts();
            stats.vcfg_hits += vh;
            stats.vcfg_misses += vm;
            let (rh, rm, re) = core.rounds.counts();
            stats.round_hits += rh;
            stats.round_misses += rm;
            stats.round_evictions += re;
        }
        stats
    }

    /// A cheap, monotone change detector over the session's artifact
    /// contents: the sum of every *miss*, *adoption* and *eviction* counter.
    ///
    /// Hits leave the memo tables untouched, so two equal stamps mean no
    /// artifact was built, adopted or dropped in between — exactly the
    /// condition under which both the [`HeapSize`] measurement and the
    /// serialized form of this session are unchanged.  Budget accounting
    /// and the artifact-store dirty tracking both key off this instead of
    /// re-walking the tables.  (Eviction lowers the footprint but still
    /// changes the stamp; a spurious re-measure/re-persist is harmless.)
    pub fn growth_stamp(&self) -> u64 {
        let stats = self.cache_stats();
        stats.core_misses
            + stats.amap_misses
            + stats.amap_adopted
            + stats.vcfg_misses
            + stats.round_misses
            + stats.round_evictions
    }

    /// Runs one configuration, reusing every prepared artifact.
    ///
    /// The returned result is bit-identical to
    /// `CacheAnalysis::new(*options).run(program)`; `result.elapsed` covers
    /// only this call, so second runs of a configuration family reflect the
    /// session savings.
    pub fn run(&self, options: &AnalysisOptions) -> AnalysisResult {
        let start = Instant::now();
        let core = self.core(options);
        let amap = self.amap(options.cache);
        let spec = options.effective_speculation();
        let vcfg = core.vcfg(spec);
        let widen_nodes = core
            .widen_headers
            .iter()
            .map(|header| vcfg.graph().first_node_of_block(*header).index())
            .collect();
        let vcfg_key: VcfgKey = (spec.depth_on_miss, spec.merge_strategy);
        let summary = SummaryCtx {
            seed: core.summaries.as_ref().and_then(|summaries| {
                summaries
                    .seed_for(vcfg_key, &core.analyzed, &vcfg, &widen_nodes)
                    .map(|plan| (plan, summaries))
            }),
            store: &self.summaries,
        };
        solve_prepared(
            options,
            &core.analyzed,
            core.unroll,
            &vcfg,
            &amap,
            &widen_nodes,
            &core.rounds,
            summary,
            start,
        )
    }

    /// Runs every labelled configuration, fanning out across scoped worker
    /// threads (bounded by [`Analyzer::max_suite_threads`] or the machine's
    /// parallelism), and returns the results in input order.
    ///
    /// Prepared artifacts are shared across the workers, so the suite does
    /// strictly less work than the equivalent sequence of fresh
    /// [`crate::CacheAnalysis::run`] calls even on a single core.
    pub fn run_suite<L: AsRef<str>>(&self, configs: &[(L, AnalysisOptions)]) -> Suite {
        let start = Instant::now();
        let labelled: Vec<(String, AnalysisOptions)> = configs
            .iter()
            .map(|(label, options)| (label.as_ref().to_string(), *options))
            .collect();
        let threads = self.suite_threads(labelled.len());
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<SuiteRun>>> =
            Mutex::new(labelled.iter().map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some((label, options)) = labelled.get(index) else {
                        break;
                    };
                    let result = self.run(options);
                    let run = SuiteRun {
                        label: label.clone(),
                        options: *options,
                        result,
                    };
                    slots.lock().expect("suite slots poisoned")[index] = Some(run);
                });
            }
        });

        let runs = slots
            .into_inner()
            .expect("suite slots poisoned")
            .into_iter()
            .map(|run| run.expect("every configuration was run"))
            .collect();
        Suite {
            program: self.program.name().to_string(),
            runs,
            elapsed: start.elapsed(),
            cache_stats: self.cache_stats(),
        }
    }

    fn suite_threads(&self, jobs: usize) -> usize {
        let available = self
            .max_suite_threads
            .map(NonZeroUsize::get)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get));
        available.min(jobs).max(1)
    }
}

impl HeapSize for PreparedProgram {
    /// The deterministic byte estimate driving
    /// [`crate::incremental::SessionCache`] eviction: the program itself
    /// plus every memoized artifact (unrolled cores with their VCFGs and
    /// fixpoint rounds, address maps).  Grows as runs populate the memo
    /// tables, which is why budget holders re-measure after every request
    /// rather than caching the number at install time.
    fn heap_size(&self) -> usize {
        self.program.heap_size() + self.cores.heap_bytes() + self.amaps.heap_bytes()
    }
}

impl fmt::Debug for PreparedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedProgram")
            .field("program", &self.program.name())
            .field("fingerprint", &self.fingerprint)
            .field("prepared_variants", &self.cores.len())
            .finish()
    }
}

/// One labelled run of a [`Suite`].
#[derive(Debug)]
pub struct SuiteRun {
    /// The caller-supplied label of this configuration.
    pub label: String,
    /// The configuration that was run.
    pub options: AnalysisOptions,
    /// The analysis result.
    pub result: AnalysisResult,
}

/// Results of [`PreparedProgram::run_suite`], in input order.
#[derive(Debug)]
pub struct Suite {
    /// Name of the analysed program.
    pub program: String,
    /// One run per input configuration, in input order.
    pub runs: Vec<SuiteRun>,
    /// Wall-clock time of the whole suite.
    pub elapsed: Duration,
    /// The session's cumulative cache counters, captured when the suite
    /// finished.
    pub cache_stats: CacheStats,
}

impl Suite {
    /// The run with the given label, if any.
    pub fn get(&self, label: &str) -> Option<&SuiteRun> {
        self.runs.iter().find(|run| run.label == label)
    }

    /// Summarizes the suite into a unified, labelled [`Report`].
    pub fn report(&self) -> Report {
        Report {
            program: self.program.clone(),
            elapsed: Some(self.elapsed),
            cache: Some(self.cache_stats),
            rows: self
                .runs
                .iter()
                .map(|run| ReportRow::from_result(&run.label, &run.result))
                .collect(),
        }
    }
}

/// A unified, labelled summary of one or more analysis runs of a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Name of the analysed program.
    pub program: String,
    /// Wall-clock time of the suite that produced this report, if any.
    pub elapsed: Option<Duration>,
    /// Session cache counters at report time, if the producer had a
    /// session.  Like `elapsed`, this describes the *execution*, not the
    /// result: [`Report::without_timing`] strips it.
    pub cache: Option<CacheStats>,
    /// One row per labelled run.
    pub rows: Vec<ReportRow>,
}

impl Report {
    /// Builds a report from individually labelled results (e.g. one-shot
    /// runs outside a suite).
    pub fn from_runs<'a, I>(program: impl Into<String>, runs: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a AnalysisResult)>,
    {
        Self {
            program: program.into(),
            elapsed: None,
            cache: None,
            rows: runs
                .into_iter()
                .map(|(label, result)| ReportRow::from_result(label, result))
                .collect(),
        }
    }

    /// Merges several reports of the **same program** into one, keeping the
    /// rows in input order (first report's rows first).  This is the
    /// config-axis fan-in primitive: when one program's configuration panel
    /// was split across invocations (e.g. different sweeps of the same
    /// program run on different machines), their labelled reports recombine
    /// here.  The program-axis counterpart — many programs, one panel — is
    /// [`crate::batch::BatchReport::merge`].
    ///
    /// The merged report carries no suite wall-clock (the inputs ran on
    /// different clocks), so merging is deterministic up to row times.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::Empty`] for an empty input,
    /// [`MergeError::ProgramMismatch`] when the reports disagree about the
    /// program name, and [`MergeError::DuplicateLabel`] when two rows carry
    /// the same label (a label must identify one configuration).
    pub fn merge(reports: impl IntoIterator<Item = Report>) -> Result<Report, MergeError> {
        let mut iter = reports.into_iter();
        let first = iter.next().ok_or(MergeError::Empty)?;
        let mut merged = Report {
            program: first.program,
            elapsed: None,
            cache: None,
            rows: Vec::new(),
        };
        let mut absorb = |report_rows: Vec<ReportRow>| -> Result<(), MergeError> {
            for row in report_rows {
                if merged.rows.iter().any(|r| r.label == row.label) {
                    return Err(MergeError::DuplicateLabel { label: row.label });
                }
                merged.rows.push(row);
            }
            Ok(())
        };
        absorb(first.rows)?;
        for report in iter {
            if report.program != merged.program {
                return Err(MergeError::ProgramMismatch {
                    expected: merged.program.clone(),
                    found: report.program,
                });
            }
            absorb(report.rows)?;
        }
        Ok(merged)
    }

    /// Strips the non-deterministic fields (suite wall-clock, per-row times
    /// and session cache counters), leaving only values that are pure
    /// functions of the program and the configurations.  Two runs of the
    /// same panel — threaded, sharded, sequential, or replayed from an
    /// incremental session — agree bit-for-bit on the result, which is what
    /// makes [`crate::batch`] reports mergeable and diffable in CI.
    ///
    /// Per-row `iterations` (worklist pops) are stripped too: they describe
    /// how much of the fixpoint was *recomputed*, which compositional
    /// summary seeding legitimately shrinks without changing any result.
    pub fn without_timing(mut self) -> Report {
        self.elapsed = None;
        self.cache = None;
        for row in &mut self.rows {
            row.time = Duration::ZERO;
            row.iterations = 0;
        }
        self
    }

    /// Serializes the report as a JSON object, for tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"program\": {},\n",
            json::string(&self.program)
        ));
        if let Some(elapsed) = self.elapsed {
            out.push_str(&format!(
                "  \"suite_elapsed_secs\": {},\n",
                json::float(elapsed.as_secs_f64())
            ));
        }
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "  \"session_cache\": {{\"core_hits\": {}, \"core_misses\": {}, \
                 \"amap_hits\": {}, \"amap_misses\": {}, \"amap_adopted\": {}, \
                 \"vcfg_hits\": {}, \"vcfg_misses\": {}, \"round_hits\": {}, \
                 \"round_misses\": {}, \"round_evictions\": {}, \
                 \"summary_hits\": {}, \"summary_misses\": {}, \
                 \"summaries_invalidated\": {}, \
                 \"session_evictions\": {}, \"session_bytes\": {}, \
                 \"store_hits\": {}, \"store_misses\": {}, \
                 \"store_loaded_bytes\": {}, \"l0_hits\": {}, \
                 \"l1_hits\": {}, \"generation\": {}}},\n",
                cache.core_hits,
                cache.core_misses,
                cache.amap_hits,
                cache.amap_misses,
                cache.amap_adopted,
                cache.vcfg_hits,
                cache.vcfg_misses,
                cache.round_hits,
                cache.round_misses,
                cache.round_evictions,
                cache.summary_hits,
                cache.summary_misses,
                cache.summaries_invalidated,
                cache.session_evictions,
                cache.session_bytes,
                cache.store_hits,
                cache.store_misses,
                cache.store_loaded_bytes,
                cache.l0_hits,
                cache.l1_hits,
                cache.generation
            ));
        }
        out.push_str("  \"runs\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"label\": {}, ", json::string(&row.label)));
            out.push_str(&format!("\"accesses\": {}, ", row.accesses));
            out.push_str(&format!("\"must_hits\": {}, ", row.must_hits));
            out.push_str(&format!("\"misses\": {}, ", row.misses));
            out.push_str(&format!(
                "\"speculative_misses\": {}, ",
                row.speculative_misses
            ));
            out.push_str(&format!("\"secret_accesses\": {}, ", row.secret_accesses));
            out.push_str(&format!(
                "\"unsafe_secret_accesses\": {}, ",
                row.unsafe_secret_accesses
            ));
            out.push_str(&format!(
                "\"speculated_branches\": {}, ",
                row.speculated_branches
            ));
            out.push_str(&format!("\"iterations\": {}, ", row.iterations));
            out.push_str(&format!("\"rounds\": {}, ", row.rounds));
            out.push_str(&format!(
                "\"time_secs\": {}",
                json::float(row.time.as_secs_f64())
            ));
            out.push_str(if i + 1 == self.rows.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program `{}`", self.program)?;
        writeln!(
            f,
            "{:<24} {:>9} {:>9} {:>8} {:>8} {:>9} {:>11} {:>9}",
            "configuration",
            "accesses",
            "must-hit",
            "misses",
            "sp-miss",
            "branches",
            "iterations",
            "time(s)"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<24} {:>9} {:>9} {:>8} {:>8} {:>9} {:>11} {:>9.3}",
                row.label,
                row.accesses,
                row.must_hits,
                row.misses,
                row.speculative_misses,
                row.speculated_branches,
                row.iterations,
                row.time.as_secs_f64()
            )?;
        }
        if let Some(elapsed) = self.elapsed {
            writeln!(f, "suite wall-clock: {:.3}s", elapsed.as_secs_f64())?;
        }
        if let Some(cache) = &self.cache {
            writeln!(f, "session cache: {cache}")?;
        }
        Ok(())
    }
}

/// Why [`Report::merge`] refused to combine its inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No reports were supplied.
    Empty,
    /// The reports describe different programs.
    ProgramMismatch {
        /// Program of the first report.
        expected: String,
        /// Conflicting program encountered later.
        found: String,
    },
    /// Two rows carry the same configuration label.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "cannot merge zero reports"),
            MergeError::ProgramMismatch { expected, found } => write!(
                f,
                "cannot merge reports of different programs (`{expected}` vs `{found}`)"
            ),
            MergeError::DuplicateLabel { label } => {
                write!(f, "duplicate configuration label `{label}`")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Summary of one labelled analysis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportRow {
    /// The run's label.
    pub label: String,
    /// Total memory accesses classified.
    pub accesses: usize,
    /// Accesses guaranteed to hit in every committed execution.
    pub must_hits: usize,
    /// Accesses that may miss in a committed execution (`#Miss`).
    pub misses: usize,
    /// Accesses that may miss during squashed speculation (`#SpMiss`).
    pub speculative_misses: usize,
    /// Accesses whose index depends on secret data.
    pub secret_accesses: usize,
    /// Secret-indexed accesses that are not provably timing-neutral: they
    /// may miss observably, or they may miss during squashed speculation.
    /// A nonzero count is the cache side-channel indicator.
    pub unsafe_secret_accesses: usize,
    /// Conditional branches that may speculate.
    pub speculated_branches: usize,
    /// Fixpoint iterations (worklist pops) across all rounds.  Execution
    /// detail, not a result: summary seeding shrinks it without changing
    /// any classification, so [`Report::without_timing`] zeroes it.
    pub iterations: u64,
    /// Fixpoint rounds (1 unless dynamic depth bounding refined).
    pub rounds: u32,
    /// Wall-clock time of this run.
    pub time: Duration,
}

impl ReportRow {
    /// Summarizes one analysis result under a label.
    pub fn from_result(label: &str, result: &AnalysisResult) -> Self {
        Self {
            label: label.to_string(),
            accesses: result.access_count(),
            must_hits: result.must_hit_count(),
            misses: result.miss_count(),
            speculative_misses: result.speculative_miss_count(),
            secret_accesses: result.secret_accesses().count(),
            unsafe_secret_accesses: result
                .secret_accesses()
                .filter(|a| !a.observable_hit || a.is_speculative_miss())
                .count(),
            speculated_branches: result.speculated_branches,
            iterations: result.iterations(),
            rounds: result.rounds,
            time: result.elapsed,
        }
    }
}

/// The standard comparison panel over one cache geometry: the labelled
/// configurations the paper's tables keep contrasting.  Used by the `specan
/// compare` subcommand and handy as a ready-made [`PreparedProgram::run_suite`]
/// input.
pub fn comparison_configs(cache: CacheConfig) -> Vec<(String, AnalysisOptions)> {
    let build = |builder: crate::options::AnalysisOptionsBuilder| {
        builder
            .cache(cache)
            .build()
            .expect("comparison presets are valid")
    };
    vec![
        (
            "baseline".to_string(),
            build(AnalysisOptions::builder().baseline()),
        ),
        ("speculative".to_string(), build(AnalysisOptions::builder())),
        (
            "merge-at-rollback".to_string(),
            build(AnalysisOptions::builder().merge_strategy(MergeStrategy::MergeAtRollback)),
        ),
        (
            "no-shadow".to_string(),
            build(AnalysisOptions::builder().shadow(false)),
        ),
        (
            "static-depth".to_string(),
            build(AnalysisOptions::builder().dynamic_depth_bounding(false)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::builder::ProgramBuilder;
    use spec_ir::{BranchSemantics, IndexExpr, MemRef};

    fn diamond_program() -> Program {
        let mut b = ProgramBuilder::new("diamond");
        let table = b.region("table", 4 * 64, false);
        let flag = b.region("flag", 8, false);
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let done = b.block("done");
        b.load_sweep(entry, table, 0, 64, 4);
        b.load(entry, flag, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(flag, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, table, IndexExpr::Const(0));
        b.jump(then_bb, done);
        b.load(else_bb, table, IndexExpr::Const(64));
        b.jump(else_bb, done);
        b.load(done, table, IndexExpr::secret(64));
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn vcfgs_are_shared_across_structurally_equal_configs() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let cache = CacheConfig::fully_associative(6, 64);
        let full = AnalysisOptions::builder().cache(cache).build().unwrap();
        let no_shadow = AnalysisOptions::builder()
            .cache(cache)
            .shadow(false)
            .build()
            .unwrap();
        let static_depth = AnalysisOptions::builder()
            .cache(cache)
            .dynamic_depth_bounding(false)
            .build()
            .unwrap();
        prepared.run(&full);
        prepared.run(&no_shadow);
        prepared.run(&static_depth);
        let core = prepared.core(&full);
        assert_eq!(
            core.vcfgs.len(),
            1,
            "shadow and dynamic-bounding variants share one VCFG"
        );
        // The baseline (zero windows) is a different structure.
        prepared.run(
            &AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .unwrap(),
        );
        assert_eq!(core.vcfgs.len(), 2);
        // The counters agree with the memo table: 4 runs requested a VCFG,
        // 2 were built.
        let stats = prepared.cache_stats();
        assert_eq!(stats.vcfg_misses, 2);
        assert_eq!(stats.vcfg_hits + stats.vcfg_misses, 4);
        assert_eq!(stats.amap_misses, 1, "one geometry, one address map");
        assert_eq!(stats.core_misses, 1, "one unroll budget, one core");
    }

    #[test]
    fn seeding_rounds_are_shared_across_dynamic_configs() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let cache = CacheConfig::fully_associative(6, 64);
        let full = AnalysisOptions::builder().cache(cache).build().unwrap();
        let optimistic = AnalysisOptions::builder()
            .cache(cache)
            .speculation_depths(10, 200)
            .build()
            .unwrap();
        let first = prepared.run(&full);
        let second = prepared.run(&optimistic);
        let rounds_run = first.rounds + second.rounds;
        let rounds_solved = prepared.core(&full).rounds.len() as u32;
        assert!(
            rounds_solved < rounds_run,
            "the zero-bounds seeding pass must be solved once and replayed: \
             {rounds_run} rounds run, {rounds_solved} solved"
        );
    }

    #[test]
    fn suite_preserves_input_order_and_labels() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let cache = CacheConfig::fully_associative(6, 64);
        let suite = prepared.run_suite(&comparison_configs(cache));
        let labels: Vec<&str> = suite.runs.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "speculative",
                "merge-at-rollback",
                "no-shadow",
                "static-depth"
            ]
        );
        assert!(suite.get("speculative").is_some());
        assert!(suite.get("nonexistent").is_none());
    }

    #[test]
    fn report_json_is_well_formed_enough_for_tooling() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let cache = CacheConfig::fully_associative(6, 64);
        let suite = prepared.run_suite(&[(
            "a \"quoted\" label".to_string(),
            AnalysisOptions::builder().cache(cache).build().unwrap(),
        )]);
        let json = suite.report().to_json();
        assert!(json.contains("\"a \\\"quoted\\\" label\""));
        assert!(json.contains("\"suite_elapsed_secs\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    fn toy_report(program: &str, labels: &[&str]) -> Report {
        Report {
            program: program.to_string(),
            elapsed: Some(Duration::from_secs(1)),
            cache: Some(CacheStats::default()),
            rows: labels
                .iter()
                .map(|label| ReportRow {
                    label: label.to_string(),
                    accesses: 1,
                    must_hits: 1,
                    misses: 0,
                    speculative_misses: 0,
                    secret_accesses: 0,
                    unsafe_secret_accesses: 0,
                    speculated_branches: 0,
                    iterations: 1,
                    rounds: 1,
                    time: Duration::from_millis(5),
                })
                .collect(),
        }
    }

    #[test]
    fn merge_concatenates_rows_in_input_order() {
        let merged = Report::merge([
            toy_report("p", &["a", "b"]),
            toy_report("p", &["c"]),
            toy_report("p", &[]),
            toy_report("p", &["d"]),
        ])
        .unwrap();
        let labels: Vec<&str> = merged.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c", "d"]);
        assert_eq!(merged.elapsed, None, "merged reports carry no wall-clock");
    }

    #[test]
    fn merge_rejects_duplicate_labels_and_mixed_programs() {
        assert_eq!(
            Report::merge([toy_report("p", &["a"]), toy_report("p", &["a"])]),
            Err(MergeError::DuplicateLabel {
                label: "a".to_string()
            })
        );
        // A duplicate within a single input is just as ambiguous.
        assert_eq!(
            Report::merge([toy_report("p", &["x", "x"])]),
            Err(MergeError::DuplicateLabel {
                label: "x".to_string()
            })
        );
        assert_eq!(
            Report::merge([toy_report("p", &["a"]), toy_report("q", &["b"])]),
            Err(MergeError::ProgramMismatch {
                expected: "p".to_string(),
                found: "q".to_string()
            })
        );
        assert_eq!(Report::merge([]), Err(MergeError::Empty));
    }

    #[test]
    fn without_timing_strips_every_clock() {
        let stripped = toy_report("p", &["a", "b"]).without_timing();
        assert_eq!(stripped.elapsed, None);
        assert_eq!(stripped.cache, None, "cache counters are execution detail");
        assert!(stripped.rows.iter().all(|r| r.time == Duration::ZERO));
        assert!(
            stripped.rows.iter().all(|r| r.iterations == 0),
            "worklist pops describe the recomputation, not the result"
        );
        // Everything else is untouched.
        assert_eq!(stripped.rows.len(), 2);
        assert_eq!(stripped.rows[0].accesses, 1);
    }

    /// Distinct static speculation depths force distinct round keys inside
    /// one core — the knob the LRU tests turn to fill the cache.
    fn depth_config(cache: CacheConfig, depth: u32) -> AnalysisOptions {
        AnalysisOptions::builder()
            .cache(cache)
            .speculation_depths(depth, depth)
            .dynamic_depth_bounding(false)
            .build()
            .unwrap()
    }

    #[test]
    fn round_cache_evicts_least_recently_used_first() {
        let program = diamond_program();
        let cache = CacheConfig::fully_associative(6, 64);
        let prepared = Analyzer::new()
            .round_cache_capacity(NonZeroUsize::new(2).unwrap())
            .prepare(&program);
        let configs: Vec<AnalysisOptions> = (1..=3).map(|d| depth_config(cache, d)).collect();
        let fresh: Vec<AnalysisResult> = configs
            .iter()
            .map(|o| Analyzer::new().prepare(&program).run(o))
            .collect();

        // Fill to capacity: A, B — then C evicts A (the LRU).
        prepared.run(&configs[0]);
        prepared.run(&configs[1]);
        let rounds = &prepared.core(&configs[0]).rounds;
        assert_eq!(rounds.len(), 2);
        prepared.run(&configs[2]);
        assert_eq!(rounds.len(), 2, "the bound holds");
        let key_depth = |key: &RoundKey| key.5.first().copied().unwrap_or(0);
        assert_eq!(
            rounds.lru_order().iter().map(key_depth).collect::<Vec<_>>(),
            vec![2, 3],
            "depth-1 (least recently used) must be the eviction victim"
        );

        // Re-running the evicted configuration recomputes — a miss, another
        // eviction (of depth-2, now the LRU) — and matches the fresh run.
        let replayed = prepared.run(&configs[0]);
        assert_eq!(replayed.accesses, fresh[0].accesses);
        assert_eq!(
            rounds.lru_order().iter().map(key_depth).collect::<Vec<_>>(),
            vec![3, 1]
        );
        // A hit refreshes recency without evicting.
        prepared.run(&configs[2]);
        assert_eq!(
            rounds.lru_order().iter().map(key_depth).collect::<Vec<_>>(),
            vec![1, 3]
        );

        let stats = prepared.cache_stats();
        assert_eq!(stats.round_misses, 4, "three fills plus one recompute");
        assert_eq!(stats.round_hits, 1);
        assert_eq!(stats.round_evictions, 2);
    }

    #[test]
    fn post_eviction_reruns_match_fresh_results_and_counters_add_up() {
        let program = diamond_program();
        let cache = CacheConfig::fully_associative(6, 64);
        let prepared = Analyzer::new()
            .round_cache_capacity(NonZeroUsize::MIN)
            .prepare(&program);
        // A capacity-1 cache thrashes across this panel, yet every result
        // must stay bit-identical to an unbounded fresh run.
        let configs = comparison_configs(cache);
        let mut total_rounds = 0u64;
        for _ in 0..2 {
            for (label, options) in &configs {
                let bounded = prepared.run(options);
                let fresh = Analyzer::new().prepare(&program).run(options);
                assert_eq!(bounded.accesses, fresh.accesses, "{label}");
                assert_eq!(bounded.rounds, fresh.rounds, "{label}");
                assert_eq!(bounded.bounds, fresh.bounds, "{label}");
                total_rounds += u64::from(bounded.rounds);
            }
        }
        let stats = prepared.cache_stats();
        assert_eq!(
            stats.round_hits + stats.round_misses,
            total_rounds,
            "every round is either replayed or solved"
        );
        assert!(stats.round_evictions > 0, "capacity 1 must evict");
        assert_eq!(
            stats.core_hits + stats.core_misses,
            2 * configs.len() as u64,
            "one core lookup per run"
        );
        assert_eq!(
            stats.amap_hits + stats.amap_misses,
            2 * configs.len() as u64
        );
    }

    #[test]
    fn suite_reports_surface_cache_counters() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let cache = CacheConfig::fully_associative(6, 64);
        let suite = prepared.run_suite(&comparison_configs(cache));
        let report = suite.report();
        let stats = report.cache.expect("suites carry cache stats");
        assert_eq!(stats, prepared.cache_stats());
        assert!(stats.round_misses > 0);
        assert_eq!(stats.round_evictions, 0, "unbounded by default");
        let json = report.to_json();
        assert!(json.contains("\"session_cache\""));
        assert!(json.contains("\"round_evictions\": 0"));
        // The stripped form is free of execution detail.
        let stripped = report.without_timing();
        assert_eq!(stripped.cache, None);
        assert!(!stripped.to_json().contains("session_cache"));
    }

    #[test]
    fn empty_suite_is_fine() {
        let program = diamond_program();
        let prepared = Analyzer::new().prepare(&program);
        let configs: [(&str, AnalysisOptions); 0] = [];
        let suite = prepared.run_suite(&configs);
        assert!(suite.runs.is_empty());
        assert_eq!(suite.report().rows.len(), 0);
    }
}
