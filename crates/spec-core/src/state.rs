//! The combined analysis state: one normal cache state plus one speculative
//! cache state per color (Algorithm 3).

use std::collections::BTreeMap;

use spec_absint::JoinSemiLattice;
use spec_cache::AbstractCacheState;
use spec_vcfg::Color;

/// Abstract state attached to every VCFG node.
///
/// `normal` is the paper's `S[n]`; `spec[c]` is `SS[n][c]`, the cache state
/// of the speculative execution with color `c` (absent entries are bottom).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecState {
    /// The non-speculative (architectural) cache state `S[n]`.
    pub normal: AbstractCacheState,
    /// Per-color speculative cache states `SS[n][c]`.
    pub spec: BTreeMap<Color, AbstractCacheState>,
}

impl SpecState {
    /// A state whose components are all bottom.
    pub fn bottom(track_shadow: bool) -> Self {
        Self {
            normal: AbstractCacheState::bottom(track_shadow),
            spec: BTreeMap::new(),
        }
    }

    /// A state with the given normal component and no speculative flows.
    pub fn from_normal(normal: AbstractCacheState) -> Self {
        Self {
            normal,
            spec: BTreeMap::new(),
        }
    }

    /// Returns `true` if every component is bottom.
    pub fn is_bottom(&self) -> bool {
        self.normal.is_bottom() && self.spec.values().all(AbstractCacheState::is_bottom)
    }

    /// The speculative state of `color`, if it has been seeded at this point.
    pub fn spec_state(&self, color: Color) -> Option<&AbstractCacheState> {
        self.spec.get(&color).filter(|s| !s.is_bottom())
    }

    /// Joins `extra` into the speculative component of `color`.
    pub fn join_spec(&mut self, color: Color, extra: &AbstractCacheState) -> bool {
        if extra.is_bottom() {
            return false;
        }
        match self.spec.get_mut(&color) {
            Some(existing) => existing.join_in_place(extra),
            None => {
                self.spec.insert(color, extra.clone());
                true
            }
        }
    }

    /// Folds the speculative state of `color` into the normal component and
    /// drops it (the "commit" at a merge point).
    pub fn commit_color(&mut self, color: Color) {
        if let Some(spec) = self.spec.remove(&color) {
            if !spec.is_bottom() {
                self.normal.join_in_place(&spec);
            }
        }
    }

    /// Number of live (non-bottom) speculative flows at this point.
    pub fn live_spec_count(&self) -> usize {
        self.spec.values().filter(|s| !s.is_bottom()).count()
    }
}

impl spec_ir::heap::HeapSize for SpecState {
    fn heap_size(&self) -> usize {
        self.normal.heap_size() + self.spec.heap_size()
    }
}

impl JoinSemiLattice for SpecState {
    fn join_in_place(&mut self, other: &Self) -> bool {
        let mut changed = self.normal.join_in_place(&other.normal);
        for (color, state) in &other.spec {
            if self.join_spec(*color, state) {
                changed = true;
            }
        }
        changed
    }

    fn widen_with(&mut self, previous: &Self) {
        self.normal.widen_with(&previous.normal);
        for (color, state) in &mut self.spec {
            if let Some(prev) = previous.spec.get(color) {
                state.widen_with(prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_cache::{CacheAccess, CacheConfig, MemBlock};
    use spec_ir::RegionId;

    fn block(i: u64) -> MemBlock {
        MemBlock::new(RegionId::from_raw(0), i)
    }

    fn state_with(blocks: &[u64]) -> AbstractCacheState {
        let config = CacheConfig::fully_associative(8, 64);
        let mut s = AbstractCacheState::empty_cache(&config, false);
        for &b in blocks {
            s.access(&config, &CacheAccess::Precise(block(b)), |_| 0);
        }
        s
    }

    #[test]
    fn bottom_state_is_bottom() {
        let s = SpecState::bottom(false);
        assert!(s.is_bottom());
        assert_eq!(s.live_spec_count(), 0);
    }

    #[test]
    fn join_merges_normal_and_speculative_components() {
        let mut a = SpecState::from_normal(state_with(&[1, 2]));
        let mut b = SpecState::from_normal(state_with(&[1, 2]));
        b.join_spec(Color::from_raw(0), &state_with(&[3]));

        assert!(a.join_in_place(&b));
        assert!(a.spec_state(Color::from_raw(0)).is_some());
        assert_eq!(a.live_spec_count(), 1);
        // Joining the same thing again changes nothing.
        assert!(!a.join_in_place(&b));
    }

    #[test]
    fn join_spec_ignores_bottom() {
        let mut a = SpecState::from_normal(state_with(&[1]));
        assert!(!a.join_spec(Color::from_raw(0), &AbstractCacheState::bottom(false)));
        assert!(a.spec_state(Color::from_raw(0)).is_none());
    }

    #[test]
    fn commit_folds_speculative_pollution_into_normal() {
        // Normal state has blocks 1 and 2 cached; the speculative flow has
        // only block 1 (2 was evicted speculatively).  After the commit the
        // normal state must no longer guarantee block 2.
        let mut s = SpecState::from_normal(state_with(&[1, 2]));
        s.join_spec(Color::from_raw(0), &state_with(&[1]));
        assert!(s.normal.is_must_hit(block(2)));
        s.commit_color(Color::from_raw(0));
        assert!(s.normal.is_must_hit(block(1)));
        assert!(
            !s.normal.is_must_hit(block(2)),
            "committing the speculative state removes the guarantee"
        );
        assert_eq!(s.live_spec_count(), 0);
    }

    #[test]
    fn commit_of_missing_color_is_a_no_op() {
        let mut s = SpecState::from_normal(state_with(&[1]));
        let before = s.clone();
        s.commit_color(Color::from_raw(7));
        assert_eq!(s, before);
    }
}
