//! Compositional fixpoint summaries: per-block solver reuse across edits.
//!
//! A [`crate::session::PreparedProgram`] memoizes whole fixpoint *rounds*,
//! which is exactly right while the program does not change — and exactly
//! wrong when it does: one edited block used to discard every solved round
//! even though the fixpoint over the untouched region is unchanged.  This
//! module shrinks the unit of reuse from "program" to "block".
//!
//! The model is summary-based:
//!
//! * every block of an unrolled analysis core is a **summary** — its slice
//!   of the converged per-node states of each solved round — keyed by the
//!   block's structural fingerprint (`spec_ir::fingerprint`);
//! * summaries depend on each other along the *effective* edge relation of
//!   the virtual CFG: ordinary control-flow edges plus the speculative
//!   rollback edges, the exact relation the solver propagates state over;
//! * when the incremental layer re-prepares an edited program it donates a
//!   [`DonorSnapshot`] of the prior session's cores ([`SummaryStore`]); the
//!   new core matches blocks positionally by fingerprint, invalidates the
//!   changed blocks **and every transitive dependent**, and freezes the
//!   rest;
//! * each solved round then seeds the frozen region from the donor's
//!   converged states (`spec_absint::WorklistSolver::solve_seeded`) and
//!   iterates only the invalidated region.
//!
//! Determinism is the contract: a partially-reused prepare must be
//! byte-identical (post timing-strip) to a cold one.  Seeding is therefore
//! gated hard — see [`CoreSummaries::seed_for`] — and every gate failure
//! falls back to a full solve, never to an approximation:
//!
//! 1. the donor solved the same unroll variant and speculation structure
//!    (same `UnrollKey`, a donor VCFG under the same `VcfgKey`, equal entry
//!    index and color count — colors index the per-round bounds vector, so
//!    their numbering must align);
//! 2. the frozen set is closed under predecessors **on both sides** over
//!    graph and rollback edges jointly, so no changed state can leak into
//!    a frozen block on either the donor or the recomputed side;
//! 3. every widening point is frozen: the recomputed region then has a
//!    unique least fixpoint, independent of visit order, while the frozen
//!    region's (possibly widened) states transplant verbatim;
//! 4. the speculation structure visible from frozen nodes corresponds
//!    one-to-one: per-node color membership and distances, branch colors,
//!    commit points, and each referenced site's entry/resume nodes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spec_ir::fingerprint::block_fingerprint;
use spec_ir::heap::HeapSize;
use spec_ir::{BlockId, Program};
use spec_vcfg::{Color, NodeId, Vcfg};

use crate::session::{PreparedCore, RoundKey, RoundResult, UnrollKey, VcfgKey};

/// The summary tier of one [`crate::session::PreparedProgram`]: donor
/// snapshots pending adoption, plus the session's summary accounting.
/// Lives next to the `Memo`/`RoundCache` tables.
pub(crate) struct SummaryStore {
    /// Donor snapshots from a prior session, keyed by unroll variant,
    /// consumed when the matching core of this session is first built.
    pending: Mutex<HashMap<UnrollKey, DonorSnapshot>>,
    /// Blocks whose converged states were transplanted, per solved round.
    hits: AtomicU64,
    /// Blocks solved by fixpoint iteration, per solved round.
    misses: AtomicU64,
    /// Blocks invalidated at adoption time: the edited blocks plus their
    /// transitive dependents over the block CFG.
    invalidated: AtomicU64,
}

impl SummaryStore {
    pub(crate) fn new() -> Self {
        Self {
            pending: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Offers `donor` as the summary source for the `key` unroll variant.
    /// A snapshot stashed after the variant's core was already built is
    /// simply never consumed.
    pub(crate) fn stash(&self, key: UnrollKey, donor: DonorSnapshot) {
        self.pending
            .lock()
            .expect("summary store poisoned")
            .insert(key, donor);
    }

    /// Consumes the pending donor for `key`, if any.
    pub(crate) fn take(&self, key: &UnrollKey) -> Option<DonorSnapshot> {
        self.pending
            .lock()
            .expect("summary store poisoned")
            .remove(key)
    }

    /// Records the per-block outcome of one solved round.
    pub(crate) fn record_round(&self, seeded_blocks: u64, solved_blocks: u64) {
        self.hits.fetch_add(seeded_blocks, Ordering::Relaxed);
        self.misses.fetch_add(solved_blocks, Ordering::Relaxed);
    }

    pub(crate) fn record_invalidated(&self, blocks: u64) {
        self.invalidated.fetch_add(blocks, Ordering::Relaxed);
    }

    /// `(hits, misses, invalidated)` so far.
    pub(crate) fn counts(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.invalidated.load(Ordering::Relaxed),
        )
    }
}

/// The per-block summary key table of one analysis core: the structural
/// fingerprint of every block of the (unrolled) analyzed program, in block
/// order.  This is what summaries are keyed by, what the matcher compares,
/// and what the artifact tier persists for warm restarts.
pub(crate) fn summary_keys(analyzed: &Program) -> Vec<u64> {
    analyzed
        .blocks()
        .iter()
        .map(|block| block_fingerprint(block).0)
        .collect()
}

/// Everything a future core needs from a donor core, snapshotted at
/// adoption time.  Deliberately *not* an `Arc<PreparedCore>`: holding the
/// donor core alive would chain session generations together (each edit's
/// core retaining its predecessor's, transitively), so the snapshot copies
/// the cheap tables and `Arc`-shares only the heavy immutable values
/// (programs, VCFGs, converged round states).
pub(crate) struct DonorSnapshot {
    analyzed: Arc<Program>,
    widen_headers: Vec<BlockId>,
    block_keys: Vec<u64>,
    vcfgs: HashMap<VcfgKey, Arc<Vcfg>>,
    rounds: HashMap<RoundKey, Arc<RoundResult>>,
}

impl DonorSnapshot {
    pub(crate) fn of(core: &PreparedCore) -> Self {
        Self {
            analyzed: Arc::clone(&core.analyzed),
            widen_headers: core.widen_headers.clone(),
            block_keys: core.block_keys.clone(),
            vcfgs: core.vcfgs.entries().into_iter().collect(),
            rounds: core.rounds.lru_entries().into_iter().collect(),
        }
    }
}

impl HeapSize for DonorSnapshot {
    fn heap_size(&self) -> usize {
        self.analyzed.heap_size()
            + self.widen_headers.heap_size()
            + self.block_keys.heap_size()
            + self
                .vcfgs
                .values()
                .map(|vcfg| std::mem::size_of::<Vcfg>() + vcfg.heap_size())
                .sum::<usize>()
            + self
                .rounds
                .iter()
                .map(|(key, round)| {
                    std::mem::size_of::<RoundKey>()
                        + key.5.heap_size()
                        + std::mem::size_of::<RoundResult>()
                        + round.0.heap_size()
                })
                .sum::<usize>()
    }
}

/// A donor adopted into one freshly built core: the positional block
/// matching against the donor's summary keys, and the per-VCFG seeds
/// resolved (and memoized) on demand.
pub(crate) struct CoreSummaries {
    donor: DonorSnapshot,
    /// Per block of the new analyzed program: content-identical (equal
    /// summary key) to the donor block at the same index.
    matched: Vec<bool>,
    /// Per-VCFG seeding decision, memoized per speculation structure.
    /// `None` inside the map records a failed gate: fall back to full
    /// solves for that structure, and never retry the gate.
    seeds: Mutex<HashMap<VcfgKey, Option<Arc<VcfgSeed>>>>,
}

impl CoreSummaries {
    /// Matches the freshly analyzed program against `donor` and accounts
    /// the invalidated blocks (changed blocks plus transitive dependents
    /// over the block CFG) in `store`.
    pub(crate) fn build(
        analyzed: &Program,
        keys: &[u64],
        donor: DonorSnapshot,
        store: &SummaryStore,
    ) -> Self {
        let matched: Vec<bool> = keys
            .iter()
            .enumerate()
            .map(|(b, key)| donor.block_keys.get(b) == Some(key))
            .collect();
        store.record_invalidated(invalidated_block_closure(analyzed, &matched));
        Self {
            donor,
            matched,
            seeds: Mutex::new(HashMap::new()),
        }
    }

    /// The donor's converged states for one round, if it solved that round.
    pub(crate) fn donor_round(&self, key: &RoundKey) -> Option<Arc<RoundResult>> {
        self.donor.rounds.get(key).cloned()
    }

    /// The seeding decision for one speculation structure: `Some` when the
    /// gates pass and frozen blocks can transplant donor states, `None`
    /// when this structure must be solved cold.  Deterministic per key, so
    /// the decision is computed once and memoized.
    pub(crate) fn seed_for(
        &self,
        key: VcfgKey,
        analyzed: &Program,
        vcfg: &Vcfg,
        widen_nodes: &HashSet<usize>,
    ) -> Option<Arc<VcfgSeed>> {
        if let Some(decision) = self
            .seeds
            .lock()
            .expect("summary seeds poisoned")
            .get(&key)
        {
            return decision.clone();
        }
        let seed = build_vcfg_seed(analyzed, &self.matched, vcfg, widen_nodes, &self.donor, key)
            .map(Arc::new);
        self.seeds
            .lock()
            .expect("summary seeds poisoned")
            .entry(key)
            .or_insert(seed)
            .clone()
    }
}

impl HeapSize for CoreSummaries {
    fn heap_size(&self) -> usize {
        // The lazily memoized seed plans are policy scratch (a few words
        // per node) next to the retained donor states; only the latter
        // matter to session byte budgets.
        self.donor.heap_size() + self.matched.heap_size()
    }
}

/// The summary context of one run, resolved by
/// [`crate::session::PreparedProgram::run`] and consumed by the solver
/// driver: the seeding plan for the run's VCFG (when the gates passed) and
/// the session's accounting sink.
pub(crate) struct SummaryCtx<'a> {
    pub(crate) seed: Option<(Arc<VcfgSeed>, &'a CoreSummaries)>,
    pub(crate) store: &'a SummaryStore,
}

/// The resolved seeding plan for one (core, VCFG) pair: which nodes are
/// frozen, and where each frozen node's converged state lives in the donor.
pub(crate) struct VcfgSeed {
    /// For each node of the new VCFG: the donor node holding its converged
    /// state.  Only meaningful where `frozen` is set.
    pub(crate) donor_node: Vec<u32>,
    /// Nodes whose states transplant from the donor.
    pub(crate) frozen: Vec<bool>,
    /// Blocks all of whose nodes are frozen — the summary-hit unit.
    pub(crate) frozen_blocks: u64,
}

/// Number of blocks invalidated by the matching: unmatched blocks plus
/// everything reachable from them over the block CFG (the summary
/// dependency graph's coarse projection — state flows along successor
/// edges, so a dependent's fixpoint may change).
fn invalidated_block_closure(analyzed: &Program, matched: &[bool]) -> u64 {
    let n = analyzed.blocks().len();
    let mut invalid: Vec<bool> = (0..n).map(|b| !matched[b]).collect();
    let mut worklist: Vec<usize> = (0..n).filter(|&b| invalid[b]).collect();
    while let Some(b) = worklist.pop() {
        for succ in analyzed.blocks()[b].term.successors() {
            if !invalid[succ.index()] {
                invalid[succ.index()] = true;
                worklist.push(succ.index());
            }
        }
    }
    invalid.iter().filter(|&&inv| inv).count() as u64
}

/// Per-node speculative membership of one VCFG, mirrored from the solver's
/// engine: which colors' windows (with distances) and resume regions cover
/// each node.  Frozen nodes must agree on this exactly — it is every
/// color-indexed input the transfer function reads.
struct MembershipLite {
    spec: Vec<HashMap<Color, u32>>,
    resume: Vec<HashSet<Color>>,
}

fn membership_of(vcfg: &Vcfg) -> MembershipLite {
    let n = vcfg.graph().len();
    let mut spec: Vec<HashMap<Color, u32>> = vec![HashMap::new(); n];
    let mut resume: Vec<HashSet<Color>> = vec![HashSet::new(); n];
    for site in vcfg.sites() {
        for (node, dist) in &site.spec_distance {
            spec[node.index()].insert(site.color, *dist);
        }
        for node in &site.resume_region {
            resume[node.index()].insert(site.color);
        }
    }
    MembershipLite { spec, resume }
}

/// The effective forward adjacency the solver propagates over: graph
/// successors plus the per-site rollback edges (speculative region node →
/// resume entry).  Duplicates are harmless for reachability.
fn effective_successors(vcfg: &Vcfg) -> Vec<Vec<u32>> {
    let graph = vcfg.graph();
    let mut adj: Vec<Vec<u32>> = (0..graph.len())
        .map(|i| {
            graph
                .successors(NodeId::from_raw(i as u32))
                .iter()
                .map(|s| s.index() as u32)
                .collect()
        })
        .collect();
    for site in vcfg.sites() {
        for node in site.spec_distance.keys() {
            adj[node.index()].push(site.resume_entry.index() as u32);
        }
    }
    adj
}

/// Per-block node ranges `(first, len)` of a program under its VCFG.
fn block_ranges(analyzed: &Program, vcfg: &Vcfg) -> Vec<(usize, usize)> {
    analyzed
        .blocks()
        .iter()
        .map(|block| {
            let first = vcfg.graph().first_node_of_block(block.id).index();
            (first, block.insts.len() + 1)
        })
        .collect()
}

/// Builds the seeding plan for one VCFG, or `None` when any determinism
/// gate fails (see the module docs for the gate list).
fn build_vcfg_seed(
    analyzed: &Program,
    matched: &[bool],
    vcfg: &Vcfg,
    widen_nodes: &HashSet<usize>,
    donor: &DonorSnapshot,
    key: VcfgKey,
) -> Option<VcfgSeed> {
    // Gate 1 — same structure prerequisites.
    let donor_vcfg = donor.vcfgs.get(&key)?;
    let donor_program: &Program = &donor.analyzed;
    if analyzed.entry().index() != donor_program.entry().index()
        || vcfg.num_colors() != donor_vcfg.num_colors()
    {
        return None;
    }

    let new_ranges = block_ranges(analyzed, vcfg);
    let old_ranges = block_ranges(donor_program, donor_vcfg);
    let n_new = vcfg.graph().len();
    let n_old = donor_vcfg.graph().len();

    // Node correspondence over matched blocks (identical content implies
    // identical per-block node counts).
    let mut donor_node: Vec<u32> = vec![u32::MAX; n_new];
    let mut new_node: Vec<u32> = vec![u32::MAX; n_old];
    for (b, &is_matched) in matched.iter().enumerate() {
        if !is_matched {
            continue;
        }
        let (nf, nl) = new_ranges[b];
        let (of, ol) = old_ranges[b];
        debug_assert_eq!(nl, ol, "matched blocks have equal node counts");
        for k in 0..nl {
            donor_node[nf + k] = (of + k) as u32;
            new_node[of + k] = (nf + k) as u32;
        }
    }

    // Gate 2 — joint invalidation closure: changed/unmatched nodes on
    // either side poison everything they reach over graph + rollback
    // edges, with matched node pairs kept in sync, so the frozen remainder
    // is predecessor-closed on both sides simultaneously.
    let new_adj = effective_successors(vcfg);
    let old_adj = effective_successors(donor_vcfg);
    let mut inv_new: Vec<bool> = vec![false; n_new];
    let mut inv_old: Vec<bool> = vec![false; n_old];
    let mut worklist: Vec<(bool, usize)> = Vec::new();
    for (i, &mapped) in donor_node.iter().enumerate() {
        if mapped == u32::MAX {
            inv_new[i] = true;
            worklist.push((true, i));
        }
    }
    for (i, &mapped) in new_node.iter().enumerate() {
        if mapped == u32::MAX {
            inv_old[i] = true;
            worklist.push((false, i));
        }
    }
    while let Some((is_new, node)) = worklist.pop() {
        let (adj, inv, other_inv, map) = if is_new {
            (&new_adj, &mut inv_new, &mut inv_old, &donor_node)
        } else {
            (&old_adj, &mut inv_old, &mut inv_new, &new_node)
        };
        let mirror = map[node];
        if mirror != u32::MAX && !other_inv[mirror as usize] {
            other_inv[mirror as usize] = true;
            worklist.push((!is_new, mirror as usize));
        }
        for &succ in &adj[node] {
            if !inv[succ as usize] {
                inv[succ as usize] = true;
                worklist.push((is_new, succ as usize));
            }
        }
    }
    let frozen: Vec<bool> = (0..n_new)
        .map(|i| donor_node[i] != u32::MAX && !inv_new[i])
        .collect();
    if frozen.iter().all(|&f| !f) {
        return None; // nothing to transplant: plain cold solve
    }

    // Gate 3 — every widening point frozen, with the donor's widening set
    // its exact mirror: the recomputed region then converges to its unique
    // least fixpoint, and frozen widened states transplant verbatim.
    let donor_widen: HashSet<usize> = donor
        .widen_headers
        .iter()
        .map(|header| donor_vcfg.graph().first_node_of_block(*header).index())
        .collect();
    if widen_nodes.len() != donor_widen.len() {
        return None;
    }
    for &w in widen_nodes {
        if !frozen[w] || !donor_widen.contains(&(donor_node[w] as usize)) {
            return None;
        }
    }

    // Gate 4 — the speculation structure visible from frozen nodes
    // corresponds exactly (same color indices: colors number the bounds
    // vector of every round key).
    let corresponds = |a: NodeId, b: NodeId| -> bool {
        let mapped = donor_node[a.index()];
        if mapped != u32::MAX {
            mapped as usize == b.index()
        } else {
            new_node[b.index()] == u32::MAX
        }
    };
    let new_membership = membership_of(vcfg);
    let old_membership = membership_of(donor_vcfg);
    for i in 0..n_new {
        if !frozen[i] {
            continue;
        }
        let o = donor_node[i] as usize;
        if new_membership.spec[i] != old_membership.spec[o]
            || new_membership.resume[i] != old_membership.resume[o]
        {
            return None;
        }
        let node = NodeId::from_raw(i as u32);
        let donor_at = NodeId::from_raw(o as u32);
        if vcfg.colors_at_branch(node) != donor_vcfg.colors_at_branch(donor_at)
            || vcfg.commits_at(node) != donor_vcfg.commits_at(donor_at)
        {
            return None;
        }
        let referenced = vcfg
            .colors_at_branch(node)
            .iter()
            .chain(new_membership.spec[i].keys());
        for &color in referenced {
            let new_site = vcfg.site(color);
            let old_site = donor_vcfg.site(color);
            if !corresponds(new_site.speculated_entry, old_site.speculated_entry)
                || !corresponds(new_site.resume_entry, old_site.resume_entry)
                || !corresponds(new_site.branch_node, old_site.branch_node)
            {
                return None;
            }
        }
    }

    let frozen_blocks = (0..matched.len())
        .filter(|&b| {
            let (first, len) = new_ranges[b];
            matched[b] && (first..first + len).all(|node| frozen[node])
        })
        .count() as u64;
    Some(VcfgSeed {
        donor_node,
        frozen,
        frozen_blocks,
    })
}
