//! Compositional-equivalence property suite.
//!
//! The compositional fixpoint (see `spec_core::summary`) lets an
//! incremental re-preparation seed unchanged blocks with their previously
//! converged states and re-solve only the edited region.  That is an
//! *optimization*, never a semantics: a partially-reused preparation must
//! produce byte-identical reports (after [`Report::without_timing`]) to a
//! cold preparation of the same program.  This suite drives random ladder
//! programs through random single-block edits and checks
//!
//! * **byte identity**: warm (summary-seeded) and cold reports agree
//!   byte-for-byte once timing is stripped;
//! * **the accounting ledger**: every actually-solved round classifies
//!   each block as exactly one of summary hit or summary miss, so
//!   `summary_hits + summary_misses = solved rounds × blocks`;
//! * **invalidation scope**: the summaries invalidated by an adoption are
//!   exactly the edited blocks plus their transitive successors (the
//!   dependency-tracked forward closure), once per adopted core.

use std::time::Duration;

use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, Analyzer, CacheOutcome, CacheSession, Report, SessionCache};
use spec_ir::builder::ProgramBuilder;
use spec_ir::fingerprint::block_fingerprint;
use spec_ir::{program_fingerprint, BranchSemantics, IndexExpr, MemRef, Program, RegionId};

/// Deterministic LCG (Numerical Recipes constants): the suite must not
/// flake, only cover.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const REGION_BYTES: u64 = 4096;
const LINE: u64 = 64;

/// Builds a deterministic "ladder" program from `seed`: `segments` diamond
/// segments chained head → {then, else} → next head, every block carrying
/// a few random loads.  Blocks are created in a fixed order, so the block
/// at source index `i` is stable across calls with the same seed.
///
/// `overrides` maps a block index to a replacement byte offset for that
/// block's first load.  The RNG stream is consumed identically whether or
/// not an override applies, so two builds with the same seed differ in
/// exactly the overridden blocks — a surgical per-block edit.  Generated
/// offsets stay below `REGION_BYTES / 2`; pass an override at or above it
/// to guarantee the edit changes the block.
fn ladder(seed: u64, segments: usize, overrides: &[(usize, u64)]) -> Program {
    let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = ProgramBuilder::new("ladder");
    let regions: Vec<RegionId> = (0..4)
        .map(|i| b.region(&format!("r{i}"), REGION_BYTES, false))
        .collect();
    let p = b.region("p", LINE, false);

    // Pre-create every block in source order so block index == label index:
    // entry = 0, then per segment s: then = 3s+1, else = 3s+2, head = 3s+3.
    let entry = b.entry_block("entry");
    let mut blocks = vec![entry];
    for s in 0..segments {
        blocks.push(b.block(&format!("then{s}")));
        blocks.push(b.block(&format!("else{s}")));
        blocks.push(b.block(&format!("head{}", s + 1)));
    }

    for (i, &block) in blocks.iter().enumerate() {
        let loads = 2 + rng.below(3);
        for l in 0..loads {
            let region = regions[rng.below(4) as usize];
            let drawn = rng.below(REGION_BYTES / (2 * 8)) * 8;
            let offset = match overrides.iter().find(|(bi, _)| *bi == i) {
                Some((_, replacement)) if l == 0 => *replacement,
                _ => drawn,
            };
            b.load(block, region, IndexExpr::Const(offset));
        }
        let bit = rng.below(8) as u32;
        // Heads branch into their segment's arms; arms rejoin at the next
        // head; the final head returns.
        let is_head = i % 3 == 0;
        if is_head && i / 3 < segments {
            let s = i / 3;
            b.load(block, p, IndexExpr::Const(0));
            b.data_branch(
                block,
                vec![MemRef::at(p, 0)],
                BranchSemantics::InputBit { bit },
                blocks[3 * s + 1],
                blocks[3 * s + 2],
            );
        } else if is_head {
            b.ret(block);
        } else {
            let s = (i - 1) / 3;
            b.jump(block, blocks[3 * s + 3]);
        }
    }
    b.finish().unwrap()
}

fn configs() -> Vec<(&'static str, AnalysisOptions)> {
    let cache = CacheConfig::fully_associative(8, 64);
    vec![
        (
            "baseline",
            AnalysisOptions::builder()
                .baseline()
                .cache(cache)
                .build()
                .unwrap(),
        ),
        (
            "speculative",
            AnalysisOptions::builder().cache(cache).build().unwrap(),
        ),
    ]
}

/// The cold reference: a fresh session, same configurations, stripped.
fn cold_report(program: &Program) -> Report {
    Analyzer::new()
        .prepare(program)
        .run_suite(&configs())
        .report()
        .without_timing()
}

/// The forward closure the invalidation must cover: block indices of the
/// new analyzed program whose per-block fingerprint differs positionally
/// from the donor's, plus every transitive successor.  Mirrors the
/// dependency tracking in `spec_core::summary` from the outside.
fn expected_invalidated(donor_analyzed: &Program, new_analyzed: &Program) -> u64 {
    let donor_keys: Vec<_> = donor_analyzed
        .blocks()
        .iter()
        .map(block_fingerprint)
        .collect();
    let n = new_analyzed.blocks().len();
    let mut invalid = vec![false; n];
    for (i, block) in new_analyzed.blocks().iter().enumerate() {
        if donor_keys.get(i) != Some(&block_fingerprint(block)) {
            invalid[i] = true;
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| invalid[i]).collect();
    while let Some(i) = work.pop() {
        for succ in new_analyzed.blocks()[i].term.successors() {
            if !invalid[succ.index()] {
                invalid[succ.index()] = true;
                work.push(succ.index());
            }
        }
    }
    invalid.iter().filter(|&&inv| inv).count() as u64
}

#[test]
fn one_block_edit_reuses_every_upstream_summary() {
    let segments = 4;
    let last = 3 * segments; // the final head: every other block is upstream
    let p1 = ladder(7, segments, &[]);
    let p2 = ladder(7, segments, &[(last, REGION_BYTES / 2)]);
    assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2));

    let mut session = SessionCache::new();
    let up1 = session.update(&p1);
    let suite1 = up1.prepared.run_suite(&configs());
    assert_eq!(
        up1.prepared.cache_stats().summary_hits,
        0,
        "a cold preparation has no donor to seed from"
    );

    let up2 = session.update(&p2);
    assert!(!up2.reused, "an edited program must re-prepare");
    let suite2 = up2.prepared.run_suite(&configs());
    let stats = up2.prepared.cache_stats();
    assert!(
        stats.summary_hits > 0,
        "editing the last block must reuse upstream summaries: {stats}"
    );
    assert!(stats.summaries_invalidated > 0, "the edited block itself");
    assert!(
        stats.summary_hits > stats.summaries_invalidated,
        "a tail edit freezes more than it invalidates: {stats}"
    );

    // The seeded run is byte-identical to a cold run once timing is
    // stripped — the tentpole's determinism guarantee.
    assert_eq!(
        suite2.report().without_timing().to_json(),
        cold_report(&p2).to_json()
    );
    // And the donor run itself was a plain cold run.
    assert_eq!(
        suite1.report().without_timing().to_json(),
        cold_report(&p1).to_json()
    );
}

#[test]
fn random_edits_are_byte_identical_and_keep_the_ledger() {
    let mut rng = Lcg(0x5eed_0bad_c0de_2026);
    let mut total_hits = 0u64;
    for trial in 0..12 {
        let seed = rng.next();
        let segments = 2 + rng.below(3) as usize;
        let block_count = 1 + 3 * segments;
        let edited = rng.below(block_count as u64) as usize;
        let replacement = REGION_BYTES / 2 + rng.below(REGION_BYTES / (2 * 8)) * 8;
        let p1 = ladder(seed, segments, &[]);
        let p2 = ladder(seed, segments, &[(edited, replacement)]);
        assert_ne!(
            program_fingerprint(&p1),
            program_fingerprint(&p2),
            "trial {trial}: the override must be a real edit"
        );

        let mut session = SessionCache::new();
        let up1 = session.update(&p1);
        let suite1 = up1.prepared.run_suite(&configs());
        let up2 = session.update(&p2);
        let suite2 = up2.prepared.run_suite(&configs());

        // Byte identity post-strip against a cold preparation.
        assert_eq!(
            suite2.report().without_timing().to_json(),
            cold_report(&p2).to_json(),
            "trial {trial} (edit at block {edited}): seeded and cold reports diverge"
        );

        // The ledger: every solved round classified each block exactly once.
        let stats = up2.prepared.cache_stats();
        let blocks = suite2.runs[0].result.program.blocks().len() as u64;
        assert_eq!(
            stats.summary_hits + stats.summary_misses,
            stats.round_misses * blocks,
            "trial {trial}: hits + misses must equal solved rounds × blocks: {stats}"
        );

        // Invalidation is the dependency-tracked forward closure, counted
        // once per adopted core.
        let donor_analyzed = &suite1.runs[0].result.program;
        let new_analyzed = &suite2.runs[0].result.program;
        let closure = expected_invalidated(donor_analyzed, new_analyzed);
        assert_eq!(
            stats.summaries_invalidated,
            stats.core_misses * closure,
            "trial {trial}: invalidation must cover exactly the closure of the edit"
        );
        assert!(closure >= 1, "trial {trial}: the edited block itself");

        total_hits += stats.summary_hits;
    }
    assert!(
        total_hits > 0,
        "across all trials, at least some summaries must have been reused"
    );
}

#[test]
fn unrelated_programs_do_not_seed_each_other() {
    // Different seeds produce structurally unrelated ladders: adoption may
    // stash a donor, but no block matches, so nothing is reused and the
    // result is still exactly the cold one.
    let p1 = ladder(11, 3, &[]);
    let p2 = ladder(13, 3, &[]);
    let mut session = SessionCache::new();
    session.update(&p1).prepared.run_suite(&configs());
    let up2 = session.update(&p2);
    let suite2 = up2.prepared.run_suite(&configs());
    assert_eq!(
        up2.prepared.cache_stats().summary_hits,
        0,
        "no block of an unrelated program may reuse a donor summary"
    );
    assert_eq!(
        suite2.report().without_timing().to_json(),
        cold_report(&p2).to_json()
    );
}

/// Cross-restart reuse: the store tier's name index connects an edited
/// program to its predecessor's artifact, so even a *fresh process* (here:
/// a fresh `SessionCache` over the same artifact directory) seeds its
/// re-preparation from the donor — and is still byte-identical to cold.
#[test]
fn summary_reuse_survives_a_restart_through_the_artifact_store() {
    let dir = std::env::temp_dir().join(format!(
        "spec-core-compositional-restart-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let segments = 4;
    let p1 = ladder(17, segments, &[]);
    let p2 = ladder(17, segments, &[(3 * segments, REGION_BYTES / 2)]);

    // First "process": analyse and persist the donor (checkpoint flushes
    // the memoized rounds to the artifact, the CLI's request-boundary
    // behaviour).
    {
        let session = CacheSession::new(
            SessionCache::new().artifact_store(spec_core::PreparedStore::open(&dir)),
        );
        let prepared = match session.acquire(&p1) {
            CacheOutcome::NeedsPrepare(guard) => guard.prepare(&p1),
            _ => panic!("an empty session must miss"),
        };
        prepared.run_suite(&configs());
        session.checkpoint();
    }

    // Second "process": edit arrived, memory is cold, only the store
    // remains.  The name index must surface the predecessor as a donor.
    let session = CacheSession::new(
        SessionCache::new().artifact_store(spec_core::PreparedStore::open(&dir)),
    );
    let prepared = match session.acquire(&p2) {
        CacheOutcome::NeedsPrepare(guard) => guard.prepare(&p2),
        other => panic!("the edited fingerprint cannot be stored: {}", other.tag()),
    };
    let suite = prepared.run_suite(&configs());
    let stats = prepared.cache_stats();
    assert!(
        stats.summary_hits > 0,
        "the store-tier donor must seed the re-preparation: {stats}"
    );
    assert_eq!(
        suite.report().without_timing().to_json(),
        cold_report(&p2).to_json()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the stale-name rebind: the structural fingerprint is
/// name-free, so a pure region rename fingerprints identically to its
/// donor.  [`SessionCache::update`] used to authorize the rebind on the
/// fingerprint alone and serve the *old* session — reports then carried
/// the stale names.  The rebind now requires full program equality.
#[test]
fn pure_rename_rebinds_to_the_new_names_without_losing_reuse() {
    fn tiny(region: &str) -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let t = b.region(region, 2 * LINE, false);
        let entry = b.entry_block("entry");
        b.load(entry, t, IndexExpr::Const(0));
        b.load(entry, t, IndexExpr::Const(0));
        b.ret(entry);
        b.finish().unwrap()
    }

    let old = tiny("t");
    let renamed = tiny("t_v2");
    assert_ne!(old, renamed);
    assert_eq!(
        program_fingerprint(&old),
        program_fingerprint(&renamed),
        "a pure rename is structurally identical — that is the trap"
    );

    let mut session = SessionCache::new();
    let up1 = session.update(&old);
    assert!(!up1.reused);
    up1.prepared.run_suite(&configs());
    let up2 = session.update(&renamed);
    assert!(
        up2.reused,
        "a rename never invalidates the session — the structure is identical"
    );
    assert_eq!(
        up2.prepared.program(),
        &renamed,
        "but the served session must carry the *new* names, not the donor's"
    );
    // The rebind transplanted the donor's fixpoints: the renamed run
    // seeds from them instead of re-solving, and stays byte-identical.
    let renamed_suite = up2.prepared.run_suite(&configs());
    let stats = up2.prepared.cache_stats();
    assert!(
        stats.summary_hits > 0,
        "a rename rebind must reuse the donor's summaries, got {stats}"
    );
    assert_eq!(
        cold_report(&renamed).to_json(),
        renamed_suite.report().without_timing().to_json(),
        "the rebound run must match a cold analysis of the renamed program"
    );

    // An identical re-parse rebinds wholesale — same handle, no new work.
    let up3 = session.update(&renamed);
    assert!(up3.reused, "an identical program rebinds the warm session");
    assert_eq!(up3.prepared.program(), &renamed);
}

/// `Report::without_timing` must strip *every* execution-dependent field —
/// the byte-identity guarantee leans on it.  `iterations` counts worklist
/// pops, which summary seeding legitimately shrinks.
#[test]
fn timing_strip_covers_iterations() {
    let p = ladder(5, 2, &[]);
    let report = Analyzer::new()
        .prepare(&p)
        .run_suite(&configs())
        .report()
        .without_timing();
    assert!(report.elapsed.is_none());
    assert!(report.cache.is_none());
    for row in &report.rows {
        assert_eq!(row.time, Duration::ZERO);
        assert_eq!(row.iterations, 0);
    }
}
