//! End-to-end tests of the speculative must-hit analysis on small programs
//! modelled after the paper's figures.

use spec_cache::CacheConfig;
use spec_core::{AnalysisOptions, CacheAnalysis};
use spec_ir::builder::ProgramBuilder;
use spec_ir::{BranchSemantics, IndexExpr, MemRef, Program, RegionId};
use spec_vcfg::MergeStrategy;

/// Builds the Figure 2 program scaled down to a cache with `lines` lines:
/// a placeholder array `ph` filling `lines - 2` lines, one line for `p`,
/// one line for whichever of `l1`/`l2` the executed branch loads, and the
/// final (secret-indexed) access to `ph`.
fn figure2_program(lines: u64) -> (Program, RegionId) {
    let ph_lines = lines - 2;
    let mut b = ProgramBuilder::new("figure2");
    let ph = b.region("ph", ph_lines * 64, false);
    let l1 = b.region("l1", 64, false);
    let l2 = b.region("l2", 64, false);
    let p = b.region("p", 8, false);
    let k = b.secret_region("k", 8);
    let entry = b.entry_block("entry");
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let done = b.block("done");
    b.load_sweep(entry, ph, 0, 64, ph_lines);
    b.load(entry, p, IndexExpr::Const(0));
    b.data_branch(
        entry,
        vec![MemRef::at(p, 0)],
        BranchSemantics::InputBit { bit: 0 },
        then_bb,
        else_bb,
    );
    b.load(then_bb, l1, IndexExpr::Const(0));
    b.jump(then_bb, done);
    b.load(else_bb, l2, IndexExpr::Const(0));
    b.jump(else_bb, done);
    // `k` itself lives in a register in the paper's example; only the
    // table access it indexes goes to memory.
    let _ = k;
    b.load(done, ph, IndexExpr::secret(64));
    b.ret(done);
    (b.finish().unwrap(), ph)
}

fn options_with_lines(lines: usize) -> (AnalysisOptions, AnalysisOptions) {
    let cache = CacheConfig::fully_associative(lines, 64);
    (
        AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
        AnalysisOptions::builder().cache(cache).build().unwrap(),
    )
}

#[test]
fn figure2_non_speculative_proves_final_access_hits() {
    let (program, _) = figure2_program(16);
    let (baseline, _) = options_with_lines(16);
    let result = CacheAnalysis::new(baseline).run(&program);
    // The secret-indexed access to ph is the only secret-dependent access.
    let secret: Vec<_> = result.secret_accesses().collect();
    assert_eq!(secret.len(), 1);
    assert!(
        secret[0].observable_hit,
        "non-speculatively, ph is fully cached so ph[k] always hits"
    );
}

#[test]
fn figure2_speculative_analysis_finds_the_extra_miss() {
    let (program, _) = figure2_program(16);
    let (baseline, speculative) = options_with_lines(16);
    let base = CacheAnalysis::new(baseline).run(&program);
    let spec = CacheAnalysis::new(speculative).run(&program);
    assert!(
        spec.miss_count() > base.miss_count(),
        "speculation evicts a ph line: baseline {} vs speculative {}",
        base.miss_count(),
        spec.miss_count()
    );
    // The secret-indexed access is no longer a guaranteed hit.
    let secret: Vec<_> = spec.secret_accesses().collect();
    assert!(!secret[0].observable_hit);
    // Speculative misses were observed (the wrong-path l1/l2 load misses).
    assert!(spec.speculative_miss_count() >= 1);
    assert_eq!(spec.speculated_branches, 1);
    assert_eq!(spec.colors, 2);
}

#[test]
fn speculative_analysis_never_reports_fewer_misses_than_baseline() {
    for lines in [4u64, 8, 16, 32] {
        let (program, _) = figure2_program(lines);
        let (baseline, speculative) = options_with_lines(lines as usize);
        let base = CacheAnalysis::new(baseline).run(&program);
        let spec = CacheAnalysis::new(speculative).run(&program);
        assert!(
            spec.miss_count() >= base.miss_count(),
            "lines={lines}: speculative analysis must be at least as conservative"
        );
    }
}

#[test]
fn merge_at_rollback_is_at_most_as_precise_as_just_in_time() {
    let (program, _) = figure2_program(16);
    let cache = CacheConfig::fully_associative(16, 64);
    let jit = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .merge_strategy(MergeStrategy::JustInTime)
            .build()
            .unwrap(),
    )
    .run(&program);
    let rollback = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .merge_strategy(MergeStrategy::MergeAtRollback)
            .build()
            .unwrap(),
    )
    .run(&program);
    assert!(
        rollback.miss_count() >= jit.miss_count(),
        "aggressive merging cannot be more precise: rollback {} vs jit {}",
        rollback.miss_count(),
        jit.miss_count()
    );
    // Both remain sound: the secret access is flagged by both.
    assert!(!jit.secret_accesses().next().unwrap().observable_hit);
    assert!(!rollback.secret_accesses().next().unwrap().observable_hit);
}

#[test]
fn programs_without_memory_dependent_branches_are_unaffected_by_speculation() {
    let mut b = ProgramBuilder::new("counted-only");
    let t = b.region("t", 8 * 64, false);
    let entry = b.entry_block("entry");
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.jump(entry, header);
    b.loop_branch(header, 8, body, exit);
    b.load(body, t, IndexExpr::loop_indexed(64));
    b.jump(body, header);
    b.load(exit, t, IndexExpr::Const(0));
    b.ret(exit);
    let program = b.finish().unwrap();

    let (baseline, speculative) = options_with_lines(16);
    let base = CacheAnalysis::new(baseline).run(&program);
    let spec = CacheAnalysis::new(speculative).run(&program);
    assert_eq!(base.miss_count(), spec.miss_count());
    assert_eq!(spec.speculated_branches, 0);
    assert_eq!(spec.speculative_miss_count(), 0);
    // Unrolling made the final access to t[0] a guaranteed hit.
    assert_eq!(base.miss_count(), 8);
}

#[test]
fn unresolved_loop_reaches_a_fixed_point() {
    // A data-dependent while loop whose body touches two lines; the analysis
    // must terminate and the loop body accesses cannot be guaranteed hits on
    // the first iteration.
    let mut b = ProgramBuilder::new("while-loop");
    let t = b.region("t", 2 * 64, false);
    let flag = b.region("flag", 8, false);
    let entry = b.entry_block("entry");
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.jump(entry, header);
    b.load(header, flag, IndexExpr::Const(0));
    b.data_branch(
        header,
        vec![MemRef::at(flag, 0)],
        BranchSemantics::InputBit { bit: 0 },
        body,
        exit,
    );
    b.load(body, t, IndexExpr::Const(0));
    b.load(body, t, IndexExpr::Const(64));
    b.jump(body, header);
    b.load(exit, t, IndexExpr::Const(0));
    b.ret(exit);
    let program = b.finish().unwrap();

    let (_, speculative) = options_with_lines(8);
    let result = CacheAnalysis::new(speculative).run(&program);
    assert!(result.iterations() > 0);
    assert_eq!(result.access_count(), 4);
    // flag[0] becomes a hit on subsequent iterations but the join with the
    // first iteration keeps it a possible miss; either way the analysis must
    // be sound, so at least the three first-touch accesses are misses.
    assert!(result.miss_count() >= 3);
}

#[test]
fn dynamic_depth_bounding_does_not_change_soundness_verdicts() {
    let (program, _) = figure2_program(16);
    let cache = CacheConfig::fully_associative(16, 64);
    let with_bounding = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .dynamic_depth_bounding(true)
            .build()
            .unwrap(),
    )
    .run(&program);
    let without_bounding = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .dynamic_depth_bounding(false)
            .build()
            .unwrap(),
    )
    .run(&program);
    // The final secret access is flagged as a possible miss either way.
    assert!(
        !with_bounding
            .secret_accesses()
            .next()
            .unwrap()
            .observable_hit
    );
    assert!(
        !without_bounding
            .secret_accesses()
            .next()
            .unwrap()
            .observable_hit
    );
    // Bounding may only reduce (never increase) the number of misses.
    assert!(with_bounding.miss_count() <= without_bounding.miss_count());
    assert!(with_bounding.rounds >= 1);
}

#[test]
fn short_speculation_window_limits_the_damage() {
    // With b_m = 0 no speculation happens at all; the result matches the
    // baseline.  With a large window the extra miss appears.
    let (program, _) = figure2_program(16);
    let cache = CacheConfig::fully_associative(16, 64);
    let no_window = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .speculation_depths(0, 0)
            .dynamic_depth_bounding(false)
            .build()
            .unwrap(),
    )
    .run(&program);
    let baseline = CacheAnalysis::new(
        AnalysisOptions::builder()
            .baseline()
            .cache(cache)
            .build()
            .unwrap(),
    )
    .run(&program);
    assert_eq!(no_window.miss_count(), baseline.miss_count());
    assert_eq!(no_window.speculative_miss_count(), 0);
}

#[test]
fn shadow_refinement_only_improves_precision() {
    // A loop-heavy program (Figure 11 shape) plus a speculative branch.
    let mut b = ProgramBuilder::new("fig11");
    let a = b.region("a", 64, false);
    let bc = b.region("bc", 2 * 64, false);
    let flag = b.region("flag", 8, false);
    let entry = b.entry_block("entry");
    let header = b.block("header");
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let latch = b.block("latch");
    let exit = b.block("exit");
    b.load(entry, a, IndexExpr::Const(0));
    b.load(entry, flag, IndexExpr::Const(0));
    b.jump(entry, header);
    b.loop_branch(header, 3, then_bb, exit);
    b.data_branch(
        then_bb,
        vec![MemRef::at(flag, 0)],
        BranchSemantics::InputBit { bit: 0 },
        latch,
        else_bb,
    );
    b.load(else_bb, bc, IndexExpr::Const(64));
    b.jump(else_bb, latch);
    b.load(latch, bc, IndexExpr::Const(0));
    b.jump(latch, header);
    b.load(exit, a, IndexExpr::Const(0));
    b.ret(exit);
    let program = b.finish().unwrap();

    let cache = CacheConfig::fully_associative(4, 64);
    let with_shadow = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .shadow(true)
            .build()
            .unwrap(),
    )
    .run(&program);
    let without_shadow = CacheAnalysis::new(
        AnalysisOptions::builder()
            .cache(cache)
            .shadow(false)
            .build()
            .unwrap(),
    )
    .run(&program);
    assert!(
        with_shadow.miss_count() <= without_shadow.miss_count(),
        "shadow refinement can only remove spurious misses: {} vs {}",
        with_shadow.miss_count(),
        without_shadow.miss_count()
    );
}

#[test]
fn result_exposes_block_level_state_information() {
    let (program, ph) = figure2_program(8);
    let (_, speculative) = options_with_lines(8);
    let result = CacheAnalysis::new(speculative).run(&program);
    // At the entry of the final block, the regions p / l-something are
    // cached; ph is not fully cached any more under speculation.
    let final_access = result
        .accesses()
        .iter()
        .rfind(|a| a.mem.region == ph)
        .expect("final ph access exists");
    let cached = result.fully_cached_regions_at(final_access.node);
    assert!(
        !cached.contains(&"ph".to_string()),
        "ph must not be reported fully cached under speculation, got {cached:?}"
    );
    assert!(cached.contains(&"p".to_string()));
}

#[test]
fn every_access_is_classified_exactly_once() {
    let (program, _) = figure2_program(16);
    let (_, speculative) = options_with_lines(16);
    let result = CacheAnalysis::new(speculative).run(&program);
    assert_eq!(result.access_count(), result.program.memory_access_count());
    assert_eq!(
        result.access_count(),
        result.must_hit_count() + result.miss_count()
    );
}
