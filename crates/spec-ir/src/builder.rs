//! A fluent builder for [`Program`]s.
//!
//! The builder allocates [`RegionId`]s and [`BlockId`]s up front so blocks
//! can reference each other before they are filled in, and checks the result
//! with [`Program::validate`] when [`ProgramBuilder::finish`] is called.

use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, RegionId};
use crate::inst::{BranchSemantics, Condition, IndexExpr, Inst, MemRef, Terminator};
use crate::memory::MemoryRegion;
use crate::program::{BasicBlock, Program};

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```rust
/// use spec_ir::builder::ProgramBuilder;
/// use spec_ir::{BranchSemantics, IndexExpr};
///
/// let mut b = ProgramBuilder::new("loop-demo");
/// let table = b.region("table", 4 * 64, false);
///
/// let entry = b.entry_block("entry");
/// let header = b.block("header");
/// let body = b.block("body");
/// let exit = b.block("exit");
///
/// b.jump(entry, header);
/// b.loop_branch(header, 4, body, exit);
/// b.load(body, table, IndexExpr::loop_indexed(64));
/// b.jump(body, header);
/// b.ret(exit);
///
/// let program = b.finish().unwrap();
/// assert_eq!(program.branch_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    name: String,
    regions: Vec<MemoryRegion>,
    blocks: Vec<PendingBlock>,
    entry: Option<BlockId>,
}

#[derive(Clone, Debug)]
struct PendingBlock {
    name: Option<String>,
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            regions: Vec::new(),
            blocks: Vec::new(),
            entry: None,
        }
    }

    // ----- regions ---------------------------------------------------------

    /// Declares a memory region of `size_bytes` bytes.
    pub fn region(&mut self, name: impl Into<String>, size_bytes: u64, secret: bool) -> RegionId {
        let id = RegionId::from_raw(self.regions.len() as u32);
        self.regions.push(MemoryRegion {
            name: name.into(),
            size_bytes,
            secret,
        });
        id
    }

    /// Declares a secret region (e.g. a key buffer).
    pub fn secret_region(&mut self, name: impl Into<String>, size_bytes: u64) -> RegionId {
        self.region(name, size_bytes, true)
    }

    // ----- blocks ----------------------------------------------------------

    /// Creates a new, empty basic block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            name: Some(name.into()),
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Creates a new block and marks it as the program entry.
    pub fn entry_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = self.block(name);
        self.entry = Some(id);
        id
    }

    /// Marks an existing block as the program entry.
    pub fn set_entry(&mut self, block: BlockId) {
        self.entry = Some(block);
    }

    // ----- instructions ----------------------------------------------------

    /// Appends an arbitrary instruction to `block`.
    pub fn push(&mut self, block: BlockId, inst: Inst) -> &mut Self {
        self.blocks[block.index()].insts.push(inst);
        self
    }

    /// Appends a load of `region[index]` to `block`.
    pub fn load(&mut self, block: BlockId, region: RegionId, index: IndexExpr) -> &mut Self {
        self.push(block, Inst::Load(MemRef::new(region, index)))
    }

    /// Appends a store to `region[index]` to `block`.
    pub fn store(&mut self, block: BlockId, region: RegionId, index: IndexExpr) -> &mut Self {
        self.push(block, Inst::Store(MemRef::new(region, index)))
    }

    /// Appends `count` consecutive constant-offset loads covering
    /// `region[start .. start + count*stride]`, one per `stride` bytes.
    ///
    /// This is the explicit form of the "preload loop" pattern from the
    /// paper's Figure 2 / Figure 10 client program.
    pub fn load_sweep(
        &mut self,
        block: BlockId,
        region: RegionId,
        start: u64,
        stride: u64,
        count: u64,
    ) -> &mut Self {
        for i in 0..count {
            self.load(block, region, IndexExpr::Const(start + i * stride));
        }
        self
    }

    /// Appends a register-only computation with the given latency.
    pub fn compute(&mut self, block: BlockId, latency: u32) -> &mut Self {
        self.push(block, Inst::Compute { latency })
    }

    /// Appends `count` unit-latency computations (filler work).
    pub fn compute_n(&mut self, block: BlockId, count: usize) -> &mut Self {
        for _ in 0..count {
            self.compute(block, 1);
        }
        self
    }

    // ----- terminators -----------------------------------------------------

    /// Terminates `block` with an unconditional jump.
    pub fn jump(&mut self, block: BlockId, target: BlockId) -> &mut Self {
        self.blocks[block.index()].term = Some(Terminator::Jump(target));
        self
    }

    /// Terminates `block` with a return.
    pub fn ret(&mut self, block: BlockId) -> &mut Self {
        self.blocks[block.index()].term = Some(Terminator::Return);
        self
    }

    /// Terminates `block` with a conditional branch.
    pub fn branch(
        &mut self,
        block: BlockId,
        cond: Condition,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.blocks[block.index()].term = Some(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
        self
    }

    /// Terminates `block` with a counted-loop branch: `body` is taken for
    /// the first `trip_count` evaluations, then `exit`.
    pub fn loop_branch(
        &mut self,
        block: BlockId,
        trip_count: u64,
        body: BlockId,
        exit: BlockId,
    ) -> &mut Self {
        self.branch(
            block,
            Condition::register_only(BranchSemantics::Loop { trip_count }),
            body,
            exit,
        )
    }

    /// Terminates `block` with a data-dependent branch whose condition must
    /// read the given memory locations (and therefore may be speculated).
    pub fn data_branch(
        &mut self,
        block: BlockId,
        depends_on: Vec<MemRef>,
        semantics: BranchSemantics,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.branch(
            block,
            Condition::new(depends_on, semantics),
            then_bb,
            else_bb,
        )
    }

    // ----- composition -----------------------------------------------------

    /// Splices every block and region of `other` into this builder.
    ///
    /// Returns the mapping of the other program's entry block and a function
    /// of its exit: all `Return` terminators in `other` are rewritten to
    /// jump to `continue_at`.  Region name collisions are resolved by
    /// reusing the already-declared region, so a "callee" can reference the
    /// caller's tables by name.
    pub fn inline_program(&mut self, other: &Program, continue_at: BlockId) -> BlockId {
        // Map the callee's regions onto ours (by name), declaring new ones
        // as needed.
        let region_map: Vec<RegionId> = other
            .regions()
            .iter()
            .map(|r| {
                if let Some(existing) = self
                    .regions
                    .iter()
                    .position(|mine| mine.name == r.name)
                    .map(|i| RegionId::from_raw(i as u32))
                {
                    existing
                } else {
                    let id = RegionId::from_raw(self.regions.len() as u32);
                    self.regions.push(r.clone());
                    id
                }
            })
            .collect();

        let base = self.blocks.len() as u32;
        let map_block = |b: BlockId| BlockId::from_raw(base + b.0);
        let map_ref = |m: MemRef| MemRef::new(region_map[m.region.index()], m.index);

        for block in other.blocks() {
            let insts = block
                .insts
                .iter()
                .map(|inst| match inst {
                    Inst::Load(m) => Inst::Load(map_ref(*m)),
                    Inst::Store(m) => Inst::Store(map_ref(*m)),
                    other => *other,
                })
                .collect();
            let term = match &block.term {
                Terminator::Return => Terminator::Jump(continue_at),
                Terminator::Jump(t) => Terminator::Jump(map_block(*t)),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => Terminator::Branch {
                    cond: Condition {
                        depends_on: cond.depends_on.iter().map(|m| map_ref(*m)).collect(),
                        semantics: cond.semantics,
                    },
                    then_bb: map_block(*then_bb),
                    else_bb: map_block(*else_bb),
                },
            };
            self.blocks.push(PendingBlock {
                name: block.name.clone().map(|n| format!("{}.{n}", other.name())),
                insts,
                term: Some(term),
            });
        }
        map_block(other.entry())
    }

    // ----- finishing -------------------------------------------------------

    /// Consumes the builder and produces a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingTerminator`] if any block was never given a
    /// terminator, [`IrError::EmptyProgram`] if no block exists, plus any
    /// error produced by [`Program::validate`].
    pub fn finish(self) -> IrResult<Program> {
        if self.blocks.is_empty() {
            return Err(IrError::EmptyProgram);
        }
        let entry = self.entry.unwrap_or(BlockId::from_raw(0));
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, pending) in self.blocks.into_iter().enumerate() {
            let id = BlockId::from_raw(i as u32);
            let term = pending.term.ok_or(IrError::MissingTerminator(id))?;
            blocks.push(BasicBlock {
                id,
                name: pending.name,
                insts: pending.insts,
                term,
            });
        }
        Program::new(self.name, self.regions, blocks, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_straight_line_program() {
        let mut b = ProgramBuilder::new("p");
        let a = b.region("a", 64, false);
        let entry = b.entry_block("entry");
        b.load(entry, a, IndexExpr::Const(0));
        b.compute(entry, 2);
        b.store(entry, a, IndexExpr::Const(0));
        b.ret(entry);
        let p = b.finish().unwrap();
        assert_eq!(p.instruction_count(), 3);
        assert_eq!(p.memory_access_count(), 2);
        assert_eq!(p.entry(), entry);
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut b = ProgramBuilder::new("p");
        let entry = b.entry_block("entry");
        let other = b.block("dangling");
        b.ret(entry);
        let _ = other;
        let err = b.finish().unwrap_err();
        assert_eq!(err, IrError::MissingTerminator(BlockId::from_raw(1)));
    }

    #[test]
    fn empty_builder_is_rejected() {
        let err = ProgramBuilder::new("p").finish().unwrap_err();
        assert_eq!(err, IrError::EmptyProgram);
    }

    #[test]
    fn load_sweep_emits_one_access_per_stride() {
        let mut b = ProgramBuilder::new("p");
        let table = b.region("t", 4 * 64, false);
        let entry = b.entry_block("entry");
        b.load_sweep(entry, table, 0, 64, 4);
        b.ret(entry);
        let p = b.finish().unwrap();
        assert_eq!(p.memory_access_count(), 4);
        let offsets: Vec<u64> = p
            .block(entry)
            .memory_refs()
            .map(|m| match m.index {
                IndexExpr::Const(o) => o,
                _ => panic!("expected const index"),
            })
            .collect();
        assert_eq!(offsets, vec![0, 64, 128, 192]);
    }

    #[test]
    fn default_entry_is_block_zero() {
        let mut b = ProgramBuilder::new("p");
        let first = b.block("first");
        b.ret(first);
        let p = b.finish().unwrap();
        assert_eq!(p.entry(), first);
    }

    #[test]
    fn inline_program_rewrites_returns_and_regions() {
        // Callee: loads from its own "shared" region and returns.
        let mut callee_b = ProgramBuilder::new("callee");
        let shared = callee_b.region("shared", 64, false);
        let own = callee_b.region("callee_only", 64, false);
        let e = callee_b.entry_block("entry");
        callee_b.load(e, shared, IndexExpr::Const(0));
        callee_b.load(e, own, IndexExpr::Const(0));
        callee_b.ret(e);
        let callee = callee_b.finish().unwrap();

        // Caller: declares "shared" itself, then inlines the callee.
        let mut b = ProgramBuilder::new("caller");
        let shared_caller = b.region("shared", 64, false);
        let entry = b.entry_block("entry");
        let after = b.block("after");
        b.load(entry, shared_caller, IndexExpr::Const(0));
        b.ret(after);
        let callee_entry = b.inline_program(&callee, after);
        b.jump(entry, callee_entry);
        let p = b.finish().unwrap();

        // The shared region is not duplicated; the callee-only one is added.
        assert_eq!(p.regions().len(), 2);
        assert!(p.region_by_name("callee_only").is_some());
        // The callee's return was rewritten into a jump to `after`.
        let inlined = p.block(callee_entry);
        assert_eq!(inlined.term, Terminator::Jump(after));
        p.validate().unwrap();
    }

    #[test]
    fn compute_n_adds_filler_instructions() {
        let mut b = ProgramBuilder::new("p");
        let entry = b.entry_block("entry");
        b.compute_n(entry, 5);
        b.ret(entry);
        let p = b.finish().unwrap();
        assert_eq!(p.instruction_count(), 5);
        assert_eq!(p.memory_access_count(), 0);
    }
}
