//! Control-flow-graph utilities: successors, predecessors, traversal orders,
//! dominators and post-dominators.
//!
//! The speculative analysis needs, beyond plain successor edges,
//!
//! * a reverse post-order for efficient worklist iteration,
//! * dominators, to identify natural loops (Section 6.3 of the paper), and
//! * immediate post-dominators, to find the control-flow merge point of a
//!   branch where "just-in-time" merging folds the speculative state back
//!   into the normal state (Figure 6c).

use std::collections::VecDeque;

use crate::ids::BlockId;
use crate::program::Program;

/// Precomputed control-flow facts for a [`Program`].
#[derive(Clone, Debug)]
pub struct Cfg {
    entry: BlockId,
    successors: Vec<Vec<BlockId>>,
    predecessors: Vec<Vec<BlockId>>,
    reverse_postorder: Vec<BlockId>,
    /// `idom[b]` is the immediate dominator of `b`, `None` for the entry and
    /// for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// `ipostdom[b]` is the immediate post-dominator of `b`, `None` for exit
    /// blocks and blocks from which no exit is reachable.
    ipostdom: Vec<Option<BlockId>>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Computes the CFG facts for `program`.
    pub fn new(program: &Program) -> Self {
        let n = program.blocks().len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for block in program.blocks() {
            let succs = block.term.successors();
            for s in &succs {
                predecessors[s.index()].push(block.id);
            }
            successors[block.id.index()] = succs;
        }
        let entry = program.entry();
        let reverse_postorder = reverse_postorder(entry, &successors);
        let mut reachable = vec![false; n];
        for b in &reverse_postorder {
            reachable[b.index()] = true;
        }
        let idom = immediate_dominators(entry, &successors, &predecessors, &reverse_postorder);
        let ipostdom = immediate_postdominators(&successors, &predecessors, n);
        Self {
            entry,
            successors,
            predecessors,
            reverse_postorder,
            idom,
            ipostdom,
            reachable,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.successors.len()
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.successors[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.predecessors[b.index()]
    }

    /// Blocks in reverse post-order from the entry (unreachable blocks are
    /// not included).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.reverse_postorder
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable blocks).
    pub fn immediate_dominator(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Immediate post-dominator of `b` (`None` for exit blocks).
    pub fn immediate_postdominator(&self, b: BlockId) -> Option<BlockId> {
        self.ipostdom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut cur = self.idom[b.index()];
        while let Some(d) = cur {
            if d == a {
                return true;
            }
            cur = self.idom[d.index()];
        }
        false
    }

    /// The control-flow merge point of a two-way branch at `b`: its immediate
    /// post-dominator.  Returns `None` when the branch's arms never re-join
    /// (e.g. one arm returns).
    pub fn branch_join_point(&self, b: BlockId) -> Option<BlockId> {
        self.immediate_postdominator(b)
    }
}

/// Depth-first reverse post-order over `successors` starting at `entry`.
fn reverse_postorder(entry: BlockId, successors: &[Vec<BlockId>]) -> Vec<BlockId> {
    let n = successors.len();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        let succs = &successors[block.index()];
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(block);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Cooper–Harvey–Kennedy iterative dominator computation.
fn immediate_dominators(
    entry: BlockId,
    _successors: &[Vec<BlockId>],
    predecessors: &[Vec<BlockId>],
    reverse_postorder: &[BlockId],
) -> Vec<Option<BlockId>> {
    let n = predecessors.len();
    let mut rpo_number = vec![usize::MAX; n];
    for (i, b) in reverse_postorder.iter().enumerate() {
        rpo_number[b.index()] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[entry.index()] = Some(entry);

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_number[a.index()] > rpo_number[b.index()] {
                a = idom[a.index()].expect("processed block has an idom");
            }
            while rpo_number[b.index()] > rpo_number[a.index()] {
                b = idom[b.index()].expect("processed block has an idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in reverse_postorder.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &predecessors[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // unprocessed or unreachable predecessor
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // By convention the entry has no immediate dominator.
    idom[entry.index()] = None;
    idom
}

/// Post-dominators computed by an iterative backward dataflow over block
/// sets.  Programs analysed here are small (at most a few thousand blocks),
/// so the simple O(n²) approach with bit sets is fine and easy to audit.
fn immediate_postdominators(
    successors: &[Vec<BlockId>],
    predecessors: &[Vec<BlockId>],
    n: usize,
) -> Vec<Option<BlockId>> {
    if n == 0 {
        return Vec::new();
    }
    let exits: Vec<usize> = (0..n).filter(|&i| successors[i].is_empty()).collect();
    // pdom[b] = set of blocks that post-dominate b, as a bitset.
    let full: Vec<u64> = vec![u64::MAX; n.div_ceil(64)];
    let mut pdom: Vec<Vec<u64>> = vec![full.clone(); n];
    for &e in &exits {
        let mut only_self = vec![0u64; n.div_ceil(64)];
        set_bit(&mut only_self, e);
        pdom[e] = only_self;
    }
    // Iterate to a fixed point: pdom[b] = {b} ∪ ⋂ pdom[s] over successors s.
    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(b) = work.pop_front() {
        if successors[b].is_empty() {
            continue;
        }
        let mut new = full.clone();
        for s in &successors[b] {
            intersect_bits(&mut new, &pdom[s.index()]);
        }
        set_bit(&mut new, b);
        if new != pdom[b] {
            pdom[b] = new;
            for p in &predecessors[b] {
                work.push_back(p.index());
            }
        }
    }
    // Immediate post-dominator: the strict post-dominator closest to `b`,
    // i.e. the one that is itself post-dominated by every other strict
    // post-dominator of `b`; equivalently the strict post-dominator with the
    // largest post-dominator set.
    (0..n)
        .map(|b| {
            let mut best: Option<(usize, usize)> = None; // (set size, block)
            for c in 0..n {
                if c == b || !get_bit(&pdom[b], c) {
                    continue;
                }
                let size = pdom[c].iter().map(|w| w.count_ones() as usize).sum();
                match best {
                    None => best = Some((size, c)),
                    Some((s, _)) if size > s => best = Some((size, c)),
                    _ => {}
                }
            }
            // If the block's own pdom set is still "full" it cannot reach an
            // exit; report no post-dominator for it.
            let reaches_exit = exits.iter().any(|&e| get_bit(&pdom[b], e));
            if !reaches_exit {
                return None;
            }
            best.map(|(_, c)| BlockId::from_raw(c as u32))
        })
        .collect()
}

fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1 << (i % 64)) != 0
}

fn intersect_bits(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BranchSemantics, Condition};

    /// Diamond:  entry -> {then, else} -> join -> exit
    fn diamond() -> (Program, [BlockId; 5]) {
        let mut b = ProgramBuilder::new("diamond");
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let join = b.block("join");
        let exit = b.block("exit");
        b.branch(
            entry,
            Condition::register_only(BranchSemantics::Const(true)),
            then_bb,
            else_bb,
        );
        b.jump(then_bb, join);
        b.jump(else_bb, join);
        b.jump(join, exit);
        b.ret(exit);
        (b.finish().unwrap(), [entry, then_bb, else_bb, join, exit])
    }

    use crate::program::Program;

    #[test]
    fn successors_and_predecessors() {
        let (p, [entry, then_bb, else_bb, join, exit]) = diamond();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.successors(entry), &[then_bb, else_bb]);
        assert_eq!(cfg.predecessors(join), &[then_bb, else_bb]);
        assert_eq!(cfg.successors(exit), &[] as &[BlockId]);
        assert_eq!(cfg.predecessors(entry), &[] as &[BlockId]);
        assert_eq!(cfg.block_count(), 5);
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_covers_reachable_blocks() {
        let (p, [entry, ..]) = diamond();
        let cfg = Cfg::new(&p);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], entry);
        assert_eq!(rpo.len(), 5);
        // Every block appears before its dominated successors.
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).expect("in rpo");
        for blk in p.blocks() {
            for s in cfg.successors(blk.id) {
                if cfg.dominates(blk.id, *s) {
                    assert!(pos(blk.id) < pos(*s));
                }
            }
        }
    }

    #[test]
    fn dominators_of_diamond() {
        let (p, [entry, then_bb, else_bb, join, exit]) = diamond();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.immediate_dominator(entry), None);
        assert_eq!(cfg.immediate_dominator(then_bb), Some(entry));
        assert_eq!(cfg.immediate_dominator(else_bb), Some(entry));
        assert_eq!(cfg.immediate_dominator(join), Some(entry));
        assert_eq!(cfg.immediate_dominator(exit), Some(join));
        assert!(cfg.dominates(entry, exit));
        assert!(!cfg.dominates(then_bb, join));
    }

    #[test]
    fn postdominators_of_diamond() {
        let (p, [entry, then_bb, else_bb, join, exit]) = diamond();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.immediate_postdominator(entry), Some(join));
        assert_eq!(cfg.immediate_postdominator(then_bb), Some(join));
        assert_eq!(cfg.immediate_postdominator(else_bb), Some(join));
        assert_eq!(cfg.immediate_postdominator(join), Some(exit));
        assert_eq!(cfg.immediate_postdominator(exit), None);
        assert_eq!(cfg.branch_join_point(entry), Some(join));
    }

    #[test]
    fn loop_cfg_dominators() {
        // entry -> header; header -> {body, exit}; body -> header
        let mut b = ProgramBuilder::new("loop");
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 3, body, exit);
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.immediate_dominator(body), Some(header));
        assert_eq!(cfg.immediate_dominator(exit), Some(header));
        assert_eq!(cfg.immediate_postdominator(header), Some(exit));
        // The loop body's post-dominator is the header (it must come back).
        assert_eq!(cfg.immediate_postdominator(body), Some(header));
    }

    #[test]
    fn branch_with_returning_arm_has_no_join_point() {
        let mut b = ProgramBuilder::new("early-return");
        let entry = b.entry_block("entry");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        b.branch(
            entry,
            Condition::register_only(BranchSemantics::Const(true)),
            then_bb,
            else_bb,
        );
        b.ret(then_bb);
        b.ret(else_bb);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.branch_join_point(entry), None);
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut b = ProgramBuilder::new("unreachable");
        let entry = b.entry_block("entry");
        let island = b.block("island");
        b.ret(entry);
        b.ret(island);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        assert!(cfg.is_reachable(entry));
        assert!(!cfg.is_reachable(island));
        assert_eq!(cfg.reverse_postorder().len(), 1);
    }

    #[test]
    fn infinite_loop_block_has_no_postdominator() {
        let mut b = ProgramBuilder::new("infinite");
        let entry = b.entry_block("entry");
        let spin = b.block("spin");
        b.jump(entry, spin);
        b.jump(spin, spin);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.immediate_postdominator(spin), None);
        assert_eq!(cfg.immediate_postdominator(entry), None);
    }
}
