//! Human-readable textual listing of programs.
//!
//! The format produced here is parsed back by [`crate::text::parse_program`],
//! so `parse(program.to_string())` round-trips (block names are preserved,
//! block ids are re-assigned densely in listing order).

use std::fmt;

use crate::inst::{BranchSemantics, Condition, IndexExpr, Inst, MemRef, Terminator};
use crate::program::Program;

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}", self.name())?;
        for region in self.regions() {
            if region.secret {
                writeln!(f, "secret_region {} {}", region.name, region.size_bytes)?;
            } else {
                writeln!(f, "region {} {}", region.name, region.size_bytes)?;
            }
        }
        for block in self.blocks() {
            let marker = if block.id == self.entry() {
                " entry"
            } else {
                ""
            };
            writeln!(f, "block {}{marker}:", block.label())?;
            for inst in &block.insts {
                writeln!(
                    f,
                    "  {}",
                    DisplayInst {
                        program: self,
                        inst
                    }
                )?;
            }
            writeln!(
                f,
                "  {}",
                DisplayTerm {
                    program: self,
                    term: &block.term
                }
            )?;
        }
        Ok(())
    }
}

struct DisplayInst<'a> {
    program: &'a Program,
    inst: &'a Inst,
}

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Inst::Load(m) => write!(f, "load {}", fmt_ref(self.program, m)),
            Inst::Store(m) => write!(f, "store {}", fmt_ref(self.program, m)),
            Inst::Compute { latency } => write!(f, "compute {latency}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

struct DisplayTerm<'a> {
    program: &'a Program,
    term: &'a Terminator,
}

impl fmt::Display for DisplayTerm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Terminator::Jump(t) => write!(f, "jump {}", self.program.block(*t).label()),
            Terminator::Return => write!(f, "ret"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(
                f,
                "branch {} -> {}, {}",
                fmt_cond(self.program, cond),
                self.program.block(*then_bb).label(),
                self.program.block(*else_bb).label()
            ),
        }
    }
}

/// Renders a memory reference, e.g. `sbox[64]` or `sbox[secret*1]`.
pub(crate) fn fmt_ref(program: &Program, m: &MemRef) -> String {
    let name = &program.region(m.region).name;
    match m.index {
        IndexExpr::Const(o) => format!("{name}[{o}]"),
        IndexExpr::LoopIndexed { stride } => format!("{name}[loop*{stride}]"),
        IndexExpr::Input { stride } => format!("{name}[input*{stride}]"),
        IndexExpr::Secret { stride } => format!("{name}[secret*{stride}]"),
    }
}

/// Renders a branch condition, e.g. `mem(p[0]) loop(30)`.
pub(crate) fn fmt_cond(program: &Program, cond: &Condition) -> String {
    let mut parts = Vec::new();
    if !cond.depends_on.is_empty() {
        let refs: Vec<String> = cond
            .depends_on
            .iter()
            .map(|m| fmt_ref(program, m))
            .collect();
        parts.push(format!("mem({})", refs.join(", ")));
    }
    let sem = match cond.semantics {
        BranchSemantics::Loop { trip_count } => format!("loop({trip_count})"),
        BranchSemantics::InputBit { bit } => format!("input_bit({bit})"),
        BranchSemantics::SecretBit { bit } => format!("secret_bit({bit})"),
        BranchSemantics::Const(v) => format!("const({v})"),
    };
    parts.push(sem);
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn listing_contains_all_parts() {
        let mut b = ProgramBuilder::new("listing");
        let sbox = b.region("sbox", 256, false);
        let key = b.secret_region("key", 8);
        let entry = b.entry_block("entry");
        let leak = b.block("leak");
        let exit = b.block("exit");
        b.load(entry, key, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(key, 0)],
            BranchSemantics::SecretBit { bit: 0 },
            leak,
            exit,
        );
        b.load(leak, sbox, IndexExpr::secret(1));
        b.jump(leak, exit);
        b.compute(exit, 3);
        b.ret(exit);
        let p = b.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("program listing"));
        assert!(text.contains("region sbox 256"));
        assert!(text.contains("secret_region key 8"));
        assert!(text.contains("block entry entry:"));
        assert!(text.contains("load key[0]"));
        assert!(text.contains("branch mem(key[0]) secret_bit(0) -> leak, exit"));
        assert!(text.contains("load sbox[secret*1]"));
        assert!(text.contains("compute 3"));
        assert!(text.contains("jump exit"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn index_expr_rendering() {
        let mut b = ProgramBuilder::new("idx");
        let t = b.region("t", 64, false);
        let entry = b.entry_block("entry");
        b.load(entry, t, IndexExpr::loop_indexed(4));
        b.load(entry, t, IndexExpr::input(2));
        b.push(entry, Inst::Nop);
        b.ret(entry);
        let p = b.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("t[loop*4]"));
        assert!(text.contains("t[input*2]"));
        assert!(text.contains("nop"));
    }
}
