//! Error types for IR construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, RegionId};

/// Result alias for IR operations.
pub type IrResult<T> = Result<T, IrError>;

/// Errors produced while building, validating, parsing or transforming a
/// [`crate::Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// The program has no basic blocks.
    EmptyProgram,
    /// A terminator or instruction refers to a block that does not exist.
    UnknownBlock(BlockId),
    /// An instruction or condition refers to a region that does not exist.
    UnknownRegion(RegionId),
    /// A memory region was declared with zero size.
    ZeroSizedRegion(String),
    /// Two memory regions share the same name.
    DuplicateRegion(String),
    /// A block was left without a terminator by the builder.
    MissingTerminator(BlockId),
    /// The entry block has predecessors, which the analyses do not support.
    EntryHasPredecessors(BlockId),
    /// A loop transformation was asked to unroll a loop with unknown trip count.
    UnknownTripCount(BlockId),
    /// Failure while parsing the textual program format.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyProgram => write!(f, "program has no basic blocks"),
            IrError::UnknownBlock(b) => write!(f, "reference to unknown block {b}"),
            IrError::UnknownRegion(r) => write!(f, "reference to unknown region {r}"),
            IrError::ZeroSizedRegion(name) => {
                write!(f, "memory region `{name}` has zero size")
            }
            IrError::DuplicateRegion(name) => {
                write!(f, "memory region `{name}` declared more than once")
            }
            IrError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            IrError::EntryHasPredecessors(b) => {
                write!(f, "entry block {b} has predecessors")
            }
            IrError::UnknownTripCount(b) => {
                write!(f, "loop headed at {b} has no statically known trip count")
            }
            IrError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            IrError::EmptyProgram.to_string(),
            IrError::UnknownBlock(BlockId::from_raw(3)).to_string(),
            IrError::UnknownRegion(RegionId::from_raw(1)).to_string(),
            IrError::ZeroSizedRegion("x".into()).to_string(),
            IrError::DuplicateRegion("x".into()).to_string(),
            IrError::MissingTerminator(BlockId::from_raw(0)).to_string(),
            IrError::Parse {
                line: 4,
                message: "bad token".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<IrError>();
    }
}
