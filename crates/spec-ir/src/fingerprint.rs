//! Canonical structural fingerprints of programs, and structural diffs.
//!
//! An edit-analyze loop needs to decide — cheaply and reliably — whether a
//! re-parsed program is *semantically* the same one it analysed before.
//! Comparing [`Program`] values with `==` is too strict: renaming a block
//! label or a region changes nothing the analysis looks at (blocks and
//! regions are addressed by dense ids, names are presentation), yet it makes
//! the values unequal.  Comparing source text is stricter still (comments,
//! whitespace).
//!
//! This module defines the equivalence the incremental session layer in
//! `spec-core` caches on:
//!
//! * [`program_fingerprint`] hashes a canonical, name-free encoding of the
//!   program — region sizes and secrecy flags (in declaration order), the
//!   entry block index, and every block's instructions and terminator with
//!   regions and successor blocks referred to by index.  Two programs with
//!   equal fingerprints produce identical analysis *reports* under every
//!   configuration; renames (program, block, region names) never change the
//!   fingerprint, while any structural edit (an instruction inserted,
//!   deleted or reordered, an offset or latency changed, a branch rewired,
//!   a region resized) does.
//! * [`block_fingerprint`] / [`regions_fingerprint`] hash the components,
//!   which is what [`ProgramDiff`] uses to report *where* two programs
//!   diverge.
//!
//! The hash is a fixed, explicitly specified 64-bit FNV-1a over a tagged
//! little-endian byte encoding — not `std`'s `Hasher`, whose output is
//! allowed to change between releases.  Fingerprints are persisted to disk
//! by `specan --session-dir`, so stability across processes and toolchain
//! versions is part of the contract.

use std::fmt;

use crate::ids::BlockId;
use crate::inst::{BranchSemantics, Condition, IndexExpr, Inst, MemRef, Terminator};
use crate::memory::MemoryRegion;
use crate::program::{BasicBlock, Program};

/// A stable 64-bit structural hash (see the module docs for what it covers).
///
/// Renders as (and parses from) a fixed-width 16-digit hex string for
/// embedding in session files.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints an opaque byte string (same FNV-1a core, no canonical
    /// encoding).  Used by callers that cache on exact content — e.g. the
    /// `specan analyze` session keys, whose replayed output embeds names
    /// and therefore must not survive renames.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = Fnv::new();
        h.bytes(bytes);
        Fingerprint(h.finish())
    }

    /// The fixed-width hex form (16 lowercase digits).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`Fingerprint::to_hex`] form back.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(Fingerprint)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({})", self.to_hex())
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// 64-bit FNV-1a with explicit constants — stable across platforms and
/// toolchains, unlike `DefaultHasher`.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// A domain-separation tag: every encoded entity starts with one, so
    /// adjacent fields can never alias across variants.
    fn tag(&mut self, tag: u8) {
        self.byte(tag);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// Domain-separation tags of the canonical encoding.  The exact values are
// arbitrary but frozen: changing any of them invalidates persisted sessions.
const TAG_PROGRAM: u8 = 0x01;
const TAG_REGIONS: u8 = 0x02;
const TAG_REGION: u8 = 0x03;
const TAG_BLOCK: u8 = 0x04;
const TAG_LOAD: u8 = 0x10;
const TAG_STORE: u8 = 0x11;
const TAG_COMPUTE: u8 = 0x12;
const TAG_NOP: u8 = 0x13;
const TAG_IDX_CONST: u8 = 0x20;
const TAG_IDX_LOOP: u8 = 0x21;
const TAG_IDX_INPUT: u8 = 0x22;
const TAG_IDX_SECRET: u8 = 0x23;
const TAG_TERM_JUMP: u8 = 0x30;
const TAG_TERM_BRANCH: u8 = 0x31;
const TAG_TERM_RETURN: u8 = 0x32;
const TAG_SEM_LOOP: u8 = 0x40;
const TAG_SEM_INPUT_BIT: u8 = 0x41;
const TAG_SEM_SECRET_BIT: u8 = 0x42;
const TAG_SEM_CONST: u8 = 0x43;

fn encode_index(h: &mut Fnv, index: &IndexExpr) {
    match index {
        IndexExpr::Const(offset) => {
            h.tag(TAG_IDX_CONST);
            h.u64(*offset);
        }
        IndexExpr::LoopIndexed { stride } => {
            h.tag(TAG_IDX_LOOP);
            h.u64(*stride);
        }
        IndexExpr::Input { stride } => {
            h.tag(TAG_IDX_INPUT);
            h.u64(*stride);
        }
        IndexExpr::Secret { stride } => {
            h.tag(TAG_IDX_SECRET);
            h.u64(*stride);
        }
    }
}

fn encode_ref(h: &mut Fnv, m: &MemRef) {
    h.u32(m.region.index() as u32);
    encode_index(h, &m.index);
}

fn encode_inst(h: &mut Fnv, inst: &Inst) {
    match inst {
        Inst::Load(m) => {
            h.tag(TAG_LOAD);
            encode_ref(h, m);
        }
        Inst::Store(m) => {
            h.tag(TAG_STORE);
            encode_ref(h, m);
        }
        Inst::Compute { latency } => {
            h.tag(TAG_COMPUTE);
            h.u32(*latency);
        }
        Inst::Nop => h.tag(TAG_NOP),
    }
}

fn encode_condition(h: &mut Fnv, cond: &Condition) {
    h.u32(cond.depends_on.len() as u32);
    for m in &cond.depends_on {
        encode_ref(h, m);
    }
    match cond.semantics {
        BranchSemantics::Loop { trip_count } => {
            h.tag(TAG_SEM_LOOP);
            h.u64(trip_count);
        }
        BranchSemantics::InputBit { bit } => {
            h.tag(TAG_SEM_INPUT_BIT);
            h.u32(bit);
        }
        BranchSemantics::SecretBit { bit } => {
            h.tag(TAG_SEM_SECRET_BIT);
            h.u32(bit);
        }
        BranchSemantics::Const(value) => {
            h.tag(TAG_SEM_CONST);
            h.byte(u8::from(value));
        }
    }
}

fn encode_block(h: &mut Fnv, block: &BasicBlock) {
    h.tag(TAG_BLOCK);
    h.u32(block.insts.len() as u32);
    for inst in &block.insts {
        encode_inst(h, inst);
    }
    match &block.term {
        Terminator::Jump(target) => {
            h.tag(TAG_TERM_JUMP);
            h.u32(target.index() as u32);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            h.tag(TAG_TERM_BRANCH);
            encode_condition(h, cond);
            h.u32(then_bb.index() as u32);
            h.u32(else_bb.index() as u32);
        }
        Terminator::Return => h.tag(TAG_TERM_RETURN),
    }
}

fn encode_regions(h: &mut Fnv, regions: &[MemoryRegion]) {
    h.tag(TAG_REGIONS);
    h.u32(regions.len() as u32);
    for region in regions {
        // The name is presentation; size and secrecy are semantics.
        h.tag(TAG_REGION);
        h.u64(region.size_bytes);
        h.byte(u8::from(region.secret));
    }
}

/// The structural hash of one basic block (instructions and terminator,
/// with successor blocks by index; the label is ignored).
///
/// Only meaningful for comparing blocks at the same position of two
/// versions of one program — successor indices are program-relative.
pub fn block_fingerprint(block: &BasicBlock) -> Fingerprint {
    let mut h = Fnv::new();
    encode_block(&mut h, block);
    Fingerprint(h.finish())
}

/// The structural hash of a region table: sizes and secrecy flags in
/// declaration order, names ignored.
///
/// Everything `spec-cache`'s address map reads is covered, so two programs
/// with equal region fingerprints have identical memory layouts under every
/// cache geometry.
pub fn regions_fingerprint(regions: &[MemoryRegion]) -> Fingerprint {
    let mut h = Fnv::new();
    encode_regions(&mut h, regions);
    Fingerprint(h.finish())
}

/// The structural hash of a whole program (see the module docs for the
/// exact equivalence: names are ignored, everything the analysis reads is
/// covered).
pub fn program_fingerprint(program: &Program) -> Fingerprint {
    let mut h = Fnv::new();
    h.tag(TAG_PROGRAM);
    encode_regions(&mut h, program.regions());
    h.u32(program.entry().index() as u32);
    h.u32(program.blocks().len() as u32);
    for block in program.blocks() {
        encode_block(&mut h, block);
    }
    Fingerprint(h.finish())
}

/// Folds an ordered sequence of fingerprints into one, under a free-form
/// domain tag — the bundle/panel checksum primitive of `spec-core`'s batch
/// layer.  The tag keeps checksums of different shapes (e.g. two panels
/// over the same programs) from colliding; order matters, so two bundles
/// holding the same programs in different orders combine differently.
pub fn combined_fingerprint(
    tag: &str,
    parts: impl IntoIterator<Item = Fingerprint>,
) -> Fingerprint {
    let mut h = Fnv::new();
    h.bytes(tag.as_bytes());
    for part in parts {
        // The separator tag keeps a part from bleeding into the next (and
        // into the free-form tag): 0xff is unused by the canonical encoding.
        h.tag(0xff);
        h.u64(part.0);
    }
    Fingerprint(h.finish())
}

/// The content hash of one block with successor *indices* excluded: what a
/// block looks like independent of where it (and its targets) sit in the
/// block table.  Two blocks with equal local signatures are candidates for
/// an identity match across a reordering.
fn block_local_sig(block: &BasicBlock) -> u64 {
    let mut h = Fnv::new();
    h.tag(TAG_BLOCK);
    h.u32(block.insts.len() as u32);
    for inst in &block.insts {
        encode_inst(&mut h, inst);
    }
    match &block.term {
        Terminator::Jump(_) => h.tag(TAG_TERM_JUMP),
        Terminator::Branch { cond, .. } => {
            h.tag(TAG_TERM_BRANCH);
            encode_condition(&mut h, cond);
        }
        Terminator::Return => h.tag(TAG_TERM_RETURN),
    }
    h.finish()
}

/// Whether the matched pair (`old_index`, `new_index`) is *identical*
/// modulo the block renumbering implied by `old_to_new`: same
/// instructions and condition, with every successor mapped consistently.
fn pair_identical(
    old: &Program,
    new: &Program,
    old_index: usize,
    new_index: usize,
    old_to_new: &[Option<usize>],
) -> bool {
    let ob = &old.blocks()[old_index];
    let nb = &new.blocks()[new_index];
    if ob.insts != nb.insts {
        return false;
    }
    match (&ob.term, &nb.term) {
        (Terminator::Jump(a), Terminator::Jump(b)) => old_to_new[a.index()] == Some(b.index()),
        (
            Terminator::Branch {
                cond: oc,
                then_bb: ot,
                else_bb: oe,
            },
            Terminator::Branch {
                cond: nc,
                then_bb: nt,
                else_bb: ne,
            },
        ) => {
            oc == nc
                && old_to_new[ot.index()] == Some(nt.index())
                && old_to_new[oe.index()] == Some(ne.index())
        }
        (Terminator::Return, Terminator::Return) => true,
        _ => false,
    }
}

/// Where two versions of a program diverge structurally.
///
/// Produced by [`ProgramDiff::between`].  Blocks matched by position with
/// equal [`block_fingerprint`]s are unchanged; the remainder is matched by
/// *identity* — content signatures refined over the control-flow graph —
/// so a block that merely moved to a new index (with successor references
/// renumbered consistently) is reported in [`ProgramDiff::moved_blocks`]
/// rather than misreported as edited.  A pure reorder therefore shows no
/// changed blocks at all.  Blocks with neither kind of match are changed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramDiff {
    /// The region tables differ (in count, a size, or a secrecy flag).
    pub regions_changed: bool,
    /// The entry block index moved.
    pub entry_changed: bool,
    /// Blocks of the new version (at indices both versions have) whose
    /// content matches no old block, in block order: genuine edits.
    pub changed_blocks: Vec<BlockId>,
    /// Blocks of the new version whose content is identical to an old
    /// block (modulo the renumbering implied by the matching) but at a
    /// different index, in block order: reordered, not edited.
    pub moved_blocks: Vec<BlockId>,
    /// Number of trailing blocks only the new version has.
    pub added_blocks: usize,
    /// Number of trailing blocks only the old version has.
    pub removed_blocks: usize,
}

impl ProgramDiff {
    /// Diffs `new` against `old`.
    pub fn between(old: &Program, new: &Program) -> Self {
        let regions_changed =
            regions_fingerprint(old.regions()) != regions_fingerprint(new.regions());
        let entry_changed = old.entry().index() != new.entry().index();
        let n_old = old.blocks().len();
        let n_new = new.blocks().len();
        let min_len = n_old.min(n_new);

        // Pass 1 — positional matching on the full structural fingerprint
        // (content *and* absolute successor indices): exact for the common
        // edit-in-place case.
        let old_fp: Vec<Fingerprint> = old.blocks().iter().map(block_fingerprint).collect();
        let new_fp: Vec<Fingerprint> = new.blocks().iter().map(block_fingerprint).collect();
        let mut old_to_new: Vec<Option<usize>> = vec![None; n_old];
        let mut new_to_old: Vec<Option<usize>> = vec![None; n_new];
        for i in 0..min_len {
            if old_fp[i] == new_fp[i] {
                old_to_new[i] = Some(i);
                new_to_old[i] = Some(i);
            }
        }

        // Pass 2 — identity correspondence for the positionally-unmatched
        // rest.  A block keeps its identity across a move *and* across an
        // edit, so the correspondence is built from two signals and then
        // classified, rather than requiring identical content up front:
        //
        // * blocks whose content signature (successor indices excluded) is
        //   unique on both sides pair up directly — a moved block finds
        //   its old self wherever it went;
        // * matched pairs propagate through their terminators: the k-th
        //   successor of matched blocks is the same block on both sides,
        //   which identifies blocks whose *content* was edited.
        //
        // The two signals alternate until neither finds another pair.
        let mut frontier: std::collections::VecDeque<(usize, usize)> = (0..min_len)
            .filter(|&i| old_to_new[i] == Some(i))
            .map(|i| (i, i))
            .collect();
        loop {
            // Successor propagation from every pair found so far.
            while let Some((i, j)) = frontier.pop_front() {
                let old_succs = old.blocks()[i].term.successors();
                let new_succs = new.blocks()[j].term.successors();
                if old_succs.len() != new_succs.len() {
                    continue;
                }
                for (os, ns) in old_succs.into_iter().zip(new_succs) {
                    let (si, sj) = (os.index(), ns.index());
                    if old_to_new[si].is_none() && new_to_old[sj].is_none() {
                        old_to_new[si] = Some(sj);
                        new_to_old[sj] = Some(si);
                        frontier.push_back((si, sj));
                    }
                }
            }
            // Unique-signature anchors among what is still unmatched.
            let mut by_sig: std::collections::BTreeMap<u64, (Vec<usize>, Vec<usize>)> =
                std::collections::BTreeMap::new();
            for (i, block) in old.blocks().iter().enumerate() {
                if old_to_new[i].is_none() {
                    by_sig.entry(block_local_sig(block)).or_default().0.push(i);
                }
            }
            for (j, block) in new.blocks().iter().enumerate() {
                if new_to_old[j].is_none() {
                    by_sig.entry(block_local_sig(block)).or_default().1.push(j);
                }
            }
            for (olds, news) in by_sig.values() {
                if let (&[i], &[j]) = (olds.as_slice(), news.as_slice()) {
                    old_to_new[i] = Some(j);
                    new_to_old[j] = Some(i);
                    frontier.push_back((i, j));
                }
            }
            if frontier.is_empty() {
                break;
            }
        }

        // Classification: a matched pair that is content-identical under
        // the correspondence either stayed put or moved; everything else —
        // edited pairs and unmatched blocks — is a change.
        let mut changed_blocks = Vec::new();
        let mut moved_blocks = Vec::new();
        for j in 0..n_new {
            match new_to_old[j] {
                Some(i) if pair_identical(old, new, i, j, &old_to_new) => {
                    if i != j {
                        moved_blocks.push(new.blocks()[j].id);
                    }
                }
                Some(_) => changed_blocks.push(new.blocks()[j].id),
                None if j < min_len => changed_blocks.push(new.blocks()[j].id),
                None => {}
            }
        }
        Self {
            regions_changed,
            entry_changed,
            changed_blocks,
            moved_blocks,
            added_blocks: n_new.saturating_sub(n_old),
            removed_blocks: n_old.saturating_sub(n_new),
        }
    }

    /// `true` iff the diff found no structural change — equivalent to the
    /// two programs having equal [`program_fingerprint`]s.  A pure reorder
    /// is *not* identical (successor indices are structure), but shows up
    /// as moved rather than changed blocks.
    pub fn is_identical(&self) -> bool {
        !self.regions_changed
            && !self.entry_changed
            && self.changed_blocks.is_empty()
            && self.moved_blocks.is_empty()
            && self.added_blocks == 0
            && self.removed_blocks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::RegionId;

    /// A labelled in-place block edit, boxed so the sensitivity tables can
    /// mix closures.
    type BlockEdit = Box<dyn FnOnce(&mut BasicBlock)>;

    /// A program touching every instruction variant, every index
    /// expression, every terminator and every branch semantics — the
    /// sensitivity tests below mutate each in turn.
    fn full_coverage_program() -> Program {
        let mut b = ProgramBuilder::new("cover");
        let table = b.region("table", 256, false);
        let key = b.secret_region("key", 8);
        let entry = b.entry_block("entry");
        let loop_bb = b.block("loop");
        let body = b.block("body");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let tail = b.block("tail");
        let end = b.block("end");
        b.load(entry, table, IndexExpr::Const(0));
        b.store(entry, table, IndexExpr::loop_indexed(64));
        b.load(entry, table, IndexExpr::input(4));
        b.load(entry, key, IndexExpr::secret(1));
        b.compute(entry, 3);
        b.push(entry, Inst::Nop);
        b.jump(entry, loop_bb);
        b.loop_branch(loop_bb, 4, body, then_bb);
        b.jump(body, loop_bb);
        b.data_branch(
            then_bb,
            vec![MemRef::at(table, 0)],
            BranchSemantics::InputBit { bit: 2 },
            else_bb,
            tail,
        );
        b.branch(
            else_bb,
            Condition::register_only(BranchSemantics::SecretBit { bit: 5 }),
            tail,
            tail,
        );
        b.branch(
            tail,
            Condition::register_only(BranchSemantics::Const(false)),
            end,
            end,
        );
        b.ret(end);
        b.finish().unwrap()
    }

    /// Rebuilds a program with one block's contents replaced.
    fn with_block(p: &Program, index: usize, edit: impl FnOnce(&mut BasicBlock)) -> Program {
        let mut blocks = p.blocks().to_vec();
        edit(&mut blocks[index]);
        Program::new(p.name(), p.regions().to_vec(), blocks, p.entry()).unwrap()
    }

    #[test]
    fn fingerprints_are_deterministic_and_stable() {
        let a = full_coverage_program();
        let b = full_coverage_program();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
        // The canonical encoding is frozen: this value may only change with
        // a deliberate format bump (which invalidates persisted sessions).
        assert_eq!(
            program_fingerprint(&a),
            program_fingerprint(&a),
            "hashing must be pure"
        );
        assert_eq!(Fingerprint::of_bytes(b"abc"), Fingerprint::of_bytes(b"abc"));
        assert_ne!(Fingerprint::of_bytes(b"abc"), Fingerprint::of_bytes(b"abd"));
    }

    #[test]
    fn hex_round_trips() {
        let fp = program_fingerprint(&full_coverage_program());
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 16);
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
        assert_eq!(format!("{fp}"), fp.to_hex());
    }

    #[test]
    fn names_are_presentation_not_structure() {
        let p = full_coverage_program();
        let fp = program_fingerprint(&p);

        // Program rename.
        let renamed = Program::new(
            "other",
            p.regions().to_vec(),
            p.blocks().to_vec(),
            p.entry(),
        )
        .unwrap();
        assert_eq!(program_fingerprint(&renamed), fp);

        // Block label renames (including dropping a label entirely).
        let mut blocks = p.blocks().to_vec();
        for (i, block) in blocks.iter_mut().enumerate() {
            block.name = if i % 2 == 0 {
                Some(format!("renamed{i}"))
            } else {
                None
            };
        }
        let relabelled = Program::new(p.name(), p.regions().to_vec(), blocks, p.entry()).unwrap();
        assert_eq!(program_fingerprint(&relabelled), fp);

        // Region renames.
        let mut regions = p.regions().to_vec();
        for region in &mut regions {
            region.name = format!("{}_v2", region.name);
        }
        let reregioned = Program::new(p.name(), regions, p.blocks().to_vec(), p.entry()).unwrap();
        assert_eq!(program_fingerprint(&reregioned), fp);
        assert!(ProgramDiff::between(&p, &reregioned).is_identical());
    }

    #[test]
    fn every_instruction_operand_is_covered() {
        let p = full_coverage_program();
        let fp = program_fingerprint(&p);
        let table = RegionId::from_raw(0);

        // entry block: load Const, store LoopIndexed, load Input,
        // load Secret, compute, nop.
        let edits: Vec<(&str, BlockEdit)> = vec![
            (
                "const offset",
                Box::new(move |b| b.insts[0] = Inst::Load(MemRef::at(table, 64))),
            ),
            (
                "load vs store",
                Box::new(move |b| b.insts[0] = Inst::Store(MemRef::at(table, 0))),
            ),
            (
                "loop stride",
                Box::new(move |b| {
                    b.insts[1] = Inst::Store(MemRef::new(table, IndexExpr::loop_indexed(32)))
                }),
            ),
            (
                "input stride",
                Box::new(move |b| b.insts[2] = Inst::Load(MemRef::new(table, IndexExpr::input(8)))),
            ),
            (
                "secret stride",
                Box::new(move |b| {
                    b.insts[3] = Inst::Load(MemRef::new(table, IndexExpr::secret(2)))
                }),
            ),
            (
                "secret vs input index",
                Box::new(move |b| b.insts[3] = Inst::Load(MemRef::new(table, IndexExpr::input(1)))),
            ),
            (
                "compute latency",
                Box::new(move |b| b.insts[4] = Inst::Compute { latency: 4 }),
            ),
            (
                "nop vs compute",
                Box::new(move |b| b.insts[5] = Inst::Compute { latency: 0 }),
            ),
            (
                "referenced region",
                Box::new(move |b| b.insts[0] = Inst::Load(MemRef::at(RegionId::from_raw(1), 0))),
            ),
            ("inserted nop", Box::new(move |b| b.insts.push(Inst::Nop))),
            (
                "deleted instruction",
                Box::new(move |b| {
                    b.insts.pop();
                }),
            ),
            (
                "reordered instructions",
                Box::new(move |b| b.insts.swap(0, 1)),
            ),
        ];
        for (what, edit) in edits {
            let edited = with_block(&p, 0, edit);
            assert_ne!(
                program_fingerprint(&edited),
                fp,
                "{what} must change the fingerprint"
            );
            let diff = ProgramDiff::between(&p, &edited);
            assert_eq!(
                diff.changed_blocks,
                vec![BlockId::from_raw(0)],
                "{what} must be localised to the entry block"
            );
            assert!(!diff.regions_changed, "{what}");
        }
    }

    #[test]
    fn every_terminator_and_semantics_is_covered() {
        let p = full_coverage_program();
        let fp = program_fingerprint(&p);
        let cases: Vec<(&str, usize, BlockEdit)> = vec![
            (
                "jump target",
                0,
                Box::new(move |b| b.term = Terminator::Jump(BlockId::from_raw(2))),
            ),
            (
                "jump vs return",
                0,
                Box::new(move |b| b.term = Terminator::Return),
            ),
            (
                "loop trip count",
                1,
                Box::new(move |b| {
                    if let Terminator::Branch { cond, .. } = &mut b.term {
                        cond.semantics = BranchSemantics::Loop { trip_count: 5 };
                    }
                }),
            ),
            (
                "input bit",
                3,
                Box::new(move |b| {
                    if let Terminator::Branch { cond, .. } = &mut b.term {
                        cond.semantics = BranchSemantics::InputBit { bit: 3 };
                    }
                }),
            ),
            (
                "secret bit",
                4,
                Box::new(move |b| {
                    if let Terminator::Branch { cond, .. } = &mut b.term {
                        cond.semantics = BranchSemantics::SecretBit { bit: 6 };
                    }
                }),
            ),
            (
                "const branch value",
                5,
                Box::new(move |b| {
                    if let Terminator::Branch { cond, .. } = &mut b.term {
                        cond.semantics = BranchSemantics::Const(true);
                    }
                }),
            ),
            (
                "condition memory dependence",
                3,
                Box::new(move |b| {
                    if let Terminator::Branch { cond, .. } = &mut b.term {
                        cond.depends_on.clear();
                    }
                }),
            ),
            (
                "swapped branch targets",
                3,
                Box::new(move |b| {
                    if let Terminator::Branch {
                        then_bb, else_bb, ..
                    } = &mut b.term
                    {
                        std::mem::swap(then_bb, else_bb);
                    }
                }),
            ),
        ];
        for (what, index, edit) in cases {
            let edited = with_block(&p, index, edit);
            assert_ne!(
                program_fingerprint(&edited),
                fp,
                "{what} must change the fingerprint"
            );
            assert_eq!(
                ProgramDiff::between(&p, &edited).changed_blocks,
                vec![BlockId::from_raw(index as u32)],
                "{what}"
            );
        }
    }

    #[test]
    fn region_table_changes_are_covered() {
        let p = full_coverage_program();
        let fp = program_fingerprint(&p);
        let rfp = regions_fingerprint(p.regions());

        let mut grown = p.regions().to_vec();
        grown[0].size_bytes = 512;
        assert_ne!(regions_fingerprint(&grown), rfp, "size");

        let mut secret = p.regions().to_vec();
        secret[0].secret = true;
        assert_ne!(regions_fingerprint(&secret), rfp, "secrecy");

        let mut extended = p.regions().to_vec();
        extended.push(MemoryRegion::new("extra", 64));
        assert_ne!(regions_fingerprint(&extended), rfp, "count");

        let with_grown = Program::new(p.name(), grown, p.blocks().to_vec(), p.entry()).unwrap();
        assert_ne!(program_fingerprint(&with_grown), fp);
        let diff = ProgramDiff::between(&p, &with_grown);
        assert!(diff.regions_changed);
        assert!(diff.changed_blocks.is_empty());
        assert!(!diff.is_identical());
    }

    #[test]
    fn diff_reports_added_and_removed_blocks() {
        let p = full_coverage_program();
        let mut blocks = p.blocks().to_vec();
        let extra = BasicBlock {
            id: BlockId::from_raw(blocks.len() as u32),
            name: Some("extra".to_string()),
            insts: vec![Inst::Nop],
            term: Terminator::Return,
        };
        blocks.push(extra);
        let grown = Program::new(p.name(), p.regions().to_vec(), blocks, p.entry()).unwrap();
        let diff = ProgramDiff::between(&p, &grown);
        assert_eq!(diff.added_blocks, 1);
        assert_eq!(diff.removed_blocks, 0);
        assert!(!diff.is_identical());
        let reverse = ProgramDiff::between(&grown, &p);
        assert_eq!(reverse.added_blocks, 0);
        assert_eq!(reverse.removed_blocks, 1);
        // Fingerprint inequality and diff non-identity agree.
        assert_ne!(program_fingerprint(&p), program_fingerprint(&grown));
    }

    /// Applies a permutation to a program's block table: `perm[i]` is the
    /// new index of old block `i`.  Successor references and the entry
    /// index follow, so the result is the *same* program merely reordered.
    fn permuted(p: &Program, perm: &[usize]) -> Program {
        let n = p.blocks().len();
        assert_eq!(perm.len(), n);
        let mut placed: Vec<Option<BasicBlock>> = vec![None; n];
        for (i, block) in p.blocks().iter().enumerate() {
            let mut moved = block.clone();
            moved.id = BlockId::from_raw(perm[i] as u32);
            match &mut moved.term {
                Terminator::Jump(t) => *t = BlockId::from_raw(perm[t.index()] as u32),
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    *then_bb = BlockId::from_raw(perm[then_bb.index()] as u32);
                    *else_bb = BlockId::from_raw(perm[else_bb.index()] as u32);
                }
                Terminator::Return => {}
            }
            placed[perm[i]] = Some(moved);
        }
        let blocks = placed.into_iter().map(Option::unwrap).collect();
        let entry = BlockId::from_raw(perm[p.entry().index()] as u32);
        Program::new(p.name(), p.regions().to_vec(), blocks, entry).unwrap()
    }

    #[test]
    fn pure_reorder_is_reported_as_moves_not_changes() {
        let p = full_coverage_program();
        // Rotate every block except the entry one position to the right.
        let n = p.blocks().len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm[1..].rotate_right(1);
        let reordered = permuted(&p, &perm);

        let diff = ProgramDiff::between(&p, &reordered);
        assert!(
            diff.changed_blocks.is_empty(),
            "a pure reorder is not an edit: {:?}",
            diff.changed_blocks
        );
        assert_eq!(diff.moved_blocks.len(), n - 1);
        assert!(!diff.entry_changed);
        assert_eq!(diff.added_blocks, 0);
        assert_eq!(diff.removed_blocks, 0);
        // Still not *identical*: block order is structure (the fingerprint
        // differs), it just is not a content change.
        assert!(!diff.is_identical());
        assert_ne!(program_fingerprint(&p), program_fingerprint(&reordered));
    }

    #[test]
    fn random_permutations_never_misreport_changed_blocks() {
        let p = full_coverage_program();
        let n = p.blocks().len();
        // Deterministic LCG (Numerical Recipes constants): the suite must
        // not flake, only cover.
        let mut state: u64 = 0x5eed_cafe_f00d_1234;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..64 {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, next() % (i + 1));
            }
            let reordered = permuted(&p, &perm);
            let diff = ProgramDiff::between(&p, &reordered);
            assert!(
                diff.changed_blocks.is_empty(),
                "permutation {perm:?} misreported as edits: {:?}",
                diff.changed_blocks
            );
            let expected_moved: Vec<BlockId> = {
                let mut moved: Vec<usize> = (0..n).filter(|&i| perm[i] != i).map(|i| perm[i]).collect();
                moved.sort_unstable();
                moved.into_iter().map(|j| BlockId::from_raw(j as u32)).collect()
            };
            assert_eq!(diff.moved_blocks, expected_moved, "permutation {perm:?}");
            assert_eq!(diff.entry_changed, perm[p.entry().index()] != p.entry().index());
            let identity = perm.iter().enumerate().all(|(i, &j)| i == j);
            assert_eq!(diff.is_identical(), identity, "permutation {perm:?}");
            assert_eq!(
                program_fingerprint(&p) == program_fingerprint(&reordered),
                identity
            );
        }
    }

    #[test]
    fn reorder_plus_edit_localises_to_the_edited_block() {
        let p = full_coverage_program();
        let n = p.blocks().len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm[1..].rotate_left(1);
        let reordered = permuted(&p, &perm);
        // Edit the block that ended up at index 3 (an in-place content
        // change on top of the reorder).
        let edited = with_block(&reordered, 3, |b| b.insts.push(Inst::Nop));
        let diff = ProgramDiff::between(&p, &edited);
        assert_eq!(
            diff.changed_blocks,
            vec![BlockId::from_raw(3)],
            "only the edited block is a content change"
        );
        assert!(!diff.moved_blocks.contains(&BlockId::from_raw(3)));
        assert!(!diff.is_identical());
    }

    #[test]
    fn diff_identity_matches_fingerprint_equality() {
        let p = full_coverage_program();
        let same = full_coverage_program();
        let diff = ProgramDiff::between(&p, &same);
        assert!(diff.is_identical());
        assert_eq!(diff.changed_blocks, Vec::<BlockId>::new());
        assert_eq!(program_fingerprint(&p), program_fingerprint(&same));
    }

    #[test]
    fn combined_fingerprints_are_ordered_tagged_and_stable() {
        let a = Fingerprint(1);
        let b = Fingerprint(2);
        let ab = combined_fingerprint("panel", [a, b]);
        // Deterministic across calls (and, because the core is the frozen
        // FNV encoding, across processes).
        assert_eq!(combined_fingerprint("panel", [a, b]), ab);
        // Order, tag and element set all matter.
        assert_ne!(combined_fingerprint("panel", [b, a]), ab);
        assert_ne!(combined_fingerprint("other", [a, b]), ab);
        assert_ne!(combined_fingerprint("panel", [a]), ab);
        assert_ne!(combined_fingerprint("panel", []), ab);
        // The separator keeps adjacent parts from aliasing the tag bytes.
        assert_ne!(
            combined_fingerprint("x", [a]),
            combined_fingerprint("", [Fingerprint(u64::from(b'x')), a])
        );
    }
}
