//! Deterministic accounting of owned heap memory.
//!
//! Long-lived sessions (`spec_core::incremental::SessionCache`, the
//! `specan serve` process) need to know how big their prepared artifacts
//! are to enforce a byte budget.  [`HeapSize`] is that accounting trait:
//! every crate of the prepared-artifact stack implements it for the types
//! a session keeps alive, and the session sums the estimates to decide
//! what to evict.
//!
//! Two properties matter more than byte-perfect precision:
//!
//! * **Determinism.**  Estimates are functions of *lengths*, never of
//!   capacities or allocator behaviour, so two processes holding equal
//!   values account equal sizes — which is what lets eviction tests
//!   reconcile counters across runs and machines.
//! * **Monotonicity.**  Growing a collection grows its estimate, so a
//!   budget-driven evictor always has something to reclaim.
//!
//! The estimates deliberately ignore allocator slack, hash-table control
//! bytes and tree-node overhead; they under-report true RSS by a modest
//! constant factor.  Budgets are tuning knobs, not hard `malloc` caps, and
//! the docs of `--max-session-bytes` say so.
//!
//! Shared values (`Arc`) are counted in full by every owner.  A session
//! that adopted an artifact from a predecessor therefore double-counts it
//! briefly; that errs on the safe (evict sooner) side.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::fingerprint::Fingerprint;
use crate::ids::{BlockId, RegionId};
use crate::inst::{Condition, Inst, MemRef, Terminator};
use crate::memory::MemoryRegion;
use crate::program::{BasicBlock, Program};
use crate::transform::{UnrollOptions, UnrollReport};

/// Estimated bytes of heap memory owned by a value.
pub trait HeapSize {
    /// Heap bytes owned by `self`, **excluding** `size_of::<Self>()`
    /// itself (the inline part is the owner's business).  Deterministic:
    /// derived from lengths, never from capacities.
    fn heap_size(&self) -> usize;

    /// The value's inline size plus everything it owns on the heap.
    fn total_size(&self) -> usize {
        std::mem::size_of_val(self) + self.heap_size()
    }
}

/// Implements [`HeapSize`] as zero for types that own no heap memory.
#[macro_export]
macro_rules! zero_heap_size {
    ($($ty:ty),* $(,)?) => {
        $(impl $crate::heap::HeapSize for $ty {
            fn heap_size(&self) -> usize {
                0
            }
        })*
    };
}

zero_heap_size!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    bool,
    BlockId,
    RegionId,
    MemRef,
    Inst,
    UnrollOptions,
    UnrollReport,
    Fingerprint,
);

macro_rules! tuple_heap_size {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(impl<$($name: HeapSize),+> HeapSize for ($($name,)+) {
            fn heap_size(&self) -> usize {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                0 $(+ $name.heap_size())+
            }
        })+
    };
}

tuple_heap_size!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.len()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_size)
    }
}

impl<T: HeapSize> HeapSize for Arc<T> {
    /// The pointee is counted in full by every owner (see module docs).
    fn heap_size(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_size()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for HashMap<K, V> {
    fn heap_size(&self) -> usize {
        self.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>())
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<K: HeapSize, V: HeapSize> HeapSize for BTreeMap<K, V> {
    fn heap_size(&self) -> usize {
        self.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>())
            + self
                .iter()
                .map(|(k, v)| k.heap_size() + v.heap_size())
                .sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for HashSet<T> {
    fn heap_size(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_size).sum::<usize>()
    }
}

impl HeapSize for Condition {
    fn heap_size(&self) -> usize {
        self.depends_on.heap_size()
    }
}

impl HeapSize for Terminator {
    fn heap_size(&self) -> usize {
        match self {
            Terminator::Branch { cond, .. } => cond.heap_size(),
            Terminator::Jump(_) | Terminator::Return => 0,
        }
    }
}

impl HeapSize for MemoryRegion {
    fn heap_size(&self) -> usize {
        self.name.heap_size()
    }
}

impl HeapSize for BasicBlock {
    fn heap_size(&self) -> usize {
        self.name.heap_size() + self.insts.heap_size() + self.term.heap_size()
    }
}

impl HeapSize for Program {
    fn heap_size(&self) -> usize {
        self.name().len()
            + self
                .regions()
                .iter()
                .map(HeapSize::total_size)
                .sum::<usize>()
            + self
                .blocks()
                .iter()
                .map(HeapSize::total_size)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::IndexExpr;

    #[test]
    fn strings_and_vecs_count_lengths() {
        assert_eq!("abc".to_string().heap_size(), 3);
        assert_eq!(vec![1u64, 2, 3].heap_size(), 24);
        let nested = vec!["ab".to_string(), "c".to_string()];
        assert_eq!(
            nested.heap_size(),
            2 * std::mem::size_of::<String>() + 3,
            "element inline sizes plus their heap"
        );
    }

    #[test]
    fn estimates_are_deterministic_and_monotone() {
        let build = |loads: u64| {
            let mut b = ProgramBuilder::new("sizer");
            let t = b.region("t", 256, false);
            let entry = b.entry_block("entry");
            for i in 0..loads {
                b.load(entry, t, IndexExpr::Const(i % 4 * 64));
            }
            b.ret(entry);
            b.finish().unwrap()
        };
        let small = build(2);
        assert_eq!(
            small.heap_size(),
            build(2).heap_size(),
            "equal programs account equal sizes"
        );
        assert!(
            build(20).heap_size() > small.heap_size(),
            "more instructions, more bytes"
        );
        assert!(small.heap_size() > 0);
    }

    #[test]
    fn maps_count_entries_and_their_heap() {
        let mut map: HashMap<u32, String> = HashMap::new();
        assert_eq!(map.heap_size(), 0);
        map.insert(1, "abcd".to_string());
        assert_eq!(
            map.heap_size(),
            std::mem::size_of::<u32>() + std::mem::size_of::<String>() + 4
        );
    }
}
