//! Strongly-typed identifiers for IR entities.
//!
//! Each identifier is a thin newtype over `u32` ([C-NEWTYPE]).  They are
//! plain indices into the owning [`crate::Program`]'s vectors and are only
//! meaningful relative to the program that created them.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::MemoryRegion`] within a program.
    RegionId,
    "r"
);
define_id!(
    /// Identifier of a [`crate::BasicBlock`] within a program.
    BlockId,
    "bb"
);
define_id!(
    /// Identifier of a single instruction, assigned when a program is
    /// flattened to instruction granularity (see `spec-vcfg`).
    InstId,
    "i"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let id = BlockId::from_raw(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "bb7");
        assert_eq!(format!("{id:?}"), "bb7");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(RegionId::from_raw(1) < RegionId::from_raw(2));
        assert!(InstId::from_raw(0) < InstId::from_raw(10));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: BlockId and RegionId are different types.
        fn takes_block(_: BlockId) {}
        takes_block(BlockId::from_raw(0));
    }
}
