//! Instructions, memory references, branch conditions and terminators.

use crate::ids::{BlockId, RegionId};

/// How the byte offset of a memory access is determined.
///
/// The abstract analysis only distinguishes *statically known* offsets
/// ([`IndexExpr::Const`]) from *statically unknown* ones (everything else);
/// the concrete simulator additionally needs to know how to resolve the
/// offset at run time, and the side-channel detector needs to know whether
/// the offset is derived from secret data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexExpr {
    /// A statically known byte offset into the region.
    Const(u64),
    /// Offset derived from a loop counter: the simulator resolves it to
    /// `iteration * stride` (modulo the region size), where `iteration`
    /// counts executions of the enclosing basic block.
    LoopIndexed {
        /// Bytes advanced per iteration.
        stride: u64,
    },
    /// Offset derived from public, attacker-controlled input.
    Input {
        /// Bytes advanced per unit of input value.
        stride: u64,
    },
    /// Offset derived from secret data (a key byte, a password character).
    Secret {
        /// Bytes advanced per unit of secret value.
        stride: u64,
    },
}

impl IndexExpr {
    /// Convenience constructor for a secret-derived index.
    pub fn secret(stride: u64) -> Self {
        IndexExpr::Secret { stride }
    }

    /// Convenience constructor for an input-derived index.
    pub fn input(stride: u64) -> Self {
        IndexExpr::Input { stride }
    }

    /// Convenience constructor for a loop-counter-derived index.
    pub fn loop_indexed(stride: u64) -> Self {
        IndexExpr::LoopIndexed { stride }
    }

    /// Returns `true` if the offset is statically known.
    pub fn is_static(&self) -> bool {
        matches!(self, IndexExpr::Const(_))
    }

    /// Returns `true` if the offset depends on secret data.
    pub fn is_secret_dependent(&self) -> bool {
        matches!(self, IndexExpr::Secret { .. })
    }
}

/// A reference to memory: a region plus an offset expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The region being accessed.
    pub region: RegionId,
    /// How the offset within the region is determined.
    pub index: IndexExpr,
}

impl MemRef {
    /// Creates a memory reference.
    pub fn new(region: RegionId, index: IndexExpr) -> Self {
        Self { region, index }
    }

    /// Reference to a statically known offset.
    pub fn at(region: RegionId, offset: u64) -> Self {
        Self::new(region, IndexExpr::Const(offset))
    }
}

/// A single (straight-line) instruction.
///
/// Only memory behaviour and latency are modelled; arithmetic is abstracted
/// into [`Inst::Compute`] because it has no effect on the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Read from memory.
    Load(MemRef),
    /// Write to memory (allocate-on-write: same cache effect as a load).
    Store(MemRef),
    /// Register-only computation taking `latency` cycles; no memory access.
    Compute {
        /// Execution latency in cycles (used by the concrete simulator).
        latency: u32,
    },
    /// No-op (placeholder / padding instruction).
    Nop,
}

impl Inst {
    /// The memory reference this instruction accesses, if any.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self {
            Inst::Load(m) | Inst::Store(m) => Some(*m),
            Inst::Compute { .. } | Inst::Nop => None,
        }
    }

    /// Returns `true` if the instruction accesses memory.
    pub fn accesses_memory(&self) -> bool {
        self.mem_ref().is_some()
    }
}

/// Concrete semantics of a branch condition, used only by the simulator and
/// by the loop unroller.  The abstract analysis treats every branch as able
/// to go either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchSemantics {
    /// A counted loop back-edge test: the *then* target is taken for the
    /// first `trip_count` evaluations at this branch site, after which the
    /// *else* target is taken.
    Loop {
        /// Number of iterations for which the branch stays in the loop.
        trip_count: u64,
    },
    /// The outcome is the given bit of the public input value.
    InputBit {
        /// Bit position of the public input that decides the branch.
        bit: u32,
    },
    /// The outcome is the given bit of the secret value.
    SecretBit {
        /// Bit position of the secret that decides the branch.
        bit: u32,
    },
    /// The branch always evaluates to the given constant.
    Const(bool),
}

/// A branch condition: which memory must be read to evaluate it, plus its
/// concrete semantics for simulation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Condition {
    /// Memory locations that must be loaded to resolve the condition.
    ///
    /// If any of them misses in the cache the processor speculates across
    /// the branch with the *miss* window `b_m`; if all of them are
    /// guaranteed hits, the shorter *hit* window `b_h` applies (paper,
    /// Section 6.2).  An empty list means the condition is register-only and
    /// resolves immediately (no speculation).
    pub depends_on: Vec<MemRef>,
    /// Concrete outcome semantics, used by the simulator and the unroller.
    pub semantics: BranchSemantics,
}

impl Condition {
    /// A condition that depends on the given memory locations.
    pub fn new(depends_on: Vec<MemRef>, semantics: BranchSemantics) -> Self {
        Self {
            depends_on,
            semantics,
        }
    }

    /// A register-only condition (never triggers speculation in our model).
    pub fn register_only(semantics: BranchSemantics) -> Self {
        Self {
            depends_on: Vec::new(),
            semantics,
        }
    }

    /// Returns `true` if evaluating the condition requires reading memory.
    pub fn reads_memory(&self) -> bool {
        !self.depends_on.is_empty()
    }

    /// Returns `true` if the branch outcome depends on secret data, either
    /// because its semantics read a secret bit or because it reads a region
    /// whose contents are secret.
    pub fn is_secret_dependent(&self, secret_regions: &[RegionId]) -> bool {
        matches!(self.semantics, BranchSemantics::SecretBit { .. })
            || self
                .depends_on
                .iter()
                .any(|m| secret_regions.contains(&m.region) || m.index.is_secret_dependent())
    }
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// The branch condition.
        cond: Condition,
        /// Successor when the condition evaluates to true.
        then_bb: BlockId,
        /// Successor when the condition evaluates to false.
        else_bb: BlockId,
    },
    /// Function return / program exit.
    Return,
}

impl Terminator {
    /// Successor blocks of this terminator, in evaluation order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => Vec::new(),
        }
    }

    /// Returns the branch condition if this is a conditional branch.
    pub fn condition(&self) -> Option<&Condition> {
        match self {
            Terminator::Branch { cond, .. } => Some(cond),
            _ => None,
        }
    }

    /// Rewrites successor block ids through `map`.
    pub fn map_successors(&mut self, mut map: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(t) => *t = map(*t),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            Terminator::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RegionId {
        RegionId::from_raw(n)
    }

    #[test]
    fn index_expr_classification() {
        assert!(IndexExpr::Const(0).is_static());
        assert!(!IndexExpr::loop_indexed(4).is_static());
        assert!(IndexExpr::secret(1).is_secret_dependent());
        assert!(!IndexExpr::input(1).is_secret_dependent());
    }

    #[test]
    fn inst_mem_ref() {
        let m = MemRef::at(r(0), 64);
        assert_eq!(Inst::Load(m).mem_ref(), Some(m));
        assert_eq!(Inst::Store(m).mem_ref(), Some(m));
        assert_eq!(Inst::Compute { latency: 1 }.mem_ref(), None);
        assert!(!Inst::Nop.accesses_memory());
    }

    #[test]
    fn terminator_successors() {
        let jump = Terminator::Jump(BlockId::from_raw(3));
        assert_eq!(jump.successors(), vec![BlockId::from_raw(3)]);

        let branch = Terminator::Branch {
            cond: Condition::register_only(BranchSemantics::Const(true)),
            then_bb: BlockId::from_raw(1),
            else_bb: BlockId::from_raw(2),
        };
        assert_eq!(
            branch.successors(),
            vec![BlockId::from_raw(1), BlockId::from_raw(2)]
        );
        assert!(Terminator::Return.successors().is_empty());
    }

    #[test]
    fn map_successors_rewrites_targets() {
        let mut t = Terminator::Branch {
            cond: Condition::register_only(BranchSemantics::Const(false)),
            then_bb: BlockId::from_raw(1),
            else_bb: BlockId::from_raw(2),
        };
        t.map_successors(|b| BlockId::from_raw(b.index() as u32 + 10));
        assert_eq!(
            t.successors(),
            vec![BlockId::from_raw(11), BlockId::from_raw(12)]
        );
    }

    #[test]
    fn condition_secret_dependence() {
        let secret_regions = vec![r(5)];
        let c1 = Condition::new(
            vec![MemRef::at(r(5), 0)],
            BranchSemantics::InputBit { bit: 0 },
        );
        assert!(c1.is_secret_dependent(&secret_regions));

        let c2 = Condition::new(
            vec![MemRef::at(r(1), 0)],
            BranchSemantics::InputBit { bit: 0 },
        );
        assert!(!c2.is_secret_dependent(&secret_regions));

        let c3 = Condition::register_only(BranchSemantics::SecretBit { bit: 3 });
        assert!(c3.is_secret_dependent(&[]));

        let c4 = Condition::new(
            vec![MemRef::new(r(1), IndexExpr::secret(1))],
            BranchSemantics::Const(true),
        );
        assert!(c4.is_secret_dependent(&[]));
    }

    #[test]
    fn condition_reads_memory() {
        assert!(!Condition::register_only(BranchSemantics::Const(true)).reads_memory());
        assert!(
            Condition::new(vec![MemRef::at(r(0), 0)], BranchSemantics::Const(true)).reads_memory()
        );
    }
}
