//! # spec-ir
//!
//! A small imperative intermediate representation used as the substrate for
//! the speculative cache analysis described in *Abstract Interpretation under
//! Speculative Execution* (Wu & Wang, PLDI 2019).
//!
//! The analysis in that paper consumes only three facts about a program:
//!
//! 1. its control-flow structure (basic blocks, conditional branches, loops),
//! 2. the sequence of memory accesses each block performs, and
//! 3. which memory locations a branch condition depends on (because that is
//!    what decides whether a processor speculates across the branch, and for
//!    how long).
//!
//! [`Program`] captures exactly this information.  Programs are built either
//! with the [`builder::ProgramBuilder`] DSL or parsed from the textual format
//! implemented in [`text`].
//!
//! ## Example
//!
//! ```rust
//! use spec_ir::builder::ProgramBuilder;
//! use spec_ir::{IndexExpr, BranchSemantics};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let table = b.region("table", 256, false);
//! let key = b.secret_region("key", 8);
//!
//! let entry = b.entry_block("entry");
//! b.load(entry, key, IndexExpr::Const(0));
//! b.load(entry, table, IndexExpr::secret(1));
//! b.ret(entry);
//!
//! let program = b.finish().expect("valid program");
//! assert_eq!(program.blocks().len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod display;
pub mod error;
pub mod fingerprint;
pub mod heap;
pub mod ids;
pub mod inst;
pub mod loops;
pub mod memory;
pub mod program;
pub mod text;
pub mod transform;

pub use builder::ProgramBuilder;
pub use cfg::Cfg;
pub use error::{IrError, IrResult};
pub use fingerprint::{program_fingerprint, Fingerprint, ProgramDiff};
pub use heap::HeapSize;
pub use ids::{BlockId, InstId, RegionId};
pub use inst::{BranchSemantics, Condition, IndexExpr, Inst, MemRef, Terminator};
pub use loops::{Loop, LoopForest};
pub use memory::MemoryRegion;
pub use program::{BasicBlock, Program};
