//! Natural-loop detection.
//!
//! Loops matter to the analysis in two ways (paper, Section 6.3):
//!
//! * loops with a statically known trip count are fully unrolled before the
//!   analysis for precision (see [`crate::transform::unroll_counted_loops`]);
//! * remaining loops are handled by join/widening at their headers, and the
//!   number of fixed-point iterations over them is reported in Table 5/6.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::ids::BlockId;
use crate::inst::{BranchSemantics, Terminator};
use crate::program::Program;

/// A single natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks belonging to the loop (including the header).
    pub body: BTreeSet<BlockId>,
    /// Trip count if the header's branch carries
    /// [`BranchSemantics::Loop`] semantics.
    pub trip_count: Option<u64>,
}

impl Loop {
    /// Returns `true` if `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.contains(&block)
    }

    /// Number of blocks in the loop body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Returns `true` if the body is empty (never the case for detected loops).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// All natural loops of a program.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects the natural loops of `program`.
    ///
    /// A back edge is an edge `latch -> header` where `header` dominates
    /// `latch`; the loop body is every block that can reach the latch
    /// without passing through the header.
    pub fn find(program: &Program, cfg: &Cfg) -> Self {
        let mut loops: Vec<Loop> = Vec::new();
        for block in program.blocks() {
            if !cfg.is_reachable(block.id) {
                continue;
            }
            for succ in cfg.successors(block.id) {
                if cfg.dominates(*succ, block.id) {
                    // back edge block.id -> succ
                    let header = *succ;
                    let latch = block.id;
                    let body = natural_loop_body(cfg, header, latch);
                    if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                        existing.latches.push(latch);
                        existing.body.extend(body);
                    } else {
                        let trip_count = header_trip_count(program, header);
                        loops.push(Loop {
                            header,
                            latches: vec![latch],
                            body,
                            trip_count,
                        });
                    }
                }
            }
        }
        loops.sort_by_key(|l| l.header);
        Self { loops }
    }

    /// The detected loops, ordered by header id.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Returns `true` if the program has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The innermost loop containing `block`, if any (smallest body).
    pub fn innermost_containing(&self, block: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(block))
            .min_by_key(|l| l.len())
    }

    /// Returns `true` if `block` is a loop header.
    pub fn is_header(&self, block: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == block)
    }
}

/// Blocks of the natural loop defined by the back edge `latch -> header`.
fn natural_loop_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> BTreeSet<BlockId> {
    let mut body = BTreeSet::new();
    body.insert(header);
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if body.insert(b) {
            for p in cfg.predecessors(b) {
                stack.push(*p);
            }
        }
    }
    body
}

/// Trip count declared on the header's branch, if any.
fn header_trip_count(program: &Program, header: BlockId) -> Option<u64> {
    match &program.block(header).term {
        Terminator::Branch { cond, .. } => match cond.semantics {
            BranchSemantics::Loop { trip_count } => Some(trip_count),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BranchSemantics, Condition, IndexExpr};

    fn counted_loop_program(trip: u64) -> (Program, BlockId, BlockId) {
        let mut b = ProgramBuilder::new("loop");
        let t = b.region("t", 256, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, trip, body, exit);
        b.load(body, t, IndexExpr::loop_indexed(64));
        b.jump(body, header);
        b.ret(exit);
        (b.finish().unwrap(), header, body)
    }

    #[test]
    fn finds_counted_loop_with_trip_count() {
        let (p, header, body) = counted_loop_program(30);
        let cfg = Cfg::new(&p);
        let forest = LoopForest::find(&p, &cfg);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches, vec![body]);
        assert_eq!(l.trip_count, Some(30));
        assert!(l.contains(header));
        assert!(l.contains(body));
        assert_eq!(l.len(), 2);
        assert!(forest.is_header(header));
        assert!(!forest.is_header(body));
    }

    #[test]
    fn straight_line_program_has_no_loops() {
        let mut b = ProgramBuilder::new("straight");
        let entry = b.entry_block("entry");
        b.ret(entry);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        assert!(LoopForest::find(&p, &cfg).is_empty());
    }

    #[test]
    fn nested_loops_are_both_found() {
        let mut b = ProgramBuilder::new("nested");
        let entry = b.entry_block("entry");
        let outer_h = b.block("outer_h");
        let inner_h = b.block("inner_h");
        let inner_body = b.block("inner_body");
        let outer_latch = b.block("outer_latch");
        let exit = b.block("exit");
        b.jump(entry, outer_h);
        b.loop_branch(outer_h, 4, inner_h, exit);
        b.loop_branch(inner_h, 8, inner_body, outer_latch);
        b.jump(inner_body, inner_h);
        b.jump(outer_latch, outer_h);
        b.ret(exit);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        let forest = LoopForest::find(&p, &cfg);
        assert_eq!(forest.len(), 2);
        let inner = forest.innermost_containing(inner_body).unwrap();
        assert_eq!(inner.header, inner_h);
        let outer = forest.innermost_containing(outer_latch).unwrap();
        assert_eq!(outer.header, outer_h);
        // inner loop is nested in outer: outer contains inner header.
        let outer_loop = forest.loops().iter().find(|l| l.header == outer_h).unwrap();
        assert!(outer_loop.contains(inner_h));
        assert!(outer_loop.contains(inner_body));
    }

    #[test]
    fn data_dependent_loop_has_unknown_trip_count() {
        let mut b = ProgramBuilder::new("while");
        let flag = b.region("flag", 8, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.branch(
            header,
            Condition::new(
                vec![crate::inst::MemRef::at(flag, 0)],
                BranchSemantics::InputBit { bit: 0 },
            ),
            body,
            exit,
        );
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        let forest = LoopForest::find(&p, &cfg);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.loops()[0].trip_count, None);
    }

    #[test]
    fn multiple_latches_merge_into_one_loop() {
        // header -> {a, b}; a -> header; b -> header (continue in two ways)
        let mut b = ProgramBuilder::new("two-latches");
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let arm_a = b.block("arm_a");
        let arm_b = b.block("arm_b");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 5, arm_a, exit);
        b.branch(
            arm_a,
            Condition::register_only(BranchSemantics::Const(true)),
            header,
            arm_b,
        );
        b.jump(arm_b, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let cfg = Cfg::new(&p);
        let forest = LoopForest::find(&p, &cfg);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches.len(), 2);
        assert!(l.contains(arm_a) && l.contains(arm_b));
    }
}
