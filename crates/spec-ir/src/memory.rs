//! Named memory regions.
//!
//! A [`MemoryRegion`] is the unit of data the cache analysis reasons about:
//! a contiguous, named chunk of memory (a scalar variable, an array, a
//! lookup table, an input buffer).  Regions are later split into cache-line
//! sized *blocks* by `spec-cache`; the IR itself only records the byte size
//! and whether the region holds secret data.

/// A contiguous, named memory region declared by a [`crate::Program`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemoryRegion {
    /// Human-readable name (e.g. `"sbox"`, `"decis_levl"`).
    pub name: String,
    /// Size of the region in bytes.  Must be non-zero.
    pub size_bytes: u64,
    /// Whether the *contents* of this region are secret (a key, a password).
    ///
    /// Accesses indexed by secret data are marked on the access itself via
    /// [`crate::IndexExpr::Secret`]; this flag additionally taints the data
    /// stored in the region, which the side-channel detector uses to decide
    /// which branch conditions are secret-dependent.
    pub secret: bool,
}

impl MemoryRegion {
    /// Creates a public (non-secret) region.
    pub fn new(name: impl Into<String>, size_bytes: u64) -> Self {
        Self {
            name: name.into(),
            size_bytes,
            secret: false,
        }
    }

    /// Creates a region whose contents are secret.
    pub fn secret(name: impl Into<String>, size_bytes: u64) -> Self {
        Self {
            name: name.into(),
            size_bytes,
            secret: true,
        }
    }

    /// Number of cache blocks this region spans for the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn block_count(&self, block_size: u64) -> u64 {
        assert!(block_size > 0, "block size must be non-zero");
        self.size_bytes.div_ceil(block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_rounds_up() {
        let r = MemoryRegion::new("a", 65);
        assert_eq!(r.block_count(64), 2);
        assert_eq!(r.block_count(1), 65);
        let exact = MemoryRegion::new("b", 128);
        assert_eq!(exact.block_count(64), 2);
    }

    #[test]
    fn single_byte_region_occupies_one_block() {
        let r = MemoryRegion::new("p", 1);
        assert_eq!(r.block_count(64), 1);
    }

    #[test]
    fn secret_constructor_sets_flag() {
        let r = MemoryRegion::secret("key", 16);
        assert!(r.secret);
        assert!(!MemoryRegion::new("pub", 16).secret);
    }

    #[test]
    #[should_panic(expected = "block size must be non-zero")]
    fn zero_block_size_panics() {
        MemoryRegion::new("a", 64).block_count(0);
    }
}
