//! Programs and basic blocks.

use std::collections::HashSet;

use crate::error::{IrError, IrResult};
use crate::ids::{BlockId, RegionId};
use crate::inst::{Inst, MemRef, Terminator};
use crate::memory::MemoryRegion;

/// A basic block: a straight-line instruction sequence plus one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Identifier of this block within its program.
    pub id: BlockId,
    /// Optional human-readable label.
    pub name: Option<String>,
    /// Straight-line instructions executed in order.
    pub insts: Vec<Inst>,
    /// Control transfer performed after the instructions.
    pub term: Terminator,
}

impl BasicBlock {
    /// Memory references made by the block body (not the terminator).
    pub fn memory_refs(&self) -> impl Iterator<Item = MemRef> + '_ {
        self.insts.iter().filter_map(Inst::mem_ref)
    }

    /// Label if present, otherwise the block id rendered as text.
    pub fn label(&self) -> String {
        self.name.clone().unwrap_or_else(|| self.id.to_string())
    }
}

/// A whole program: memory regions plus a CFG of basic blocks.
///
/// Programs are usually created through [`crate::builder::ProgramBuilder`];
/// direct construction is possible but [`Program::validate`] should be called
/// before handing the program to an analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    name: String,
    regions: Vec<MemoryRegion>,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
}

impl Program {
    /// Assembles a program from parts and validates it.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if the program is structurally invalid (see
    /// [`Program::validate`]).
    pub fn new(
        name: impl Into<String>,
        regions: Vec<MemoryRegion>,
        blocks: Vec<BasicBlock>,
        entry: BlockId,
    ) -> IrResult<Self> {
        let p = Self {
            name: name.into(),
            regions,
            blocks,
            entry,
        };
        p.validate()?;
        Ok(p)
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared memory regions, indexed by [`RegionId`].
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Basic blocks, indexed by [`BlockId`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Looks up a region by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this program.
    pub fn region(&self, id: RegionId) -> &MemoryRegion {
        &self.regions[id.index()]
    }

    /// Looks up a region id by name.
    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegionId::from_raw(i as u32))
    }

    /// Ids of all regions whose contents are secret.
    pub fn secret_regions(&self) -> Vec<RegionId> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.secret)
            .map(|(i, _)| RegionId::from_raw(i as u32))
            .collect()
    }

    /// Total number of straight-line instructions across all blocks.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of conditional branches in the program.
    pub fn branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count()
    }

    /// Number of memory-accessing instructions in the program.
    pub fn memory_access_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.insts.iter().filter(|i| i.accesses_memory()).count())
            .sum()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// * [`IrError::EmptyProgram`] if there are no blocks.
    /// * [`IrError::UnknownBlock`] if a terminator targets a missing block or
    ///   the entry id is out of range.
    /// * [`IrError::UnknownRegion`] if an instruction or condition references
    ///   a missing region.
    /// * [`IrError::ZeroSizedRegion`] / [`IrError::DuplicateRegion`] for bad
    ///   region declarations.
    pub fn validate(&self) -> IrResult<()> {
        if self.blocks.is_empty() {
            return Err(IrError::EmptyProgram);
        }
        if self.entry.index() >= self.blocks.len() {
            return Err(IrError::UnknownBlock(self.entry));
        }
        let mut seen = HashSet::new();
        for region in &self.regions {
            if region.size_bytes == 0 {
                return Err(IrError::ZeroSizedRegion(region.name.clone()));
            }
            if !seen.insert(region.name.clone()) {
                return Err(IrError::DuplicateRegion(region.name.clone()));
            }
        }
        let check_ref = |m: &MemRef| -> IrResult<()> {
            if m.region.index() >= self.regions.len() {
                Err(IrError::UnknownRegion(m.region))
            } else {
                Ok(())
            }
        };
        for (i, block) in self.blocks.iter().enumerate() {
            debug_assert_eq!(block.id.index(), i, "block ids must be dense and in order");
            for inst in &block.insts {
                if let Some(m) = inst.mem_ref() {
                    check_ref(&m)?;
                }
            }
            for succ in block.term.successors() {
                if succ.index() >= self.blocks.len() {
                    return Err(IrError::UnknownBlock(succ));
                }
            }
            if let Some(cond) = block.term.condition() {
                for m in &cond.depends_on {
                    check_ref(m)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchSemantics, Condition, IndexExpr};

    fn block(id: u32, insts: Vec<Inst>, term: Terminator) -> BasicBlock {
        BasicBlock {
            id: BlockId::from_raw(id),
            name: None,
            insts,
            term,
        }
    }

    fn simple_program() -> Program {
        let regions = vec![MemoryRegion::new("a", 64), MemoryRegion::secret("k", 8)];
        let blocks = vec![
            block(
                0,
                vec![Inst::Load(MemRef::at(RegionId::from_raw(0), 0))],
                Terminator::Branch {
                    cond: Condition::new(
                        vec![MemRef::at(RegionId::from_raw(0), 0)],
                        BranchSemantics::Const(true),
                    ),
                    then_bb: BlockId::from_raw(1),
                    else_bb: BlockId::from_raw(2),
                },
            ),
            block(
                1,
                vec![Inst::Load(MemRef::new(
                    RegionId::from_raw(1),
                    IndexExpr::secret(1),
                ))],
                Terminator::Jump(BlockId::from_raw(2)),
            ),
            block(2, vec![Inst::Compute { latency: 1 }], Terminator::Return),
        ];
        Program::new("test", regions, blocks, BlockId::from_raw(0)).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = simple_program();
        assert_eq!(p.name(), "test");
        assert_eq!(p.blocks().len(), 3);
        assert_eq!(p.entry(), BlockId::from_raw(0));
        assert_eq!(p.instruction_count(), 3);
        assert_eq!(p.branch_count(), 1);
        assert_eq!(p.memory_access_count(), 2);
        assert_eq!(p.secret_regions(), vec![RegionId::from_raw(1)]);
        assert_eq!(p.region_by_name("a"), Some(RegionId::from_raw(0)));
        assert_eq!(p.region_by_name("missing"), None);
    }

    #[test]
    fn empty_program_is_rejected() {
        let err = Program::new("empty", vec![], vec![], BlockId::from_raw(0)).unwrap_err();
        assert_eq!(err, IrError::EmptyProgram);
    }

    #[test]
    fn dangling_block_reference_is_rejected() {
        let blocks = vec![block(0, vec![], Terminator::Jump(BlockId::from_raw(5)))];
        let err = Program::new("bad", vec![], blocks, BlockId::from_raw(0)).unwrap_err();
        assert_eq!(err, IrError::UnknownBlock(BlockId::from_raw(5)));
    }

    #[test]
    fn dangling_region_reference_is_rejected() {
        let blocks = vec![block(
            0,
            vec![Inst::Load(MemRef::at(RegionId::from_raw(9), 0))],
            Terminator::Return,
        )];
        let err = Program::new("bad", vec![], blocks, BlockId::from_raw(0)).unwrap_err();
        assert_eq!(err, IrError::UnknownRegion(RegionId::from_raw(9)));
    }

    #[test]
    fn zero_sized_and_duplicate_regions_are_rejected() {
        let blocks = vec![block(0, vec![], Terminator::Return)];
        let err = Program::new(
            "bad",
            vec![MemoryRegion::new("z", 0)],
            blocks.clone(),
            BlockId::from_raw(0),
        )
        .unwrap_err();
        assert_eq!(err, IrError::ZeroSizedRegion("z".into()));

        let err = Program::new(
            "bad",
            vec![MemoryRegion::new("a", 8), MemoryRegion::new("a", 8)],
            blocks,
            BlockId::from_raw(0),
        )
        .unwrap_err();
        assert_eq!(err, IrError::DuplicateRegion("a".into()));
    }

    #[test]
    fn out_of_range_entry_is_rejected() {
        let blocks = vec![block(0, vec![], Terminator::Return)];
        let err = Program::new("bad", vec![], blocks, BlockId::from_raw(7)).unwrap_err();
        assert_eq!(err, IrError::UnknownBlock(BlockId::from_raw(7)));
    }

    #[test]
    fn condition_region_references_are_validated() {
        let blocks = vec![
            block(
                0,
                vec![],
                Terminator::Branch {
                    cond: Condition::new(
                        vec![MemRef::at(RegionId::from_raw(3), 0)],
                        BranchSemantics::Const(true),
                    ),
                    then_bb: BlockId::from_raw(1),
                    else_bb: BlockId::from_raw(1),
                },
            ),
            block(1, vec![], Terminator::Return),
        ];
        let err = Program::new("bad", vec![], blocks, BlockId::from_raw(0)).unwrap_err();
        assert_eq!(err, IrError::UnknownRegion(RegionId::from_raw(3)));
    }

    #[test]
    fn block_label_falls_back_to_id() {
        let p = simple_program();
        assert_eq!(p.block(BlockId::from_raw(0)).label(), "bb0");
        let named = BasicBlock {
            id: BlockId::from_raw(0),
            name: Some("entry".into()),
            insts: vec![],
            term: Terminator::Return,
        };
        assert_eq!(named.label(), "entry");
    }
}
