//! Parser for the textual program format emitted by the [`Display`]
//! implementation of [`Program`] (see [`crate::display`]).
//!
//! The grammar is line-based:
//!
//! ```text
//! program <name>
//! region <name> <bytes>
//! secret_region <name> <bytes>
//! block <label> [entry]:
//!   load <region>[<index>]
//!   store <region>[<index>]
//!   compute <latency>
//!   nop
//!   jump <label>
//!   ret
//!   branch [mem(<ref>, ...)] <semantics> -> <then-label>, <else-label>
//! ```
//!
//! where `<index>` is `<n>`, `loop*<n>`, `input*<n>` or `secret*<n>` and
//! `<semantics>` is `loop(<n>)`, `input_bit(<n>)`, `secret_bit(<n>)` or
//! `const(true|false)`.  Lines starting with `#` and blank lines are ignored.

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::error::{IrError, IrResult};
use crate::ids::BlockId;
use crate::inst::{BranchSemantics, Condition, IndexExpr, Inst, MemRef};
use crate::program::Program;

/// Parses a program from its textual representation.
///
/// # Errors
///
/// Returns [`IrError::Parse`] describing the first offending line, or any
/// validation error raised when assembling the program.
pub fn parse_program(input: &str) -> IrResult<Program> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
}

/// A block body collected in the first parsing pass: source line, label,
/// instructions, terminator and whether it is the entry block.
type PendingBlock = (usize, String, Vec<Inst>, Option<PendingTerm>, bool);

#[derive(Debug)]
enum PendingTerm {
    Jump(String),
    Ret,
    Branch {
        refs: Vec<(String, IndexExpr)>,
        semantics: BranchSemantics,
        then_label: String,
        else_label: String,
    },
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let lines = input
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        Self { lines }
    }

    fn err(line: usize, message: impl Into<String>) -> IrError {
        IrError::Parse {
            line,
            message: message.into(),
        }
    }

    fn parse(self) -> IrResult<Program> {
        let mut iter = self.lines.into_iter().peekable();

        // Header.
        let (line, first) = iter.next().ok_or_else(|| Self::err(0, "empty input"))?;
        let name = first
            .strip_prefix("program ")
            .ok_or_else(|| Self::err(line, "expected `program <name>`"))?
            .trim()
            .to_string();
        let mut builder = ProgramBuilder::new(name);
        let mut regions: HashMap<String, crate::ids::RegionId> = HashMap::new();

        // Regions.
        while let Some((_, l)) = iter.peek() {
            if l.starts_with("region ") || l.starts_with("secret_region ") {
                let (line, l) = iter.next().expect("peeked");
                let secret = l.starts_with("secret_region ");
                let rest = l
                    .split_once(' ')
                    .map(|(_, r)| r)
                    .ok_or_else(|| Self::err(line, "malformed region declaration"))?;
                let mut parts = rest.split_whitespace();
                let rname = parts
                    .next()
                    .ok_or_else(|| Self::err(line, "missing region name"))?;
                let size: u64 = parts
                    .next()
                    .ok_or_else(|| Self::err(line, "missing region size"))?
                    .parse()
                    .map_err(|_| Self::err(line, "region size is not a number"))?;
                let id = builder.region(rname, size, secret);
                regions.insert(rname.to_string(), id);
            } else {
                break;
            }
        }

        // Blocks: first pass collects labels and bodies, second pass wires
        // terminators (labels may be forward references).
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        let mut bodies: Vec<PendingBlock> = Vec::new();

        let mut current: Option<PendingBlock> = None;
        for (line, l) in iter {
            if let Some(rest) = l.strip_prefix("block ") {
                if let Some(block) = current.take() {
                    bodies.push(block);
                }
                let header = rest
                    .strip_suffix(':')
                    .ok_or_else(|| Self::err(line, "block header must end with `:`"))?;
                let mut parts = header.split_whitespace();
                let label = parts
                    .next()
                    .ok_or_else(|| Self::err(line, "missing block label"))?
                    .to_string();
                let is_entry = parts.next() == Some("entry");
                current = Some((line, label, Vec::new(), None, is_entry));
            } else {
                let Some((_, _, insts, term, _)) = current.as_mut() else {
                    return Err(Self::err(line, "instruction outside of a block"));
                };
                if term.is_some() {
                    return Err(Self::err(line, "instruction after block terminator"));
                }
                if let Some(parsed_term) = Self::try_parse_terminator(line, l)? {
                    *term = Some(parsed_term);
                } else {
                    insts.push(Self::parse_inst(line, l, &regions)?);
                }
            }
        }
        if let Some(block) = current.take() {
            bodies.push(block);
        }

        // Allocate block ids.
        for (line, label, _, _, is_entry) in &bodies {
            if block_ids.contains_key(label) {
                return Err(Self::err(*line, format!("duplicate block label `{label}`")));
            }
            let id = if *is_entry {
                builder.entry_block(label.clone())
            } else {
                builder.block(label.clone())
            };
            block_ids.insert(label.clone(), id);
        }

        // Fill bodies and terminators.
        for (line, label, insts, term, _) in bodies {
            let id = block_ids[&label];
            for inst in insts {
                builder.push(id, inst);
            }
            let lookup = |lbl: &str| -> IrResult<BlockId> {
                block_ids
                    .get(lbl)
                    .copied()
                    .ok_or_else(|| Self::err(line, format!("unknown block label `{lbl}`")))
            };
            match term
                .ok_or_else(|| Self::err(line, format!("block `{label}` lacks a terminator")))?
            {
                PendingTerm::Jump(target) => {
                    builder.jump(id, lookup(&target)?);
                }
                PendingTerm::Ret => {
                    builder.ret(id);
                }
                PendingTerm::Branch {
                    refs,
                    semantics,
                    then_label,
                    else_label,
                } => {
                    let mut depends_on = Vec::new();
                    for (rname, index) in refs {
                        let region = regions.get(&rname).copied().ok_or_else(|| {
                            Self::err(line, format!("unknown region `{rname}` in condition"))
                        })?;
                        depends_on.push(MemRef::new(region, index));
                    }
                    builder.branch(
                        id,
                        Condition::new(depends_on, semantics),
                        lookup(&then_label)?,
                        lookup(&else_label)?,
                    );
                }
            }
        }
        builder.finish()
    }

    fn parse_inst(
        line: usize,
        l: &str,
        regions: &HashMap<String, crate::ids::RegionId>,
    ) -> IrResult<Inst> {
        if l == "nop" {
            return Ok(Inst::Nop);
        }
        if let Some(rest) = l.strip_prefix("compute ") {
            let latency = rest
                .trim()
                .parse()
                .map_err(|_| Self::err(line, "compute latency is not a number"))?;
            return Ok(Inst::Compute { latency });
        }
        if let Some(rest) = l.strip_prefix("load ") {
            let (rname, index) = Self::parse_ref(line, rest.trim())?;
            let region = regions
                .get(&rname)
                .copied()
                .ok_or_else(|| Self::err(line, format!("unknown region `{rname}`")))?;
            return Ok(Inst::Load(MemRef::new(region, index)));
        }
        if let Some(rest) = l.strip_prefix("store ") {
            let (rname, index) = Self::parse_ref(line, rest.trim())?;
            let region = regions
                .get(&rname)
                .copied()
                .ok_or_else(|| Self::err(line, format!("unknown region `{rname}`")))?;
            return Ok(Inst::Store(MemRef::new(region, index)));
        }
        Err(Self::err(line, format!("unrecognised instruction `{l}`")))
    }

    fn try_parse_terminator(line: usize, l: &str) -> IrResult<Option<PendingTerm>> {
        if l == "ret" {
            return Ok(Some(PendingTerm::Ret));
        }
        if let Some(rest) = l.strip_prefix("jump ") {
            return Ok(Some(PendingTerm::Jump(rest.trim().to_string())));
        }
        if let Some(rest) = l.strip_prefix("branch ") {
            let (cond_part, targets) = rest
                .split_once("->")
                .ok_or_else(|| Self::err(line, "branch lacks `->` targets"))?;
            let mut targets = targets.split(',').map(str::trim);
            let then_label = targets
                .next()
                .filter(|t| !t.is_empty())
                .ok_or_else(|| Self::err(line, "branch lacks then-target"))?
                .to_string();
            let else_label = targets
                .next()
                .filter(|t| !t.is_empty())
                .ok_or_else(|| Self::err(line, "branch lacks else-target"))?
                .to_string();

            let cond_part = cond_part.trim();
            let (refs, sem_text) = if let Some(rest) = cond_part.strip_prefix("mem(") {
                let close = rest
                    .find(')')
                    .ok_or_else(|| Self::err(line, "unterminated mem(...) clause"))?;
                let refs_text = &rest[..close];
                let mut refs = Vec::new();
                for piece in refs_text
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                {
                    refs.push(Self::parse_ref(line, piece)?);
                }
                (refs, rest[close + 1..].trim())
            } else {
                (Vec::new(), cond_part)
            };
            let semantics = Self::parse_semantics(line, sem_text)?;
            return Ok(Some(PendingTerm::Branch {
                refs,
                semantics,
                then_label,
                else_label,
            }));
        }
        Ok(None)
    }

    fn parse_semantics(line: usize, text: &str) -> IrResult<BranchSemantics> {
        let text = text.trim();
        let parse_arg = |prefix: &str| -> Option<&str> {
            text.strip_prefix(prefix).and_then(|r| r.strip_suffix(')'))
        };
        if let Some(arg) = parse_arg("loop(") {
            let trip_count = arg
                .parse()
                .map_err(|_| Self::err(line, "loop trip count is not a number"))?;
            return Ok(BranchSemantics::Loop { trip_count });
        }
        if let Some(arg) = parse_arg("input_bit(") {
            let bit = arg
                .parse()
                .map_err(|_| Self::err(line, "input bit is not a number"))?;
            return Ok(BranchSemantics::InputBit { bit });
        }
        if let Some(arg) = parse_arg("secret_bit(") {
            let bit = arg
                .parse()
                .map_err(|_| Self::err(line, "secret bit is not a number"))?;
            return Ok(BranchSemantics::SecretBit { bit });
        }
        if let Some(arg) = parse_arg("const(") {
            return match arg {
                "true" => Ok(BranchSemantics::Const(true)),
                "false" => Ok(BranchSemantics::Const(false)),
                _ => Err(Self::err(line, "const(...) takes true or false")),
            };
        }
        Err(Self::err(
            line,
            format!("unrecognised branch semantics `{text}`"),
        ))
    }

    /// Parses `name[index]` into a region name and index expression.
    fn parse_ref(line: usize, text: &str) -> IrResult<(String, IndexExpr)> {
        let open = text
            .find('[')
            .ok_or_else(|| Self::err(line, format!("memory reference `{text}` lacks `[`")))?;
        if !text.ends_with(']') {
            return Err(Self::err(
                line,
                format!("memory reference `{text}` lacks closing `]`"),
            ));
        }
        let name = text[..open].to_string();
        let idx = &text[open + 1..text.len() - 1];
        let index = if let Some(stride) = idx.strip_prefix("loop*") {
            IndexExpr::LoopIndexed {
                stride: stride
                    .parse()
                    .map_err(|_| Self::err(line, "loop stride is not a number"))?,
            }
        } else if let Some(stride) = idx.strip_prefix("input*") {
            IndexExpr::Input {
                stride: stride
                    .parse()
                    .map_err(|_| Self::err(line, "input stride is not a number"))?,
            }
        } else if let Some(stride) = idx.strip_prefix("secret*") {
            IndexExpr::Secret {
                stride: stride
                    .parse()
                    .map_err(|_| Self::err(line, "secret stride is not a number"))?,
            }
        } else {
            IndexExpr::Const(
                idx.parse()
                    .map_err(|_| Self::err(line, format!("offset `{idx}` is not a number")))?,
            )
        };
        Ok((name, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    const SAMPLE: &str = r#"
# A tiny program with one data-dependent branch.
program sample
region sbox 256
region p 8
secret_region key 8

block entry entry:
  load p[0]
  branch mem(p[0]) input_bit(0) -> taken, skipped

block taken:
  load sbox[secret*1]
  jump merge

block skipped:
  compute 2
  jump merge

block merge:
  nop
  ret
"#;

    #[test]
    fn parses_sample_program() {
        let p = parse_program(SAMPLE).unwrap();
        assert_eq!(p.name(), "sample");
        assert_eq!(p.regions().len(), 3);
        assert_eq!(p.blocks().len(), 4);
        assert_eq!(p.branch_count(), 1);
        assert_eq!(p.memory_access_count(), 2);
        assert!(p.region_by_name("key").is_some());
        assert_eq!(p.secret_regions().len(), 1);
    }

    #[test]
    fn roundtrips_through_display() {
        let p = parse_program(SAMPLE).unwrap();
        let text = p.to_string();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p.blocks().len(), p2.blocks().len());
        assert_eq!(p.regions(), p2.regions());
        assert_eq!(p.branch_count(), p2.branch_count());
        assert_eq!(p.memory_access_count(), p2.memory_access_count());
    }

    #[test]
    fn roundtrips_builder_programs() {
        let mut b = ProgramBuilder::new("built");
        let t = b.region("t", 640, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 10, body, exit);
        b.load(body, t, IndexExpr::loop_indexed(64));
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed.blocks().len(), 4);
        assert_eq!(reparsed.branch_count(), 1);
    }

    #[test]
    fn reports_unknown_region() {
        let err =
            parse_program("program x\nblock e entry:\n  load nothere[0]\n  ret\n").unwrap_err();
        match err {
            IrError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("nothere"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_missing_terminator() {
        let err = parse_program("program x\nblock e entry:\n  nop\n").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn reports_unknown_label() {
        let err = parse_program("program x\nblock e entry:\n  jump nowhere\n").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn reports_bad_semantics() {
        let err = parse_program(
            "program x\nblock e entry:\n  branch maybe(1) -> a, b\nblock a:\n  ret\nblock b:\n  ret\n",
        )
        .unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = parse_program("program x\nblock e entry:\n  ret\nblock e:\n  ret\n").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }

    #[test]
    fn rejects_instruction_outside_block() {
        let err = parse_program("program x\n  nop\n").unwrap_err();
        assert!(matches!(err, IrError::Parse { .. }));
    }
}
