//! Program transformations used before analysis.
//!
//! The paper fully unrolls loops whose iteration count is statically known
//! (Section 6.3: "loops with fixed iteration number will be fully unrolled;
//! only unresolved loops will be widened").  [`unroll_counted_loops`]
//! implements that transformation on the IR.

use crate::cfg::Cfg;
use crate::ids::BlockId;
use crate::inst::{BranchSemantics, IndexExpr, Inst, MemRef, Terminator};
use crate::loops::LoopForest;
use crate::program::{BasicBlock, Program};

/// Options controlling loop unrolling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UnrollOptions {
    /// Unrolling is abandoned for a loop if it would push the program past
    /// this many straight-line instructions.
    pub max_program_insts: usize,
    /// Loops with a trip count above this are not unrolled.
    pub max_trip_count: u64,
}

impl Default for UnrollOptions {
    fn default() -> Self {
        Self {
            max_program_insts: 200_000,
            max_trip_count: 4_096,
        }
    }
}

/// Statistics reported by [`unroll_counted_loops`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnrollReport {
    /// Number of loops that were fully unrolled.
    pub unrolled_loops: usize,
    /// Number of counted loops skipped because of the size budget.
    pub skipped_loops: usize,
}

/// Fully unrolls every *innermost* counted loop of `program`, repeatedly,
/// until no counted loop remains or the size budget is exhausted.
///
/// Loop-counter-indexed accesses ([`IndexExpr::LoopIndexed`]) inside the
/// unrolled body are concretised to constant offsets
/// `(iteration * stride) % region_size`, which is what makes the preload
/// loops of the paper's Figure 2 / Figure 10 precise for the must analysis.
///
/// Loops whose trip count is unknown (data-dependent `while` loops) are left
/// untouched; the analysis handles them by join/widening at the header.
pub fn unroll_counted_loops(program: &Program, options: UnrollOptions) -> (Program, UnrollReport) {
    let mut current = program.clone();
    let mut report = UnrollReport::default();
    // Iterate because unrolling an inner loop may expose the outer loop as
    // the new innermost counted loop.
    loop {
        let cfg = Cfg::new(&current);
        let forest = LoopForest::find(&current, &cfg);
        let candidate = forest
            .loops()
            .iter()
            .filter(|l| l.trip_count.is_some())
            // innermost first: no other loop header strictly inside the body
            .find(|l| {
                !forest
                    .loops()
                    .iter()
                    .any(|other| other.header != l.header && l.contains(other.header))
            })
            .cloned();
        let Some(lp) = candidate else { break };
        let trip = lp.trip_count.expect("filtered on counted loops");
        let body_insts: usize = lp.body.iter().map(|b| current.block(*b).insts.len()).sum();
        let projected = current.instruction_count() + body_insts * trip as usize;
        if trip > options.max_trip_count || projected > options.max_program_insts {
            report.skipped_loops += 1;
            // Mark the loop as uncounted so we do not consider it again.
            current = clear_trip_count(&current, lp.header);
            continue;
        }
        current = unroll_single_loop(&current, &lp, trip);
        report.unrolled_loops += 1;
    }
    (current, report)
}

/// Replaces the counted semantics of the branch at `header` with an
/// input-dependent one, which makes the loop "unresolved" for the unroller
/// while keeping its CFG structure intact.
fn clear_trip_count(program: &Program, header: BlockId) -> Program {
    let blocks = program
        .blocks()
        .iter()
        .map(|b| {
            let mut b = b.clone();
            if b.id == header {
                if let Terminator::Branch { cond, .. } = &mut b.term {
                    cond.semantics = BranchSemantics::InputBit { bit: 0 };
                }
            }
            b
        })
        .collect();
    Program::new(
        program.name(),
        program.regions().to_vec(),
        blocks,
        program.entry(),
    )
    .expect("clearing a trip count preserves validity")
}

/// Fully unrolls one counted loop.
fn unroll_single_loop(program: &Program, lp: &crate::loops::Loop, trip: u64) -> Program {
    let header = lp.header;
    let (loop_then, loop_exit) = match &program.block(header).term {
        Terminator::Branch {
            then_bb, else_bb, ..
        } => (*then_bb, *else_bb),
        _ => unreachable!("counted loop header must end in a branch"),
    };

    let old_blocks = program.blocks();
    let mut new_blocks: Vec<BasicBlock> = Vec::new();

    // Keep every block that is not part of the loop, with its original id.
    // Loop blocks are re-emitted once per iteration at fresh ids.
    // Pass 1: copy non-loop blocks verbatim (their ids stay dense because we
    // copy all of them first, in order, then append iteration copies).
    let mut id_of_old: Vec<Option<BlockId>> = vec![None; old_blocks.len()];
    for block in old_blocks {
        if lp.contains(block.id) {
            continue;
        }
        let new_id = BlockId::from_raw(new_blocks.len() as u32);
        id_of_old[block.id.index()] = Some(new_id);
        let mut copy = block.clone();
        copy.id = new_id;
        new_blocks.push(copy);
    }

    // Pass 2: emit `trip` copies of the loop body plus a final header copy.
    // copy_ids[k][old_block] = new id of that block in iteration k.
    let loop_blocks: Vec<BlockId> = lp.body.iter().copied().collect();
    let mut copy_ids: Vec<Vec<BlockId>> = Vec::with_capacity(trip as usize);
    for _k in 0..trip {
        let mut ids = Vec::with_capacity(loop_blocks.len());
        for _ in &loop_blocks {
            let id = BlockId::from_raw((new_blocks.len() + ids.len()) as u32);
            ids.push(id);
        }
        // Reserve slots (filled below) so ids stay consistent.
        for (i, old) in loop_blocks.iter().enumerate() {
            let src = program.block(*old);
            new_blocks.push(BasicBlock {
                id: ids[i],
                name: src.name.as_ref().map(|n| format!("{n}.it{_k}")),
                insts: Vec::new(),
                term: Terminator::Return, // placeholder, rewritten below
            });
        }
        copy_ids.push(ids);
    }
    // Final header copy: the iteration-count check that fails and exits.
    let final_header = BlockId::from_raw(new_blocks.len() as u32);
    new_blocks.push(BasicBlock {
        id: final_header,
        name: program
            .block(header)
            .name
            .as_ref()
            .map(|n| format!("{n}.exit_check")),
        insts: Vec::new(),
        term: Terminator::Return, // placeholder
    });

    let loop_index_of = |b: BlockId| loop_blocks.iter().position(|x| *x == b);

    // Helper to map an old target block id for iteration `k`.
    let map_target = |old: BlockId, k: u64| -> BlockId {
        if let Some(li) = loop_index_of(old) {
            if old == header {
                // A branch back to the header advances the iteration.
                if k + 1 < trip {
                    copy_ids[(k + 1) as usize][li]
                } else {
                    final_header
                }
            } else {
                copy_ids[k as usize][li]
            }
        } else {
            id_of_old[old.index()].expect("non-loop block was copied")
        }
    };

    // Entry edges into the loop (from outside) go to iteration 0's header,
    // or to the final check if the trip count is zero.
    let loop_entry_target = if trip > 0 {
        copy_ids[0][loop_index_of(header).expect("header is in loop body")]
    } else {
        final_header
    };

    // Rewrite the non-loop blocks' terminators.
    for block in new_blocks.iter_mut() {
        if block.insts.is_empty() && matches!(block.term, Terminator::Return) {
            continue; // placeholder loop copies, handled next
        }
        let old_id = old_blocks
            .iter()
            .find(|b| id_of_old[b.id.index()] == Some(block.id))
            .map(|b| b.id);
        if old_id.is_none() {
            continue;
        }
        block.term.map_successors(|t| {
            if lp.contains(t) {
                debug_assert_eq!(t, header, "loops are entered through their header");
                loop_entry_target
            } else {
                id_of_old[t.index()].expect("non-loop block was copied")
            }
        });
    }

    // Fill in the iteration copies.
    for k in 0..trip {
        for (li, old_id) in loop_blocks.iter().enumerate() {
            let src = program.block(*old_id);
            let new_id = copy_ids[k as usize][li];
            let insts = src
                .insts
                .iter()
                .map(|inst| concretize_inst(program, inst, k))
                .collect();
            let term = if *old_id == header {
                // Inside the unrolled range the loop condition is known to
                // continue: replace the branch with a jump into the body.
                Terminator::Jump(map_target(loop_then, k))
            } else {
                let mut t = src.term.clone();
                t.map_successors(|old| map_target(old, k));
                t
            };
            let slot = &mut new_blocks[new_id.index()];
            slot.insts = insts;
            slot.term = term;
        }
    }
    // The final header copy evaluates the (now false) condition and exits.
    {
        let src = program.block(header);
        let insts = src
            .insts
            .iter()
            .map(|inst| concretize_inst(program, inst, trip))
            .collect();
        let exit_target = if lp.contains(loop_exit) {
            // Degenerate loop whose exit is inside the body; keep iteration 0.
            map_target(loop_exit, 0)
        } else {
            id_of_old[loop_exit.index()].expect("exit block was copied")
        };
        let slot = &mut new_blocks[final_header.index()];
        slot.insts = insts;
        slot.term = Terminator::Jump(exit_target);
    }

    let entry = if lp.contains(program.entry()) {
        loop_entry_target
    } else {
        id_of_old[program.entry().index()].expect("entry was copied")
    };
    Program::new(
        program.name(),
        program.regions().to_vec(),
        new_blocks,
        entry,
    )
    .expect("unrolling preserves validity")
}

/// Concretises loop-indexed accesses for iteration `k`.
fn concretize_inst(program: &Program, inst: &Inst, k: u64) -> Inst {
    let fix = |m: MemRef| -> MemRef {
        match m.index {
            IndexExpr::LoopIndexed { stride } => {
                let size = program.region(m.region).size_bytes;
                MemRef::at(m.region, (k * stride) % size.max(1))
            }
            _ => m,
        }
    };
    match inst {
        Inst::Load(m) => Inst::Load(fix(*m)),
        Inst::Store(m) => Inst::Store(fix(*m)),
        other => *other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{BranchSemantics, Condition, IndexExpr};

    fn counted_loop(trip: u64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        let t = b.region("t", 64 * 8, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, trip, body, exit);
        b.load(body, t, IndexExpr::loop_indexed(64));
        b.jump(body, header);
        b.ret(exit);
        b.finish().unwrap()
    }

    #[test]
    fn unrolls_counted_loop_and_concretises_indices() {
        let p = counted_loop(4);
        let (unrolled, report) = unroll_counted_loops(&p, UnrollOptions::default());
        assert_eq!(report.unrolled_loops, 1);
        assert_eq!(report.skipped_loops, 0);
        // No loops remain.
        let cfg = Cfg::new(&unrolled);
        assert!(LoopForest::find(&unrolled, &cfg).is_empty());
        // Four concrete accesses at offsets 0, 64, 128, 192 exist.
        let mut offsets: Vec<u64> = unrolled
            .blocks()
            .iter()
            .flat_map(|b| b.memory_refs())
            .filter_map(|m| match m.index {
                IndexExpr::Const(o) => Some(o),
                _ => None,
            })
            .collect();
        offsets.sort_unstable();
        assert_eq!(offsets, vec![0, 64, 128, 192]);
        unrolled.validate().unwrap();
    }

    #[test]
    fn zero_trip_loop_unrolls_to_straight_line() {
        let p = counted_loop(0);
        let (unrolled, report) = unroll_counted_loops(&p, UnrollOptions::default());
        assert_eq!(report.unrolled_loops, 1);
        assert_eq!(unrolled.memory_access_count(), 0);
        let cfg = Cfg::new(&unrolled);
        assert!(LoopForest::find(&unrolled, &cfg).is_empty());
    }

    #[test]
    fn oversized_loop_is_skipped_but_program_stays_valid() {
        let p = counted_loop(100);
        let opts = UnrollOptions {
            max_trip_count: 10,
            ..UnrollOptions::default()
        };
        let (unrolled, report) = unroll_counted_loops(&p, opts);
        assert_eq!(report.unrolled_loops, 0);
        assert_eq!(report.skipped_loops, 1);
        // The loop is still there, just no longer counted.
        let cfg = Cfg::new(&unrolled);
        let forest = LoopForest::find(&unrolled, &cfg);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.loops()[0].trip_count, None);
        unrolled.validate().unwrap();
    }

    #[test]
    fn data_dependent_loops_are_left_alone() {
        let mut b = ProgramBuilder::new("while");
        let flag = b.region("flag", 8, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.branch(
            header,
            Condition::new(
                vec![MemRef::at(flag, 0)],
                BranchSemantics::InputBit { bit: 0 },
            ),
            body,
            exit,
        );
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let (unrolled, report) = unroll_counted_loops(&p, UnrollOptions::default());
        assert_eq!(report.unrolled_loops, 0);
        assert_eq!(report.skipped_loops, 0);
        assert_eq!(unrolled.blocks().len(), p.blocks().len());
    }

    #[test]
    fn nested_counted_loops_unroll_completely() {
        let mut b = ProgramBuilder::new("nested");
        let t = b.region("t", 64 * 64, false);
        let entry = b.entry_block("entry");
        let outer_h = b.block("outer_h");
        let inner_h = b.block("inner_h");
        let inner_body = b.block("inner_body");
        let outer_latch = b.block("outer_latch");
        let exit = b.block("exit");
        b.jump(entry, outer_h);
        b.loop_branch(outer_h, 3, inner_h, exit);
        b.loop_branch(inner_h, 2, inner_body, outer_latch);
        b.load(inner_body, t, IndexExpr::loop_indexed(64));
        b.jump(inner_body, inner_h);
        b.jump(outer_latch, outer_h);
        b.ret(exit);
        let p = b.finish().unwrap();
        let (unrolled, report) = unroll_counted_loops(&p, UnrollOptions::default());
        assert_eq!(report.unrolled_loops, 2);
        let cfg = Cfg::new(&unrolled);
        assert!(LoopForest::find(&unrolled, &cfg).is_empty());
        // 3 outer iterations × 2 inner iterations = 6 loads.
        assert_eq!(unrolled.memory_access_count(), 6);
        unrolled.validate().unwrap();
    }

    #[test]
    fn unrolled_program_keeps_other_branches() {
        // A counted loop whose body contains a data-dependent branch.
        let mut b = ProgramBuilder::new("loop-with-branch");
        let t = b.region("t", 64 * 4, false);
        let p_region = b.region("p", 8, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 2, body, exit);
        b.data_branch(
            body,
            vec![MemRef::at(p_region, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, t, IndexExpr::Const(0));
        b.jump(then_bb, latch);
        b.load(else_bb, t, IndexExpr::Const(64));
        b.jump(else_bb, latch);
        b.jump(latch, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let (unrolled, report) = unroll_counted_loops(&p, UnrollOptions::default());
        assert_eq!(report.unrolled_loops, 1);
        // The data-dependent branch is duplicated once per iteration.
        assert_eq!(unrolled.branch_count(), 2);
        unrolled.validate().unwrap();
    }
}
