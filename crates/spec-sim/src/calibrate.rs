//! Calibration of speculation windows from a simple latency model.
//!
//! The paper derives its `b_h = 20` / `b_m = 200` bounds "from our analysis
//! of the pipelined execution traces produced by GEM5 ... with O3CPU"
//! (Section 7).  We reproduce the same numbers from first principles: while
//! a branch condition is being resolved, the front end keeps issuing
//! instructions; the number of wrong-path instructions is therefore bounded
//! by the resolution latency times the issue width, capped by the reorder
//! buffer capacity.

/// A coarse out-of-order processor latency model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cycles to resolve a branch whose operands hit in the L1 data cache.
    pub l1_hit_cycles: u32,
    /// Cycles to resolve a branch whose operands come from memory.
    pub memory_cycles: u32,
    /// Instructions issued per cycle while waiting.
    pub issue_width: u32,
    /// Reorder-buffer capacity (upper bound on in-flight instructions).
    pub reorder_buffer: u32,
}

impl Default for LatencyModel {
    /// Parameters matching the Alpha 21264-style O3CPU model used in the
    /// paper's evaluation.
    fn default() -> Self {
        Self {
            l1_hit_cycles: 5,
            memory_cycles: 50,
            issue_width: 4,
            reorder_buffer: 224,
        }
    }
}

/// Result of a window calibration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CalibrationReport {
    /// Speculation window after a condition-operand cache hit (`b_h`).
    pub window_on_hit: u32,
    /// Speculation window after a condition-operand cache miss (`b_m`).
    pub window_on_miss: u32,
}

/// Derives the speculation windows from a latency model.
pub fn calibrate_windows(model: &LatencyModel) -> CalibrationReport {
    let bound = |cycles: u32| (cycles * model.issue_width).min(model.reorder_buffer);
    CalibrationReport {
        window_on_hit: bound(model.l1_hit_cycles),
        window_on_miss: bound(model.memory_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_reproduces_the_papers_bounds() {
        let report = calibrate_windows(&LatencyModel::default());
        assert_eq!(report.window_on_hit, 20);
        assert_eq!(report.window_on_miss, 200);
    }

    #[test]
    fn reorder_buffer_caps_the_window() {
        let model = LatencyModel {
            memory_cycles: 500,
            ..LatencyModel::default()
        };
        let report = calibrate_windows(&model);
        assert_eq!(report.window_on_miss, 224);
    }

    #[test]
    fn narrow_issue_width_shrinks_the_window() {
        let model = LatencyModel {
            issue_width: 1,
            ..LatencyModel::default()
        };
        let report = calibrate_windows(&model);
        assert_eq!(report.window_on_hit, 5);
        assert_eq!(report.window_on_miss, 50);
    }
}
