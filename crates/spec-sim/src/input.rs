//! Concrete inputs for a simulation run.

/// Concrete values driving a single simulated execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SimInput {
    /// Public (attacker-controlled) input value.  Resolves
    /// [`spec_ir::IndexExpr::Input`] offsets and
    /// [`spec_ir::BranchSemantics::InputBit`] branch outcomes.
    pub input_value: u64,
    /// Secret value (e.g. a key byte).  Resolves
    /// [`spec_ir::IndexExpr::Secret`] offsets and
    /// [`spec_ir::BranchSemantics::SecretBit`] branch outcomes.
    pub secret_value: u64,
}

impl SimInput {
    /// Creates an input with the given public and secret values.
    pub fn new(input_value: u64, secret_value: u64) -> Self {
        Self {
            input_value,
            secret_value,
        }
    }

    /// Input with only the secret varied (useful for leakage experiments).
    pub fn with_secret(secret_value: u64) -> Self {
        Self {
            input_value: 0,
            secret_value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let i = SimInput::new(3, 9);
        assert_eq!(i.input_value, 3);
        assert_eq!(i.secret_value, 9);
        assert_eq!(SimInput::with_secret(7).secret_value, 7);
        assert_eq!(SimInput::default().input_value, 0);
    }
}
