//! # spec-sim
//!
//! A concrete speculative-execution simulator, standing in for the GEM5
//! O3CPU setup the paper used to (a) motivate its examples (Figures 2/3),
//! (b) calibrate the speculation windows `b_h = 20` / `b_m = 200`, and
//! (c) sanity-check the analysis.
//!
//! The simulator executes a [`spec_ir::Program`] against a concrete LRU
//! cache.  At every conditional branch whose condition depends on memory it
//! consults a [`BranchPredictor`]; on a misprediction it executes the wrong
//! path for a bounded number of instructions (the speculation window),
//! perturbing the cache, then rolls the architectural state back and resumes
//! on the correct path — exactly the behaviour the abstract analysis has to
//! over-approximate.  The cache contents are deliberately *not* rolled back.
//!
//! ## Example
//!
//! ```rust
//! use spec_ir::builder::ProgramBuilder;
//! use spec_ir::IndexExpr;
//! use spec_sim::{SimConfig, SimInput, Simulator};
//!
//! let mut b = ProgramBuilder::new("two-loads");
//! let t = b.region("t", 64, false);
//! let entry = b.entry_block("entry");
//! b.load(entry, t, IndexExpr::Const(0));
//! b.load(entry, t, IndexExpr::Const(0));
//! b.ret(entry);
//! let program = b.finish().unwrap();
//!
//! let report = Simulator::new(SimConfig::default()).run(&program, &SimInput::default());
//! assert_eq!(report.observable_misses, 1);
//! assert_eq!(report.observable_hits, 1);
//! ```

pub mod calibrate;
pub mod input;
pub mod predictor;
pub mod report;
pub mod simulator;

pub use calibrate::{calibrate_windows, CalibrationReport, LatencyModel};
pub use input::SimInput;
pub use predictor::{BranchPredictor, PredictorKind};
pub use report::{AccessEvent, SimReport};
pub use simulator::{SimConfig, SimSpeculation, Simulator};
