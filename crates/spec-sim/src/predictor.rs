//! Branch predictors.
//!
//! The paper abstracts over the prediction strategy ("regardless of the
//! underlying strategies ... the speculatively executed instructions may
//! leave side-effects"), so the simulator offers several: the interesting
//! property for validation is that the abstract analysis must be sound for
//! *every* predictor, including an adversarial one that always mispredicts.

use std::collections::HashMap;

use spec_ir::BlockId;

/// Strategy used to instantiate a predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Predict every branch taken.
    AlwaysTaken,
    /// Predict every branch not taken.
    AlwaysNotTaken,
    /// Classic two-bit saturating counter per branch site.
    #[default]
    TwoBit,
    /// Adversarial: always predict the opposite of the actual outcome,
    /// maximising wrong-path pollution.  Used for soundness stress tests.
    AlwaysWrong,
    /// Oracle: always predict correctly (no speculation pollution).
    AlwaysRight,
}

/// A (stateful) branch predictor.
pub trait BranchPredictor {
    /// Predicts the outcome of the branch at `site` (true = taken).
    fn predict(&mut self, site: BlockId, actual: bool) -> bool;

    /// Informs the predictor of the actual outcome.
    fn update(&mut self, site: BlockId, actual: bool);
}

/// Predictor dispatching on [`PredictorKind`].
#[derive(Clone, Debug)]
pub struct Predictor {
    kind: PredictorKind,
    /// Two-bit saturating counters, indexed by branch site.
    counters: HashMap<BlockId, u8>,
}

impl Predictor {
    /// Creates a predictor of the given kind.
    pub fn new(kind: PredictorKind) -> Self {
        Self {
            kind,
            counters: HashMap::new(),
        }
    }

    /// The strategy in use.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }
}

impl BranchPredictor for Predictor {
    fn predict(&mut self, site: BlockId, actual: bool) -> bool {
        match self.kind {
            PredictorKind::AlwaysTaken => true,
            PredictorKind::AlwaysNotTaken => false,
            PredictorKind::AlwaysWrong => !actual,
            PredictorKind::AlwaysRight => actual,
            PredictorKind::TwoBit => {
                // Counters start weakly taken (2); >= 2 predicts taken.
                let counter = self.counters.get(&site).copied().unwrap_or(2);
                counter >= 2
            }
        }
    }

    fn update(&mut self, site: BlockId, actual: bool) {
        if self.kind != PredictorKind::TwoBit {
            return;
        }
        let counter = self.counters.entry(site).or_insert(2);
        if actual {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> BlockId {
        BlockId::from_raw(i)
    }

    #[test]
    fn static_predictors() {
        let mut taken = Predictor::new(PredictorKind::AlwaysTaken);
        let mut not_taken = Predictor::new(PredictorKind::AlwaysNotTaken);
        assert!(taken.predict(site(0), false));
        assert!(!not_taken.predict(site(0), true));
    }

    #[test]
    fn adversarial_and_oracle_predictors() {
        let mut wrong = Predictor::new(PredictorKind::AlwaysWrong);
        let mut right = Predictor::new(PredictorKind::AlwaysRight);
        for actual in [true, false] {
            assert_eq!(wrong.predict(site(1), actual), !actual);
            assert_eq!(right.predict(site(1), actual), actual);
        }
    }

    #[test]
    fn two_bit_counter_learns_a_biased_branch() {
        let mut p = Predictor::new(PredictorKind::TwoBit);
        // Train towards not-taken.
        for _ in 0..4 {
            let _ = p.predict(site(2), false);
            p.update(site(2), false);
        }
        assert!(!p.predict(site(2), false), "learned not-taken");
        // A single taken outcome does not flip a saturated counter.
        p.update(site(2), true);
        assert!(!p.predict(site(2), true));
        // Two more taken outcomes do.
        p.update(site(2), true);
        p.update(site(2), true);
        assert!(p.predict(site(2), true));
    }

    #[test]
    fn counters_are_per_site() {
        let mut p = Predictor::new(PredictorKind::TwoBit);
        for _ in 0..3 {
            p.update(site(1), false);
        }
        assert!(!p.predict(site(1), false));
        assert!(
            p.predict(site(9), true),
            "untrained site starts weakly taken"
        );
    }
}
