//! Simulation reports: per-access events and aggregate statistics.

use spec_cache::MemBlock;
use spec_ir::BlockId;

/// One memory access observed during simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// Basic block containing the access.
    pub block: BlockId,
    /// Position within the block's instruction list.
    pub inst_index: usize,
    /// The concrete cache block touched.
    pub mem_block: MemBlock,
    /// `true` if the access hit in the cache.
    pub hit: bool,
    /// `true` if the access was performed on a wrong (later squashed) path.
    pub speculative: bool,
}

/// Aggregate result of one simulated execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Cache hits on the committed (architectural) path.
    pub observable_hits: u64,
    /// Cache misses on the committed path.
    pub observable_misses: u64,
    /// Cache hits during squashed speculative execution.
    pub speculative_hits: u64,
    /// Cache misses during squashed speculative execution (these still
    /// change the cache contents).
    pub speculative_misses: u64,
    /// Number of branch mispredictions (and therefore rollbacks).
    pub mispredictions: u64,
    /// Number of committed instructions.
    pub committed_instructions: u64,
    /// Number of squashed (speculatively executed) instructions.
    pub squashed_instructions: u64,
    /// Estimated execution time in cycles.
    pub cycles: u64,
    /// Every access in execution order.
    pub events: Vec<AccessEvent>,
}

impl SimReport {
    /// Total committed accesses.
    pub fn observable_accesses(&self) -> u64 {
        self.observable_hits + self.observable_misses
    }

    /// Misses visible to an external observer (committed-path misses).
    ///
    /// This is the quantity whose dependence on secrets constitutes a
    /// timing side channel.
    pub fn observable_miss_count(&self) -> u64 {
        self.observable_misses
    }

    /// Events restricted to the committed path.
    pub fn committed_events(&self) -> impl Iterator<Item = &AccessEvent> {
        self.events.iter().filter(|e| !e.speculative)
    }

    /// Events on squashed speculative paths.
    pub fn speculative_events(&self) -> impl Iterator<Item = &AccessEvent> {
        self.events.iter().filter(|e| e.speculative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_ir::RegionId;

    #[test]
    fn aggregates_are_consistent_with_events() {
        let block = BlockId::from_raw(0);
        let mem_block = MemBlock::new(RegionId::from_raw(0), 0);
        let report = SimReport {
            observable_hits: 1,
            observable_misses: 1,
            speculative_misses: 1,
            events: vec![
                AccessEvent {
                    block,
                    inst_index: 0,
                    mem_block,
                    hit: false,
                    speculative: false,
                },
                AccessEvent {
                    block,
                    inst_index: 1,
                    mem_block,
                    hit: true,
                    speculative: false,
                },
                AccessEvent {
                    block,
                    inst_index: 0,
                    mem_block,
                    hit: false,
                    speculative: true,
                },
            ],
            ..SimReport::default()
        };
        assert_eq!(report.observable_accesses(), 2);
        assert_eq!(report.committed_events().count(), 2);
        assert_eq!(report.speculative_events().count(), 1);
        assert_eq!(report.observable_miss_count(), 1);
    }
}
