//! The speculative-execution simulator.

use std::collections::HashMap;

use spec_cache::{AddressMap, CacheConfig, ConcreteCache};
use spec_ir::{BlockId, BranchSemantics, Condition, IndexExpr, Inst, MemRef, Program, Terminator};

use crate::input::SimInput;
use crate::predictor::{BranchPredictor, Predictor, PredictorKind};
use crate::report::{AccessEvent, SimReport};

/// Speculation parameters of the simulated processor.
///
/// Wrong-path execution continues until the mispredicted branch resolves:
/// the budget is expressed in *cycles* (a condition operand served from the
/// L1 cache resolves quickly; one fetched from memory leaves a long window),
/// and every wrong-path instruction consumes its own latency from that
/// budget.  This mirrors the pipelined traces of the paper's Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimSpeculation {
    /// Cycles to resolve a branch whose condition operands were cache hits.
    pub resolve_cycles_on_hit: u32,
    /// Cycles to resolve a branch whose condition operands missed.
    pub resolve_cycles_on_miss: u32,
    /// Branch prediction strategy.
    pub predictor: PredictorKind,
}

impl Default for SimSpeculation {
    fn default() -> Self {
        Self {
            resolve_cycles_on_hit: 5,
            resolve_cycles_on_miss: 100,
            predictor: PredictorKind::TwoBit,
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Data-cache geometry.
    pub cache: CacheConfig,
    /// Speculative execution; `None` models an in-order machine that stalls
    /// on every unresolved branch.
    pub speculation: Option<SimSpeculation>,
    /// Extra cycles charged for a cache miss.
    pub miss_penalty: u64,
    /// Extra cycles charged for a branch misprediction (pipeline flush).
    pub misprediction_penalty: u64,
    /// Safety valve on the number of committed instructions.
    pub max_instructions: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::paper_default(),
            speculation: Some(SimSpeculation::default()),
            miss_penalty: 100,
            misprediction_penalty: 20,
            max_instructions: 2_000_000,
        }
    }
}

impl SimConfig {
    /// A non-speculative (stalling) machine with the same cache.
    pub fn non_speculative() -> Self {
        Self {
            speculation: None,
            ..Self::default()
        }
    }

    /// Replaces the cache geometry.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the predictor strategy (enabling speculation if disabled).
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        let mut speculation = self.speculation.unwrap_or_default();
        speculation.predictor = predictor;
        self.speculation = Some(speculation);
        self
    }

    /// Replaces the branch-resolution latencies (enabling speculation if
    /// disabled).
    pub fn with_resolve_cycles(mut self, on_hit: u32, on_miss: u32) -> Self {
        let mut speculation = self.speculation.unwrap_or_default();
        speculation.resolve_cycles_on_hit = on_hit;
        speculation.resolve_cycles_on_miss = on_miss;
        self.speculation = Some(speculation);
        self
    }
}

/// Architectural register state that is checkpointed before speculation and
/// restored on rollback.
#[derive(Clone, Debug, Default)]
struct ArchState {
    /// Executions of each block so far (drives loop-indexed addressing).
    block_counts: HashMap<BlockId, u64>,
    /// Evaluations of each counted-loop branch so far.
    loop_counts: HashMap<BlockId, u64>,
}

/// The concrete speculative-execution simulator.
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for the given machine configuration.
    pub fn new(config: SimConfig) -> Self {
        config.cache.assert_valid();
        Self { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes `program` on `input` and reports cache and timing behaviour.
    pub fn run(&self, program: &Program, input: &SimInput) -> SimReport {
        let amap = AddressMap::new(program, &self.config.cache);
        let mut cache = ConcreteCache::new(self.config.cache);
        let mut predictor = Predictor::new(
            self.config
                .speculation
                .map(|s| s.predictor)
                .unwrap_or(PredictorKind::AlwaysRight),
        );
        let mut arch = ArchState::default();
        let mut report = SimReport::default();
        // Most recent access outcome per cache line (true = hit), used to
        // decide how long a dependent branch takes to resolve.
        let mut last_outcome: HashMap<u64, bool> = HashMap::new();

        let mut current = Some(program.entry());
        while let Some(block_id) = current {
            if report.committed_instructions >= self.config.max_instructions {
                break;
            }
            let block_iteration = *arch.block_counts.entry(block_id).or_insert(0);
            arch.block_counts.insert(block_id, block_iteration + 1);
            let block = program.block(block_id);

            for (inst_index, inst) in block.insts.iter().enumerate() {
                report.committed_instructions += 1;
                self.execute_inst(
                    program,
                    &amap,
                    &mut cache,
                    input,
                    block_id,
                    block_iteration,
                    inst_index,
                    inst,
                    false,
                    &mut report,
                    &mut last_outcome,
                );
            }

            current = match &block.term {
                Terminator::Return => None,
                Terminator::Jump(next) => Some(*next),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let actual = self.evaluate_condition(cond, input, block_id, &mut arch);
                    if let Some(speculation) = self.config.speculation {
                        if cond.reads_memory() {
                            // The branch resolves quickly if its operands'
                            // most recent accesses were hits; a recent miss
                            // means the value is still in flight.
                            let operands_hit = cond.depends_on.iter().all(|m| {
                                let block =
                                    resolve_block(&amap, m, input, block_iteration, program);
                                last_outcome
                                    .get(&amap.global_line(block))
                                    .copied()
                                    .unwrap_or(false)
                            });
                            let window = if operands_hit {
                                speculation.resolve_cycles_on_hit
                            } else {
                                speculation.resolve_cycles_on_miss
                            };
                            let predicted = predictor.predict(block_id, actual);
                            predictor.update(block_id, actual);
                            if predicted != actual && window > 0 {
                                report.mispredictions += 1;
                                report.cycles += self.config.misprediction_penalty;
                                let wrong_target = if predicted { *then_bb } else { *else_bb };
                                self.run_wrong_path(
                                    program,
                                    &amap,
                                    &mut cache,
                                    input,
                                    &arch,
                                    wrong_target,
                                    u64::from(window),
                                    &mut report,
                                    &mut last_outcome,
                                );
                            }
                        }
                    }
                    Some(if actual { *then_bb } else { *else_bb })
                }
            };
        }
        report
    }

    /// Executes the mispredicted path until the branch resolves (a budget of
    /// `resolve_cycles`), with a *copy* of the architectural state; only the
    /// cache (and the report's speculative counters) keep the effects.
    #[allow(clippy::too_many_arguments)]
    fn run_wrong_path(
        &self,
        program: &Program,
        amap: &AddressMap,
        cache: &mut ConcreteCache,
        input: &SimInput,
        arch: &ArchState,
        start: BlockId,
        resolve_cycles: u64,
        report: &mut SimReport,
        last_outcome: &mut HashMap<u64, bool>,
    ) {
        let mut ghost = arch.clone();
        let mut spent: u64 = 0;
        let mut current = Some(start);
        while let Some(block_id) = current {
            if spent >= resolve_cycles {
                break;
            }
            let block_iteration = *ghost.block_counts.entry(block_id).or_insert(0);
            ghost.block_counts.insert(block_id, block_iteration + 1);
            let block = program.block(block_id);
            for (inst_index, inst) in block.insts.iter().enumerate() {
                if spent >= resolve_cycles {
                    break;
                }
                report.squashed_instructions += 1;
                spent += self.execute_inst(
                    program,
                    amap,
                    cache,
                    input,
                    block_id,
                    block_iteration,
                    inst_index,
                    inst,
                    true,
                    report,
                    last_outcome,
                );
            }
            if spent >= resolve_cycles {
                break;
            }
            current = match &block.term {
                Terminator::Return => None,
                Terminator::Jump(next) => Some(*next),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    // Nested speculation is not modelled: the wrong path
                    // follows the architectural outcome of inner branches.
                    let outcome = self.evaluate_condition(cond, input, block_id, &mut ghost);
                    Some(if outcome { *then_bb } else { *else_bb })
                }
            };
        }
        // `ghost` is dropped here: the architectural state rolls back, the
        // cache does not.
    }

    /// Executes one instruction, updating the cache and the report, and
    /// returns the number of cycles it consumed.
    #[allow(clippy::too_many_arguments)]
    fn execute_inst(
        &self,
        program: &Program,
        amap: &AddressMap,
        cache: &mut ConcreteCache,
        input: &SimInput,
        block: BlockId,
        block_iteration: u64,
        inst_index: usize,
        inst: &Inst,
        speculative: bool,
        report: &mut SimReport,
        last_outcome: &mut HashMap<u64, bool>,
    ) -> u64 {
        match inst {
            Inst::Load(m) | Inst::Store(m) => {
                let mem_block = resolve_block(amap, m, input, block_iteration, program);
                let line = amap.global_line(mem_block);
                let outcome = cache.access(line);
                let hit = outcome.is_hit();
                last_outcome.insert(line, hit);
                let cost = if hit { 1 } else { 1 + self.config.miss_penalty };
                if speculative {
                    if hit {
                        report.speculative_hits += 1;
                    } else {
                        report.speculative_misses += 1;
                    }
                } else {
                    report.cycles += cost;
                    if hit {
                        report.observable_hits += 1;
                    } else {
                        report.observable_misses += 1;
                    }
                }
                report.events.push(AccessEvent {
                    block,
                    inst_index,
                    mem_block,
                    hit,
                    speculative,
                });
                cost
            }
            Inst::Compute { latency } => {
                if !speculative {
                    report.cycles += u64::from(*latency);
                }
                u64::from(*latency)
            }
            Inst::Nop => {
                if !speculative {
                    report.cycles += 1;
                }
                1
            }
        }
    }

    /// Evaluates a branch condition's concrete outcome.
    fn evaluate_condition(
        &self,
        cond: &Condition,
        input: &SimInput,
        site: BlockId,
        arch: &mut ArchState,
    ) -> bool {
        match cond.semantics {
            BranchSemantics::Const(v) => v,
            BranchSemantics::InputBit { bit } => (input.input_value >> bit) & 1 == 1,
            BranchSemantics::SecretBit { bit } => (input.secret_value >> bit) & 1 == 1,
            BranchSemantics::Loop { trip_count } => {
                let count = arch.loop_counts.entry(site).or_insert(0);
                let stay = *count < trip_count;
                *count += 1;
                stay
            }
        }
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new(SimConfig::default())
    }
}

/// Resolves a memory reference to the concrete cache block it touches.
fn resolve_block(
    amap: &AddressMap,
    m: &MemRef,
    input: &SimInput,
    block_iteration: u64,
    program: &Program,
) -> spec_cache::MemBlock {
    let size = program.region(m.region).size_bytes.max(1);
    let offset = match m.index {
        IndexExpr::Const(o) => o % size,
        IndexExpr::LoopIndexed { stride } => (block_iteration * stride) % size,
        IndexExpr::Input { stride } => (input.input_value * stride) % size,
        IndexExpr::Secret { stride } => (input.secret_value * stride) % size,
    };
    amap.block_of_offset(m.region, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_cache::CacheConfig;
    use spec_ir::builder::ProgramBuilder;

    /// The Figure 2 program at full scale: 510 placeholder lines, `l1`/`l2`,
    /// the branch over `p`, and the final `ph[k]` access.
    fn figure2(ph_lines: u64) -> Program {
        let mut b = ProgramBuilder::new("figure2");
        let ph = b.region("ph", ph_lines * 64, false);
        let l1 = b.region("l1", 64, false);
        let l2 = b.region("l2", 64, false);
        let p = b.region("p", 8, false);
        let entry = b.entry_block("entry");
        let preload_h = b.block("preload_h");
        let preload_b = b.block("preload_b");
        let branch_bb = b.block("branch");
        let then_bb = b.block("then");
        let else_bb = b.block("else");
        let done = b.block("done");
        b.jump(entry, preload_h);
        b.loop_branch(preload_h, ph_lines, preload_b, branch_bb);
        b.load(preload_b, ph, IndexExpr::loop_indexed(64));
        b.jump(preload_b, preload_h);
        b.load(branch_bb, p, IndexExpr::Const(0));
        b.data_branch(
            branch_bb,
            vec![MemRef::at(p, 0)],
            BranchSemantics::InputBit { bit: 0 },
            then_bb,
            else_bb,
        );
        b.load(then_bb, l1, IndexExpr::Const(0));
        b.jump(then_bb, done);
        b.load(else_bb, l2, IndexExpr::Const(0));
        b.jump(else_bb, done);
        b.load(done, ph, IndexExpr::secret(64));
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn repeated_access_hits() {
        let mut b = ProgramBuilder::new("two-loads");
        let t = b.region("t", 64, false);
        let e = b.entry_block("entry");
        b.load(e, t, IndexExpr::Const(0));
        b.load(e, t, IndexExpr::Const(0));
        b.ret(e);
        let p = b.finish().unwrap();
        let report = Simulator::default().run(&p, &SimInput::default());
        assert_eq!(report.observable_misses, 1);
        assert_eq!(report.observable_hits, 1);
        assert_eq!(report.committed_instructions, 2);
        assert_eq!(report.mispredictions, 0);
    }

    #[test]
    fn figure2_without_speculation_has_one_hit_at_the_end() {
        // Non-speculative execution: 512 misses (510 ph + p + l) and the
        // final ph[k] access hits (Figure 3, left).
        let program = figure2(510);
        let config = SimConfig::non_speculative();
        let report = Simulator::new(config).run(&program, &SimInput::new(1, 0));
        assert_eq!(report.observable_misses, 512);
        assert_eq!(report.observable_hits, 1);
        assert_eq!(report.speculative_misses, 0);
    }

    #[test]
    fn figure2_with_misprediction_turns_the_hit_into_a_miss() {
        // A mispredicted branch loads the other l-array too, evicting the
        // ph line that the final access needs (Figure 3, right): 513
        // observable misses plus one speculative miss.
        let program = figure2(510);
        let config = SimConfig::default().with_predictor(PredictorKind::AlwaysWrong);
        let report = Simulator::new(config).run(&program, &SimInput::new(1, 0));
        assert_eq!(report.mispredictions, 1);
        assert_eq!(report.speculative_misses, 1);
        assert_eq!(report.observable_misses, 513);
        assert_eq!(report.observable_hits, 0);
    }

    #[test]
    fn correct_prediction_leaves_the_cache_unpolluted() {
        let program = figure2(510);
        let config = SimConfig::default().with_predictor(PredictorKind::AlwaysRight);
        let report = Simulator::new(config).run(&program, &SimInput::new(1, 0));
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.observable_hits, 1);
        assert_eq!(report.observable_misses, 512);
    }

    #[test]
    fn speculation_window_limits_wrong_path_length() {
        let program = figure2(510);
        // A resolution latency of zero disables wrong-path execution even
        // when the predictor is adversarial.
        let config = SimConfig::default()
            .with_predictor(PredictorKind::AlwaysWrong)
            .with_resolve_cycles(0, 0);
        let report = Simulator::new(config).run(&program, &SimInput::new(1, 0));
        assert_eq!(report.squashed_instructions, 0);
        assert_eq!(report.observable_hits, 1);
    }

    #[test]
    fn misses_dominate_the_cycle_count() {
        let mut b = ProgramBuilder::new("latency");
        let t = b.region("t", 2 * 64, false);
        let e = b.entry_block("entry");
        b.load(e, t, IndexExpr::Const(0));
        b.load(e, t, IndexExpr::Const(64));
        b.load(e, t, IndexExpr::Const(0));
        b.compute(e, 7);
        b.ret(e);
        let p = b.finish().unwrap();
        let report = Simulator::default().run(&p, &SimInput::default());
        // 2 misses * (1 + 100) + 1 hit * 1 + compute 7 = 210.
        assert_eq!(report.cycles, 2 * 101 + 1 + 7);
    }

    #[test]
    fn secret_indexed_access_varies_with_the_secret() {
        let mut b = ProgramBuilder::new("secret-index");
        let sbox = b.region("sbox", 4 * 64, false);
        let e = b.entry_block("entry");
        b.load(e, sbox, IndexExpr::Const(0));
        b.load(e, sbox, IndexExpr::secret(64));
        b.ret(e);
        let p = b.finish().unwrap();
        let sim = Simulator::default();
        let hit = sim.run(&p, &SimInput::with_secret(0));
        let miss = sim.run(&p, &SimInput::with_secret(1));
        assert_eq!(
            hit.observable_misses, 1,
            "secret 0 re-touches the cached line"
        );
        assert_eq!(miss.observable_misses, 2, "secret 1 touches a cold line");
        assert_ne!(hit.cycles, miss.cycles, "timing depends on the secret");
    }

    #[test]
    fn loop_indexed_accesses_walk_the_region() {
        let mut b = ProgramBuilder::new("walker");
        let t = b.region("t", 4 * 64, false);
        let entry = b.entry_block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.jump(entry, header);
        b.loop_branch(header, 4, body, exit);
        b.load(body, t, IndexExpr::loop_indexed(64));
        b.jump(body, header);
        b.ret(exit);
        let p = b.finish().unwrap();
        let report = Simulator::default().run(&p, &SimInput::default());
        assert_eq!(
            report.observable_misses, 4,
            "each iteration touches a new line"
        );
        let touched: std::collections::HashSet<u64> = report
            .events
            .iter()
            .map(|e| e.mem_block.block_index)
            .collect();
        assert_eq!(touched.len(), 4);
    }

    #[test]
    fn runaway_programs_are_stopped_by_the_instruction_budget() {
        let mut b = ProgramBuilder::new("spin");
        let t = b.region("t", 64, false);
        let e = b.entry_block("entry");
        let spin = b.block("spin");
        b.jump(e, spin);
        b.load(spin, t, IndexExpr::Const(0));
        b.jump(spin, spin);
        let p = b.finish().unwrap();
        let config = SimConfig {
            max_instructions: 1_000,
            ..SimConfig::default()
        };
        let report = Simulator::new(config).run(&p, &SimInput::default());
        assert!(report.committed_instructions <= 1_001);
    }

    #[test]
    fn small_cache_conflicts_are_respected() {
        let mut b = ProgramBuilder::new("conflict");
        let t = b.region("t", 3 * 64, false);
        let e = b.entry_block("entry");
        b.load(e, t, IndexExpr::Const(0));
        b.load(e, t, IndexExpr::Const(64));
        b.load(e, t, IndexExpr::Const(128));
        b.load(e, t, IndexExpr::Const(0));
        b.ret(e);
        let p = b.finish().unwrap();
        let config = SimConfig::default().with_cache(CacheConfig::fully_associative(2, 64));
        let report = Simulator::new(config).run(&p, &SimInput::default());
        assert_eq!(
            report.observable_misses, 4,
            "t[0] was evicted before its reuse"
        );
    }
}
