//! The binary codec: explicit, deterministic, corruption-tolerant.
//!
//! Wire conventions (all fixed regardless of host):
//!
//! * integers are little-endian; `usize` travels as `u64`;
//! * `bool` is one byte (0/1), any other value is a decode error;
//! * enums are a one-byte tag followed by the payload of that variant;
//! * `Option<T>` is a one-byte tag (0 = `None`, 1 = `Some`) + payload;
//! * sequences are a `u64` element count followed by the elements; maps are
//!   emitted in ascending key order so encoding is a pure function of the
//!   value;
//! * every sequence length is validated against the number of bytes left in
//!   the input before any allocation, so truncated or bit-flipped files fail
//!   with a [`DecodeError`] instead of panicking or over-allocating.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Error produced when decoding malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An enum/option tag byte had no corresponding variant.
    Tag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A structurally invalid value (bad length, failed validation, ...).
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::Tag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes values into a growable byte buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A cursor over encoded bytes; all reads are bounds-checked.
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Returns an error if any input is left over (trailing garbage).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid("trailing bytes after value"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as a little-endian `u64`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Invalid("usize overflow"))
    }

    /// Reads a `bool`; any byte other than 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::Tag { what: "bool", tag }),
        }
    }

    /// Reads a sequence length and validates it against the remaining input.
    ///
    /// Every element of every sequence type encodes to at least one byte, so
    /// a claimed length larger than the bytes left is necessarily corrupt;
    /// rejecting it here bounds allocations before they happen.
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(DecodeError::Invalid("sequence length exceeds input"));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.seq_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("invalid utf-8"))
    }
}

/// A value with a deterministic binary encoding.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `e`.
    fn encode(&self, e: &mut Encoder);
    /// Decodes a value from `d`, consuming exactly its encoding.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

/// Encodes a single value into a fresh byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut e = Encoder::new();
    value.encode(&mut e);
    e.into_bytes()
}

/// Decodes a single value that must span the whole input.
pub fn decode_all<T: Codec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut d = Decoder::new(bytes);
    let value = T::decode(&mut d)?;
    d.finish()?;
    Ok(value)
}

impl Codec for u8 {
    fn encode(&self, e: &mut Encoder) {
        e.u8(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.u32(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.u64()
    }
}

impl Codec for usize {
    fn encode(&self, e: &mut Encoder) {
        e.usize(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.usize()
    }
}

impl Codec for bool {
    fn encode(&self, e: &mut Encoder) {
        e.bool(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.bool()
    }
}

impl Codec for String {
    fn encode(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.str()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            tag => Err(DecodeError::Tag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.seq_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Arc<T> {
    fn encode(&self, e: &mut Encoder) {
        (**self).encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode(d)?))
    }
}

macro_rules! tuple_codec {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, e: &mut Encoder) {
                $(self.$idx.encode(e);)+
            }
            fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode(d)?,)+))
            }
        }
    };
}

tuple_codec!(A: 0, B: 1);
tuple_codec!(A: 0, B: 1, C: 2);
tuple_codec!(A: 0, B: 1, C: 2, D: 3);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for (k, v) in self {
            k.encode(e);
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(d)?;
            let v = V::decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K, V> Codec for HashMap<K, V>
where
    K: Codec + Ord + Clone + std::hash::Hash + Eq,
    V: Codec,
{
    fn encode(&self, e: &mut Encoder) {
        // Hash maps have no intrinsic order; emit entries sorted by key so
        // the encoding is deterministic.
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        e.usize(self.len());
        for k in keys {
            k.encode(e);
            self[k].encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.seq_len()?;
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::decode(d)?;
            let v = V::decode(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Encoder::new();
        7u8.encode(&mut e);
        0xdead_beefu32.encode(&mut e);
        0x0123_4567_89ab_cdefu64.encode(&mut e);
        true.encode(&mut e);
        "hé".to_string().encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(u8::decode(&mut d).unwrap(), 7);
        assert_eq!(u32::decode(&mut d).unwrap(), 0xdead_beef);
        assert_eq!(u64::decode(&mut d).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(bool::decode(&mut d).unwrap());
        assert_eq!(String::decode(&mut d).unwrap(), "hé");
        d.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let value: (Vec<u32>, Option<String>, BTreeMap<u64, bool>) = (
            vec![1, 2, 3],
            Some("x".to_string()),
            [(9u64, true), (2, false)].into_iter().collect(),
        );
        let bytes = encode_to_vec(&value);
        let back: (Vec<u32>, Option<String>, BTreeMap<u64, bool>) = decode_all(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn hashmap_encoding_is_sorted_and_deterministic() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..64u64 {
            a.insert(k, k * 3);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 3);
        }
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
        let back: HashMap<u64, u64> = decode_all(&encode_to_vec(&a)).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = decode_all::<Vec<u64>>(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // claimed length far beyond input
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(Vec::<u8>::decode(&mut d).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&42u64);
        bytes.push(0);
        assert!(decode_all::<u64>(&bytes).is_err());
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            decode_all::<bool>(&[2]),
            Err(DecodeError::Tag {
                what: "bool",
                tag: 2
            })
        );
        assert!(decode_all::<Option<u8>>(&[7, 0]).is_err());
    }
}
