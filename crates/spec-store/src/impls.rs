//! [`Codec`] implementations for the IR and analysis types that make up a
//! prepared artifact.
//!
//! Each impl is an explicit field-by-field traversal in declaration order,
//! mirroring the `HeapSize` walk of the same types.  Types with private
//! fields are rebuilt through their public reconstruction hooks
//! (`Program::new`, `AddressMap::from_parts`, `AbstractCacheState::from_parts`,
//! `InstGraph::from_parts`, `Vcfg::from_parts`), so decoding revalidates the
//! same structural invariants construction enforces — a corrupt payload can
//! only become a [`DecodeError`], never an inconsistent value.

use std::collections::BTreeMap;

use spec_absint::solver::SolveStats;
use spec_cache::{AbstractCacheState, AddressMap, Age, CacheConfig, MemBlock};
use spec_ir::transform::{UnrollOptions, UnrollReport};
use spec_ir::{
    BasicBlock, BlockId, BranchSemantics, Condition, Fingerprint, IndexExpr, Inst, MemRef,
    MemoryRegion, Program, RegionId, Terminator,
};
use spec_vcfg::{
    Color, InstGraph, MergeStrategy, NodeId, NodeKind, SpeculationConfig, SpeculationSite, Vcfg,
};

use crate::codec::{Codec, DecodeError, Decoder, Encoder};

fn id_u32(index: usize) -> u32 {
    // Ids originate from `u32` raw values, so this cannot truncate.
    index as u32
}

impl Codec for RegionId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(id_u32(self.index()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RegionId::from_raw(d.u32()?))
    }
}

impl Codec for BlockId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(id_u32(self.index()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockId::from_raw(d.u32()?))
    }
}

impl Codec for Fingerprint {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Fingerprint(d.u64()?))
    }
}

impl Codec for MemoryRegion {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        e.u64(self.size_bytes);
        e.bool(self.secret);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MemoryRegion {
            name: d.str()?,
            size_bytes: d.u64()?,
            secret: d.bool()?,
        })
    }
}

impl Codec for IndexExpr {
    fn encode(&self, e: &mut Encoder) {
        match self {
            IndexExpr::Const(offset) => {
                e.u8(0);
                e.u64(*offset);
            }
            IndexExpr::LoopIndexed { stride } => {
                e.u8(1);
                e.u64(*stride);
            }
            IndexExpr::Input { stride } => {
                e.u8(2);
                e.u64(*stride);
            }
            IndexExpr::Secret { stride } => {
                e.u8(3);
                e.u64(*stride);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let tag = d.u8()?;
        let value = d.u64()?;
        match tag {
            0 => Ok(IndexExpr::Const(value)),
            1 => Ok(IndexExpr::LoopIndexed { stride: value }),
            2 => Ok(IndexExpr::Input { stride: value }),
            3 => Ok(IndexExpr::Secret { stride: value }),
            tag => Err(DecodeError::Tag {
                what: "IndexExpr",
                tag,
            }),
        }
    }
}

impl Codec for MemRef {
    fn encode(&self, e: &mut Encoder) {
        self.region.encode(e);
        self.index.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MemRef {
            region: RegionId::decode(d)?,
            index: IndexExpr::decode(d)?,
        })
    }
}

impl Codec for Inst {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Inst::Load(m) => {
                e.u8(0);
                m.encode(e);
            }
            Inst::Store(m) => {
                e.u8(1);
                m.encode(e);
            }
            Inst::Compute { latency } => {
                e.u8(2);
                e.u32(*latency);
            }
            Inst::Nop => e.u8(3),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Inst::Load(MemRef::decode(d)?)),
            1 => Ok(Inst::Store(MemRef::decode(d)?)),
            2 => Ok(Inst::Compute { latency: d.u32()? }),
            3 => Ok(Inst::Nop),
            tag => Err(DecodeError::Tag { what: "Inst", tag }),
        }
    }
}

impl Codec for BranchSemantics {
    fn encode(&self, e: &mut Encoder) {
        match self {
            BranchSemantics::Loop { trip_count } => {
                e.u8(0);
                e.u64(*trip_count);
            }
            BranchSemantics::InputBit { bit } => {
                e.u8(1);
                e.u32(*bit);
            }
            BranchSemantics::SecretBit { bit } => {
                e.u8(2);
                e.u32(*bit);
            }
            BranchSemantics::Const(value) => {
                e.u8(3);
                e.bool(*value);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(BranchSemantics::Loop {
                trip_count: d.u64()?,
            }),
            1 => Ok(BranchSemantics::InputBit { bit: d.u32()? }),
            2 => Ok(BranchSemantics::SecretBit { bit: d.u32()? }),
            3 => Ok(BranchSemantics::Const(d.bool()?)),
            tag => Err(DecodeError::Tag {
                what: "BranchSemantics",
                tag,
            }),
        }
    }
}

impl Codec for Condition {
    fn encode(&self, e: &mut Encoder) {
        self.depends_on.encode(e);
        self.semantics.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Condition {
            depends_on: Vec::decode(d)?,
            semantics: BranchSemantics::decode(d)?,
        })
    }
}

impl Codec for Terminator {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Terminator::Jump(target) => {
                e.u8(0);
                target.encode(e);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                e.u8(1);
                cond.encode(e);
                then_bb.encode(e);
                else_bb.encode(e);
            }
            Terminator::Return => e.u8(2),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(Terminator::Jump(BlockId::decode(d)?)),
            1 => Ok(Terminator::Branch {
                cond: Condition::decode(d)?,
                then_bb: BlockId::decode(d)?,
                else_bb: BlockId::decode(d)?,
            }),
            2 => Ok(Terminator::Return),
            tag => Err(DecodeError::Tag {
                what: "Terminator",
                tag,
            }),
        }
    }
}

impl Codec for BasicBlock {
    fn encode(&self, e: &mut Encoder) {
        self.id.encode(e);
        self.name.encode(e);
        self.insts.encode(e);
        self.term.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BasicBlock {
            id: BlockId::decode(d)?,
            name: Option::decode(d)?,
            insts: Vec::decode(d)?,
            term: Terminator::decode(d)?,
        })
    }
}

impl Codec for Program {
    fn encode(&self, e: &mut Encoder) {
        e.str(self.name());
        e.usize(self.regions().len());
        for region in self.regions() {
            region.encode(e);
        }
        e.usize(self.blocks().len());
        for block in self.blocks() {
            block.encode(e);
        }
        self.entry().encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = d.str()?;
        let regions = Vec::decode(d)?;
        let blocks: Vec<BasicBlock> = Vec::decode(d)?;
        let entry = BlockId::decode(d)?;
        // Dense, in-order block ids are a construction invariant that
        // `Program::new` only debug-asserts; corrupt input must not reach it.
        if blocks
            .iter()
            .enumerate()
            .any(|(i, block)| block.id.index() != i)
        {
            return Err(DecodeError::Invalid("block ids not dense and in order"));
        }
        // Re-validating through the public constructor makes decoded
        // programs satisfy exactly the invariants built ones do.
        Program::new(name, regions, blocks, entry)
            .map_err(|_| DecodeError::Invalid("program failed validation"))
    }
}

impl Codec for UnrollOptions {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.max_program_insts);
        e.u64(self.max_trip_count);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(UnrollOptions {
            max_program_insts: d.usize()?,
            max_trip_count: d.u64()?,
        })
    }
}

impl Codec for UnrollReport {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.unrolled_loops);
        e.usize(self.skipped_loops);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(UnrollReport {
            unrolled_loops: d.usize()?,
            skipped_loops: d.usize()?,
        })
    }
}

impl Codec for CacheConfig {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.line_size);
        e.usize(self.num_sets);
        e.usize(self.associativity);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = CacheConfig {
            line_size: d.u64()?,
            num_sets: d.usize()?,
            associativity: d.usize()?,
        };
        if config.line_size == 0 || config.num_sets == 0 || config.associativity == 0 {
            return Err(DecodeError::Invalid("degenerate cache config"));
        }
        Ok(config)
    }
}

impl Codec for MemBlock {
    fn encode(&self, e: &mut Encoder) {
        self.region.encode(e);
        e.u64(self.block_index);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MemBlock {
            region: RegionId::decode(d)?,
            block_index: d.u64()?,
        })
    }
}

impl Codec for AddressMap {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.line_size());
        e.usize(self.num_sets());
        e.usize(self.base_blocks().len());
        for base in self.base_blocks() {
            e.u64(*base);
        }
        e.usize(self.block_counts().len());
        for count in self.block_counts() {
            e.u64(*count);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let line_size = d.u64()?;
        let num_sets = d.usize()?;
        let base_block: Vec<u64> = Vec::decode(d)?;
        let blocks: Vec<u64> = Vec::decode(d)?;
        if line_size == 0 || num_sets == 0 || base_block.len() != blocks.len() {
            return Err(DecodeError::Invalid("inconsistent address map"));
        }
        Ok(AddressMap::from_parts(
            line_size, num_sets, base_block, blocks,
        ))
    }
}

impl Codec for AbstractCacheState {
    fn encode(&self, e: &mut Encoder) {
        let (track_shadow, inner) = self.to_parts();
        e.bool(track_shadow);
        match inner {
            None => e.u8(0),
            Some((must, may)) => {
                e.u8(1);
                must.encode(e);
                may.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let track_shadow = d.bool()?;
        let inner = match d.u8()? {
            0 => None,
            1 => {
                let must: BTreeMap<MemBlock, Age> = BTreeMap::decode(d)?;
                let may: BTreeMap<MemBlock, Age> = BTreeMap::decode(d)?;
                Some((must, may))
            }
            tag => {
                return Err(DecodeError::Tag {
                    what: "AbstractCacheState",
                    tag,
                })
            }
        };
        Ok(AbstractCacheState::from_parts(track_shadow, inner))
    }
}

impl Codec for NodeId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(id_u32(self.index()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId::from_raw(d.u32()?))
    }
}

impl Codec for NodeKind {
    fn encode(&self, e: &mut Encoder) {
        match self {
            NodeKind::Inst { block, index } => {
                e.u8(0);
                block.encode(e);
                e.usize(*index);
            }
            NodeKind::Terminator { block } => {
                e.u8(1);
                block.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(NodeKind::Inst {
                block: BlockId::decode(d)?,
                index: d.usize()?,
            }),
            1 => Ok(NodeKind::Terminator {
                block: BlockId::decode(d)?,
            }),
            tag => Err(DecodeError::Tag {
                what: "NodeKind",
                tag,
            }),
        }
    }
}

impl Codec for Color {
    fn encode(&self, e: &mut Encoder) {
        e.u32(id_u32(self.index()));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Color::from_raw(d.u32()?))
    }
}

impl Codec for MergeStrategy {
    fn encode(&self, e: &mut Encoder) {
        match self {
            MergeStrategy::JustInTime => e.u8(0),
            MergeStrategy::MergeAtRollback => e.u8(1),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match d.u8()? {
            0 => Ok(MergeStrategy::JustInTime),
            1 => Ok(MergeStrategy::MergeAtRollback),
            tag => Err(DecodeError::Tag {
                what: "MergeStrategy",
                tag,
            }),
        }
    }
}

impl Codec for SpeculationConfig {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.depth_on_hit);
        e.u32(self.depth_on_miss);
        self.merge_strategy.encode(e);
        e.bool(self.dynamic_depth_bounding);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SpeculationConfig {
            depth_on_hit: d.u32()?,
            depth_on_miss: d.u32()?,
            merge_strategy: MergeStrategy::decode(d)?,
            dynamic_depth_bounding: d.bool()?,
        })
    }
}

impl Codec for SpeculationSite {
    fn encode(&self, e: &mut Encoder) {
        self.color.encode(e);
        self.branch_node.encode(e);
        self.speculated_block.encode(e);
        self.speculated_entry.encode(e);
        self.resume_block.encode(e);
        self.resume_entry.encode(e);
        self.commit_node.encode(e);
        self.condition_refs.encode(e);
        self.spec_distance.encode(e);
        self.resume_region.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SpeculationSite {
            color: Color::decode(d)?,
            branch_node: NodeId::decode(d)?,
            speculated_block: BlockId::decode(d)?,
            speculated_entry: NodeId::decode(d)?,
            resume_block: BlockId::decode(d)?,
            resume_entry: NodeId::decode(d)?,
            commit_node: Option::decode(d)?,
            condition_refs: Vec::decode(d)?,
            spec_distance: std::collections::HashMap::decode(d)?,
            resume_region: Vec::decode(d)?,
        })
    }
}

impl Codec for InstGraph {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for index in 0..self.len() {
            self.kind(NodeId::from_raw(index as u32)).encode(e);
        }
        for index in 0..self.len() {
            let succs = self.successors(NodeId::from_raw(index as u32));
            e.usize(succs.len());
            for s in succs {
                s.encode(e);
            }
        }
        self.entry().encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = d.seq_len()?;
        let mut kinds = Vec::with_capacity(len);
        for _ in 0..len {
            kinds.push(NodeKind::decode(d)?);
        }
        let mut successors = Vec::with_capacity(len);
        for _ in 0..len {
            successors.push(Vec::decode(d)?);
        }
        let entry = NodeId::decode(d)?;
        InstGraph::from_parts(kinds, successors, entry)
            .ok_or(DecodeError::Invalid("inconsistent instruction graph"))
    }
}

impl Codec for Vcfg {
    fn encode(&self, e: &mut Encoder) {
        self.graph().encode(e);
        e.usize(self.sites().len());
        for site in self.sites() {
            site.encode(e);
        }
        self.config().encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let graph = InstGraph::decode(d)?;
        let len = d.seq_len()?;
        let mut sites = Vec::with_capacity(len);
        for _ in 0..len {
            sites.push(SpeculationSite::decode(d)?);
        }
        let config = SpeculationConfig::decode(d)?;
        Vcfg::from_parts(graph, sites, config).ok_or(DecodeError::Invalid("inconsistent vcfg"))
    }
}

impl Codec for SolveStats {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.node_visits);
        e.u64(self.state_updates);
        e.usize(self.max_worklist_len);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SolveStats {
            node_visits: d.u64()?,
            state_updates: d.u64()?,
            max_worklist_len: d.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use spec_ir::builder::ProgramBuilder;
    use spec_vcfg::SpeculationConfig;

    use super::*;
    use crate::codec::{decode_all, encode_to_vec};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("sample");
        let table = b.region("table", 1024, false);
        let key = b.secret_region("key", 64);
        let entry = b.entry_block("entry");
        let hot = b.block("hot");
        let done = b.block("done");
        b.load(entry, table, IndexExpr::Const(0));
        b.data_branch(
            entry,
            vec![MemRef::at(key, 0)],
            BranchSemantics::SecretBit { bit: 0 },
            hot,
            done,
        );
        b.load(hot, table, IndexExpr::secret(64));
        b.jump(hot, done);
        b.ret(done);
        b.finish().unwrap()
    }

    #[test]
    fn program_round_trips_and_preserves_text() {
        let program = sample_program();
        let bytes = encode_to_vec(&program);
        let back: Program = decode_all(&bytes).unwrap();
        assert_eq!(back, program);
        assert_eq!(back.to_string(), program.to_string());
        assert_eq!(
            spec_ir::fingerprint::program_fingerprint(&back),
            spec_ir::fingerprint::program_fingerprint(&program)
        );
    }

    #[test]
    fn address_map_round_trips() {
        let program = sample_program();
        let config = CacheConfig::fully_associative(16, 64);
        let map = AddressMap::new(&program, &config);
        let back: AddressMap = decode_all(&encode_to_vec(&map)).unwrap();
        assert_eq!(back.line_size(), map.line_size());
        assert_eq!(back.num_sets(), map.num_sets());
        assert_eq!(back.base_blocks(), map.base_blocks());
        assert_eq!(back.block_counts(), map.block_counts());
    }

    #[test]
    fn abstract_state_round_trips_including_bottom() {
        let config = CacheConfig::fully_associative(8, 64);
        for state in [
            AbstractCacheState::bottom(true),
            AbstractCacheState::bottom(false),
            AbstractCacheState::empty_cache(&config, true),
            {
                let mut s = AbstractCacheState::empty_cache(&config, true);
                s.access(
                    &config,
                    &spec_cache::CacheAccess::Precise(MemBlock::new(RegionId::from_raw(0), 1)),
                    |_| 0,
                );
                s
            },
        ] {
            let back: AbstractCacheState = decode_all(&encode_to_vec(&state)).unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn vcfg_round_trip_reproduces_derived_tables() {
        let program = sample_program();
        let vcfg = Vcfg::build(&program, SpeculationConfig::paper_default());
        let back: Vcfg = decode_all(&encode_to_vec(&vcfg)).unwrap();
        assert_eq!(back.num_colors(), vcfg.num_colors());
        assert_eq!(
            back.num_speculated_branches(),
            vcfg.num_speculated_branches()
        );
        assert_eq!(back.graph().len(), vcfg.graph().len());
        assert_eq!(back.graph().entry(), vcfg.graph().entry());
        for index in 0..vcfg.graph().len() {
            let node = NodeId::from_raw(index as u32);
            assert_eq!(back.graph().successors(node), vcfg.graph().successors(node));
            assert_eq!(
                back.graph().predecessors(node),
                vcfg.graph().predecessors(node)
            );
            assert_eq!(back.commits_at(node), vcfg.commits_at(node));
            assert_eq!(back.colors_at_branch(node), vcfg.colors_at_branch(node));
        }
        for (a, b) in back.sites().iter().zip(vcfg.sites()) {
            assert_eq!(a.color, b.color);
            assert_eq!(a.spec_distance, b.spec_distance);
            assert_eq!(a.resume_region, b.resume_region);
        }
    }

    #[test]
    fn corrupt_program_bytes_never_panic() {
        let program = sample_program();
        let bytes = encode_to_vec(&program);
        // Truncations.
        for cut in 0..bytes.len() {
            let _ = decode_all::<Program>(&bytes[..cut]);
        }
        // Single-byte flips.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let _ = decode_all::<Program>(&mutated);
        }
    }
}
