//! # spec-store
//!
//! Versioned binary serialization and a content-addressed on-disk store for
//! prepared analysis artifacts.
//!
//! The crate has two halves:
//!
//! * [`codec`] — a small, dependency-free binary codec ([`Codec`],
//!   [`Encoder`], [`Decoder`]) with explicit encode/decode traversals for the
//!   IR and analysis types that make up a prepared program: `Program`,
//!   blocks/terminators, `AddressMap`, `AbstractCacheState`,
//!   `InstGraph`/`SpeculationSite`/`Vcfg`, `SolveStats`.  The traversal is
//!   written parallel to the existing `HeapSize` walk: every field that
//!   contributes to the measured footprint is visited exactly once, in a
//!   fixed order, with all integers little-endian and all maps emitted in
//!   sorted key order so encoding is deterministic.
//! * [`store`] — [`ArtifactStore`], an on-disk, fingerprint-keyed store with
//!   a format-version header, per-artifact FNV-1a integrity checksum, atomic
//!   temp-file+rename writes, and byte-budget GC by recency (mtime), the same
//!   eviction-policy shape the session cache uses in memory.
//!
//! The *content address* of an artifact is the pair (structural program
//! fingerprint, options-schema signature): the fingerprint keys the file name
//! and the signature guards against loading artifacts produced by an
//! incompatible build.  Decoding never panics on corrupt input — every length
//! is bounds-checked against the remaining payload and every tag validated —
//! so a damaged file degrades to a clean cold prepare.

pub mod codec;
pub mod impls;
pub mod store;

pub use codec::{Codec, DecodeError, Decoder, Encoder};
pub use store::{
    fnv64, ArtifactHeader, ArtifactStore, GcStats, LoadOutcome, RejectReason, StoreEntry,
    ARTIFACT_FORMAT_VERSION, ARTIFACT_MAGIC,
};
